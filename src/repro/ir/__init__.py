"""Intermediate representation of the reproduction compiler.

Public surface:

* :mod:`repro.ir.instructions` — the virtual ISA and instruction factories.
* :mod:`repro.ir.cfg` — basic blocks, procedures (CFGs), programs.
* :mod:`repro.ir.builder` — fluent construction API.
* :mod:`repro.ir.printer` — textual rendering.
* :mod:`repro.ir.verify` — well-formedness checks.
"""

from .asmparse import AsmParseError, parse_program
from .cfg import (
    BasicBlock,
    Edge,
    IRError,
    Procedure,
    Program,
    reachable_labels,
    remove_unreachable_blocks,
)
from .builder import BlockBuilder, FunctionBuilder, build_program
from .instructions import (
    BRANCH_OPS,
    CONTROL_OPS,
    Instruction,
    MAY_FAULT_OPS,
    MEMORY_OPS,
    Opcode,
    PURE_OPS,
    SIDE_EFFECT_OPS,
    TERMINATORS,
    format_instruction,
)
from .printer import format_block, format_procedure, format_program
from .verify import check_program, verify_procedure, verify_program

__all__ = [
    "AsmParseError",
    "BasicBlock",
    "parse_program",
    "BlockBuilder",
    "BRANCH_OPS",
    "CONTROL_OPS",
    "Edge",
    "FunctionBuilder",
    "Instruction",
    "IRError",
    "MAY_FAULT_OPS",
    "MEMORY_OPS",
    "Opcode",
    "Procedure",
    "Program",
    "PURE_OPS",
    "SIDE_EFFECT_OPS",
    "TERMINATORS",
    "build_program",
    "check_program",
    "format_block",
    "format_instruction",
    "format_procedure",
    "format_program",
    "reachable_labels",
    "remove_unreachable_blocks",
    "verify_procedure",
    "verify_program",
]
