"""Textual rendering of IR programs (assembly-like, for humans and tests)."""

from __future__ import annotations

from typing import List

from .cfg import BasicBlock, Procedure, Program
from .instructions import format_instruction


def format_block(block: BasicBlock, indent: str = "  ") -> str:
    """Render one basic block with its label."""
    lines = [f"{block.label}:"]
    lines.extend(f"{indent}{format_instruction(i)}" for i in block.instructions)
    return "\n".join(lines)


def format_procedure(proc: Procedure) -> str:
    """Render one procedure with its parameter list."""
    params = ", ".join(f"v{p}" for p in proc.params)
    lines: List[str] = [f"func {proc.name}({params}) {{"]
    for block in proc.blocks():
        lines.append(format_block(block))
    lines.append("}")
    return "\n".join(lines)


def format_program(program: Program) -> str:
    """Render a whole program."""
    return "\n\n".join(format_procedure(p) for p in program.procedures())
