"""Instruction set of the virtual target machine.

The reproduction targets an Alpha-flavoured RISC register machine, extended
(as in the paper, Section 3.2) with *non-excepting* instructions so the
scheduler can speculate loads above branches.  Instructions operate on an
unbounded space of virtual registers; the register allocator later maps them
onto the 128 physical integer registers of the experimental machine model.

Instruction objects use identity-based equality: two structurally identical
instructions are still distinct program points (the schedulers and profilers
rely on this).  Use :meth:`Instruction.copy` when duplicating code, e.g.
during tail duplication or superblock enlargement.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple


class Opcode(enum.Enum):
    """Operation codes of the virtual ISA."""

    # Data movement.
    LI = "li"  # dest <- imm
    MOV = "mov"  # dest <- src0

    # Two-source ALU operations.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"  # may fault (divide by zero)
    MOD = "mod"  # may fault (divide by zero)
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    CMPEQ = "cmpeq"
    CMPNE = "cmpne"
    CMPLT = "cmplt"
    CMPLE = "cmple"
    CMPGT = "cmpgt"
    CMPGE = "cmpge"

    # One-source ALU operations.
    NEG = "neg"
    NOT = "not"

    # Memory.
    LOAD = "load"  # dest <- mem[src0]; may fault
    LOAD_S = "load.s"  # non-excepting (speculative) load
    STORE = "store"  # mem[src0] <- src1

    # Spill traffic (register-allocator private, per-activation stack
    # slots; slot number in `imm`).
    SPILL_LD = "spld"  # dest <- frame.slot[imm]
    SPILL_ST = "spst"  # frame.slot[imm] <- src0

    # Environment I/O (models the benchmark reading its data set and
    # producing checkable output).
    READ = "read"  # dest <- next input word, or -1 at end of input
    PRINT = "print"  # append src0 to the program output

    # Control.
    JMP = "jmp"  # unconditional; targets = (label,)
    BR = "br"  # conditional; targets = (taken, fallthrough); taken iff src0 != 0
    MBR = "mbr"  # multiway; targets[src0] if in range else targets[-1]
    CALL = "call"  # dest <- callee(srcs...); not a terminator
    RET = "ret"  # return srcs[0] if present

    NOP = "nop"


#: Opcodes that end a basic block.
TERMINATORS = frozenset({Opcode.JMP, Opcode.BR, Opcode.MBR, Opcode.RET})

#: Opcodes that consume the single control slot of a VLIW cycle.
CONTROL_OPS = frozenset(
    {Opcode.JMP, Opcode.BR, Opcode.MBR, Opcode.RET, Opcode.CALL}
)

#: Conditional (side-exit capable) branch opcodes.
BRANCH_OPS = frozenset({Opcode.BR, Opcode.MBR})

#: Opcodes with side effects beyond their destination register.
SIDE_EFFECT_OPS = frozenset(
    {Opcode.STORE, Opcode.PRINT, Opcode.READ, Opcode.CALL, Opcode.SPILL_ST}
)

#: Opcodes that touch program memory.
MEMORY_OPS = frozenset({Opcode.LOAD, Opcode.LOAD_S, Opcode.STORE})

#: Opcodes that may raise an exception at run time and therefore may not be
#: moved above a branch unless converted to a non-excepting form.
MAY_FAULT_OPS = frozenset({Opcode.DIV, Opcode.MOD, Opcode.LOAD})

#: Pure computations whose only effect is writing ``dest``; freely
#: speculable above branches once renamed.
PURE_OPS = frozenset(
    {
        Opcode.LI,
        Opcode.MOV,
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.CMPEQ,
        Opcode.CMPNE,
        Opcode.CMPLT,
        Opcode.CMPLE,
        Opcode.CMPGT,
        Opcode.CMPGE,
        Opcode.NEG,
        Opcode.NOT,
        Opcode.LOAD_S,
    }
)

_BINARY_ALU = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.DIV,
        Opcode.MOD,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.CMPEQ,
        Opcode.CMPNE,
        Opcode.CMPLT,
        Opcode.CMPLE,
        Opcode.CMPGT,
        Opcode.CMPGE,
    }
)

_UNARY_ALU = frozenset({Opcode.NEG, Opcode.NOT})


class Instruction:
    """A single machine operation.

    Attributes:
        opcode: the :class:`Opcode`.
        dest: destination virtual register, or ``None``.
        srcs: tuple of source virtual registers.
        imm: immediate operand (``LI`` only).
        targets: tuple of target block labels (control transfers only).
        callee: target procedure name (``CALL`` only).
        origin: provenance id of the source-program instruction this one
            descends from (``"proc:label:index"``), or ``None`` when no
            tracer stamped the program.  Copies, compensation movs, and
            spill code inherit it; it never affects execution or equality.
    """

    __slots__ = ("opcode", "dest", "srcs", "imm", "targets", "callee", "origin")

    def __init__(
        self,
        opcode: Opcode,
        dest: Optional[int] = None,
        srcs: Tuple[int, ...] = (),
        imm: Optional[int] = None,
        targets: Tuple[str, ...] = (),
        callee: Optional[str] = None,
        origin: Optional[str] = None,
    ) -> None:
        self.opcode = opcode
        self.dest = dest
        self.srcs = tuple(srcs)
        self.imm = imm
        self.targets = tuple(targets)
        self.callee = callee
        self.origin = origin

    # -- structural properties -------------------------------------------

    @property
    def is_terminator(self) -> bool:
        """True when this instruction must end its basic block."""
        return self.opcode in TERMINATORS

    @property
    def is_control(self) -> bool:
        """True when this instruction uses the single per-cycle control slot."""
        return self.opcode in CONTROL_OPS

    @property
    def is_branch(self) -> bool:
        """True for conditional or multiway branches (side-exit capable)."""
        return self.opcode in BRANCH_OPS

    @property
    def is_memory(self) -> bool:
        """True when this instruction reads or writes program memory."""
        return self.opcode in MEMORY_OPS

    @property
    def has_side_effects(self) -> bool:
        """True when removing or duplicating the instruction changes behaviour
        beyond its destination register."""
        return self.opcode in SIDE_EFFECT_OPS

    @property
    def may_fault(self) -> bool:
        """True when the instruction may raise a run-time exception."""
        return self.opcode in MAY_FAULT_OPS

    @property
    def is_pure(self) -> bool:
        """True for pure register computations (candidates for speculation)."""
        return self.opcode in PURE_OPS

    def copy(self) -> "Instruction":
        """Return a fresh instruction object with identical operands."""
        return Instruction(
            self.opcode,
            dest=self.dest,
            srcs=self.srcs,
            imm=self.imm,
            targets=self.targets,
            callee=self.callee,
            origin=self.origin,
        )

    def same_operation(self, other: "Instruction") -> bool:
        """Structural equality (identity-insensitive); used by tests."""
        return (
            self.opcode == other.opcode
            and self.dest == other.dest
            and self.srcs == other.srcs
            and self.imm == other.imm
            and self.targets == other.targets
            and self.callee == other.callee
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Instruction {format_instruction(self)}>"


def format_instruction(instr: Instruction) -> str:
    """Render one instruction in the textual assembly syntax.

    A call without a destination prints its ``@callee`` before the argument
    registers, so the parser can distinguish it from a call whose first
    register is the destination.
    """
    op = instr.opcode
    parts = [op.value]
    operands = []
    if instr.dest is not None:
        operands.append(f"v{instr.dest}")
    elif instr.callee is not None:
        operands.append(f"@{instr.callee}")
    operands.extend(f"v{s}" for s in instr.srcs)
    if instr.imm is not None:
        operands.append(str(instr.imm))
    if instr.callee is not None and instr.dest is not None:
        operands.append(f"@{instr.callee}")
    operands.extend(instr.targets)
    if operands:
        parts.append(", ".join(operands))
    return " ".join(parts)


# -- construction helpers -------------------------------------------------


def li(dest: int, imm: int) -> Instruction:
    """``dest <- imm``"""
    return Instruction(Opcode.LI, dest=dest, imm=imm)


def mov(dest: int, src: int) -> Instruction:
    """``dest <- src``"""
    return Instruction(Opcode.MOV, dest=dest, srcs=(src,))


def binop(opcode: Opcode, dest: int, lhs: int, rhs: int) -> Instruction:
    """Two-source ALU operation ``dest <- lhs <op> rhs``."""
    if opcode not in _BINARY_ALU:
        raise ValueError(f"{opcode} is not a binary ALU opcode")
    return Instruction(opcode, dest=dest, srcs=(lhs, rhs))


def unop(opcode: Opcode, dest: int, src: int) -> Instruction:
    """One-source ALU operation ``dest <- <op> src``."""
    if opcode not in _UNARY_ALU:
        raise ValueError(f"{opcode} is not a unary ALU opcode")
    return Instruction(opcode, dest=dest, srcs=(src,))


def load(dest: int, addr: int) -> Instruction:
    """``dest <- mem[addr]`` (excepting form)."""
    return Instruction(Opcode.LOAD, dest=dest, srcs=(addr,))


def load_s(dest: int, addr: int) -> Instruction:
    """``dest <- mem[addr]`` (non-excepting, speculative form)."""
    return Instruction(Opcode.LOAD_S, dest=dest, srcs=(addr,))


def store(addr: int, value: int) -> Instruction:
    """``mem[addr] <- value``"""
    return Instruction(Opcode.STORE, srcs=(addr, value))


def spill_ld(dest: int, slot: int) -> Instruction:
    """``dest <- frame.slot[slot]`` (allocator-private spill reload)."""
    return Instruction(Opcode.SPILL_LD, dest=dest, imm=slot)


def spill_st(slot: int, src: int) -> Instruction:
    """``frame.slot[slot] <- src`` (allocator-private spill store)."""
    return Instruction(Opcode.SPILL_ST, srcs=(src,), imm=slot)


def read(dest: int) -> Instruction:
    """``dest <- next input word`` (or -1 at end of input)."""
    return Instruction(Opcode.READ, dest=dest)


def print_(src: int) -> Instruction:
    """Append ``src`` to the program output."""
    return Instruction(Opcode.PRINT, srcs=(src,))


def jmp(target: str) -> Instruction:
    """Unconditional jump."""
    return Instruction(Opcode.JMP, targets=(target,))


def br(cond: int, taken: str, fallthrough: str) -> Instruction:
    """Conditional branch: go to ``taken`` iff ``cond != 0``."""
    return Instruction(Opcode.BR, srcs=(cond,), targets=(taken, fallthrough))


def mbr(index: int, targets: Tuple[str, ...]) -> Instruction:
    """Multiway branch: go to ``targets[index]``; out-of-range indices go to
    ``targets[-1]`` (the default)."""
    if len(targets) < 2:
        raise ValueError("mbr needs at least two targets (cases + default)")
    return Instruction(Opcode.MBR, srcs=(index,), targets=tuple(targets))


def call(callee: str, args: Tuple[int, ...], dest: Optional[int]) -> Instruction:
    """Call ``callee`` with argument registers ``args``; the return value (if
    any) lands in ``dest``."""
    return Instruction(Opcode.CALL, dest=dest, srcs=tuple(args), callee=callee)


def ret(value: Optional[int] = None) -> Instruction:
    """Return from the current procedure."""
    srcs = (value,) if value is not None else ()
    return Instruction(Opcode.RET, srcs=srcs)


def nop() -> Instruction:
    """No operation."""
    return Instruction(Opcode.NOP)
