"""Fluent construction API for IR procedures.

The builder is used by the MiniC code generator, by the workload library,
and heavily by tests.  Typical usage::

    fb = FunctionBuilder("main")
    entry = fb.block("entry")
    x = fb.reg()
    entry.li(x, 10)
    entry.jmp("loop")
    ...
    program = build_program(fb)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from . import instructions as ins
from .cfg import BasicBlock, Procedure, Program
from .instructions import Instruction, Opcode


class BlockBuilder:
    """Appends instructions to one basic block."""

    def __init__(self, proc: Procedure, block: BasicBlock) -> None:
        self._proc = proc
        self.block = block

    @property
    def label(self) -> str:
        """Label of the block under construction."""
        return self.block.label

    def emit(self, instr: Instruction) -> Instruction:
        """Append an arbitrary instruction."""
        self.block.append(instr)
        return instr

    # -- data ---------------------------------------------------------------

    def li(self, dest: int, imm: int) -> Instruction:
        """``dest <- imm``"""
        return self.emit(ins.li(dest, imm))

    def mov(self, dest: int, src: int) -> Instruction:
        """``dest <- src``"""
        return self.emit(ins.mov(dest, src))

    def alu(self, opcode: Opcode, dest: int, *srcs: int) -> Instruction:
        """Emit a unary or binary ALU operation by opcode."""
        if len(srcs) == 1:
            return self.emit(ins.unop(opcode, dest, srcs[0]))
        if len(srcs) == 2:
            return self.emit(ins.binop(opcode, dest, srcs[0], srcs[1]))
        raise ValueError("ALU operations take one or two sources")

    def add(self, dest: int, lhs: int, rhs: int) -> Instruction:
        """``dest <- lhs + rhs``"""
        return self.alu(Opcode.ADD, dest, lhs, rhs)

    def sub(self, dest: int, lhs: int, rhs: int) -> Instruction:
        """``dest <- lhs - rhs``"""
        return self.alu(Opcode.SUB, dest, lhs, rhs)

    def mul(self, dest: int, lhs: int, rhs: int) -> Instruction:
        """``dest <- lhs * rhs``"""
        return self.alu(Opcode.MUL, dest, lhs, rhs)

    def div(self, dest: int, lhs: int, rhs: int) -> Instruction:
        """``dest <- lhs / rhs`` (truncating toward zero)."""
        return self.alu(Opcode.DIV, dest, lhs, rhs)

    def mod(self, dest: int, lhs: int, rhs: int) -> Instruction:
        """``dest <- lhs mod rhs`` (sign follows the dividend)."""
        return self.alu(Opcode.MOD, dest, lhs, rhs)

    def cmplt(self, dest: int, lhs: int, rhs: int) -> Instruction:
        """``dest <- (lhs < rhs)``"""
        return self.alu(Opcode.CMPLT, dest, lhs, rhs)

    def cmpeq(self, dest: int, lhs: int, rhs: int) -> Instruction:
        """``dest <- (lhs == rhs)``"""
        return self.alu(Opcode.CMPEQ, dest, lhs, rhs)

    # -- memory and I/O -------------------------------------------------------

    def load(self, dest: int, addr: int) -> Instruction:
        """``dest <- mem[addr]``"""
        return self.emit(ins.load(dest, addr))

    def store(self, addr: int, value: int) -> Instruction:
        """``mem[addr] <- value``"""
        return self.emit(ins.store(addr, value))

    def read(self, dest: int) -> Instruction:
        """``dest <- next input word`` (-1 at end of input)."""
        return self.emit(ins.read(dest))

    def print_(self, src: int) -> Instruction:
        """Append ``src`` to the program output."""
        return self.emit(ins.print_(src))

    # -- control ---------------------------------------------------------------

    def jmp(self, target: str) -> Instruction:
        """Terminate with an unconditional jump."""
        return self.emit(ins.jmp(target))

    def br(self, cond: int, taken: str, fallthrough: str) -> Instruction:
        """Terminate with a conditional branch (taken iff ``cond != 0``)."""
        return self.emit(ins.br(cond, taken, fallthrough))

    def mbr(self, index: int, targets: Sequence[str]) -> Instruction:
        """Terminate with a multiway branch (last target is the default)."""
        return self.emit(ins.mbr(index, tuple(targets)))

    def call(
        self, callee: str, args: Sequence[int] = (), dest: Optional[int] = None
    ) -> Instruction:
        """Call ``callee``; the return value (if any) lands in ``dest``."""
        return self.emit(ins.call(callee, tuple(args), dest))

    def ret(self, value: Optional[int] = None) -> Instruction:
        """Terminate by returning from the procedure."""
        return self.emit(ins.ret(value))


class FunctionBuilder:
    """Builds one :class:`Procedure` block by block."""

    def __init__(self, name: str, num_params: int = 0) -> None:
        self.proc = Procedure(name, params=tuple(range(num_params)))
        self._builders: Dict[str, BlockBuilder] = {}

    @property
    def params(self) -> Tuple[int, ...]:
        """Parameter registers (pre-allocated as v0..v(n-1))."""
        return self.proc.params

    def reg(self) -> int:
        """Allocate a fresh virtual register."""
        return self.proc.fresh_reg()

    def regs(self, count: int) -> List[int]:
        """Allocate ``count`` fresh virtual registers."""
        return [self.proc.fresh_reg() for _ in range(count)]

    def block(self, label: Optional[str] = None) -> BlockBuilder:
        """Create (or fetch, when it already exists) a block builder.

        The first block created is the procedure entry.
        """
        if label is not None and self.proc.has_block(label):
            return self._builders[label]
        if label is None:
            label = self.proc.fresh_label()
        block = self.proc.add_block(BasicBlock(label))
        builder = BlockBuilder(self.proc, block)
        self._builders[label] = builder
        return builder


def build_program(*functions: FunctionBuilder, entry: str = "main") -> Program:
    """Assemble finished :class:`FunctionBuilder` objects into a program."""
    program = Program(entry=entry)
    for fb in functions:
        program.add(fb.proc)
    return program
