"""IR well-formedness checks.

``verify_program`` is run by tests after every transformation pass; it
catches the class of bugs that otherwise surface as baffling interpreter or
scheduler misbehaviour: dangling labels, unterminated blocks, mid-block
terminators, calls to missing procedures, and argument-count mismatches.
"""

from __future__ import annotations

from typing import List

from .cfg import IRError, Procedure, Program
from .instructions import Opcode


def verify_procedure(proc: Procedure, program: Program = None) -> List[str]:
    """Return a list of problems found in ``proc`` (empty when clean)."""
    problems: List[str] = []
    labels = set(proc.labels)
    for block in proc.blocks():
        if not block.instructions:
            problems.append(f"{proc.name}/{block.label}: empty block")
            continue
        if not block.instructions[-1].is_terminator:
            problems.append(f"{proc.name}/{block.label}: missing terminator")
        for index, instr in enumerate(block.instructions):
            last = index == len(block.instructions) - 1
            if instr.is_terminator and not last:
                problems.append(
                    f"{proc.name}/{block.label}: terminator"
                    f" {instr.opcode.value} at non-final position {index}"
                )
            for target in instr.targets:
                if target not in labels:
                    problems.append(
                        f"{proc.name}/{block.label}: unknown target {target}"
                    )
            if instr.opcode is Opcode.CALL and program is not None:
                if not program.has_procedure(instr.callee):
                    problems.append(
                        f"{proc.name}/{block.label}: call to missing"
                        f" procedure {instr.callee}"
                    )
                else:
                    callee = program.procedure(instr.callee)
                    if len(instr.srcs) != len(callee.params):
                        problems.append(
                            f"{proc.name}/{block.label}: call to"
                            f" {instr.callee} passes {len(instr.srcs)} args,"
                            f" expected {len(callee.params)}"
                        )
            if instr.opcode is Opcode.BR and len(instr.targets) != 2:
                problems.append(
                    f"{proc.name}/{block.label}: br needs 2 targets"
                )
            if instr.opcode is Opcode.MBR and len(instr.targets) < 2:
                problems.append(
                    f"{proc.name}/{block.label}: mbr needs >= 2 targets"
                )
    return problems


def verify_program(program: Program) -> List[str]:
    """Return a list of problems found in ``program`` (empty when clean)."""
    problems: List[str] = []
    if not program.has_procedure(program.entry):
        problems.append(f"missing entry procedure {program.entry}")
    for proc in program.procedures():
        problems.extend(verify_procedure(proc, program))
    return problems


def check_program(program: Program) -> None:
    """Raise :class:`IRError` when ``program`` is malformed."""
    problems = verify_program(program)
    if problems:
        raise IRError("; ".join(problems))
