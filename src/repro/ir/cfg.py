"""Basic blocks, procedures (control-flow graphs), and whole programs.

A :class:`Procedure` owns an ordered collection of :class:`BasicBlock`
objects; the first block is the unique entry.  Control-flow edges are derived
from block terminators, so the graph can never go stale with respect to the
code.  A :class:`Program` is a set of procedures with a designated entry
procedure (``main`` by default).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .instructions import Instruction, Opcode

Edge = Tuple[str, str]


class IRError(Exception):
    """Raised for malformed IR (bad labels, missing terminators, ...)."""


class BasicBlock:
    """A maximal straight-line sequence of instructions ending in a terminator.

    ``CALL`` instructions are *not* terminators in this IR: a call returns to
    the following instruction of the same block, as in the paper's compiler.
    """

    __slots__ = ("label", "instructions")

    def __init__(
        self, label: str, instructions: Optional[List[Instruction]] = None
    ) -> None:
        self.label = label
        self.instructions: List[Instruction] = list(instructions or [])

    @property
    def terminator(self) -> Instruction:
        """The block's final control transfer.

        Raises :class:`IRError` when the block is unterminated.
        """
        if not self.instructions or not self.instructions[-1].is_terminator:
            raise IRError(f"block {self.label} lacks a terminator")
        return self.instructions[-1]

    @property
    def body(self) -> List[Instruction]:
        """All instructions except the terminator."""
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[:-1]
        return list(self.instructions)

    def successors(self) -> Tuple[str, ...]:
        """Labels of the blocks this block may transfer control to.

        Duplicate labels are collapsed (a two-way branch whose arms coincide
        behaves like a jump), preserving first-occurrence order.
        """
        seen = []
        for label in self.terminator.targets:
            if label not in seen:
                seen.append(label)
        return tuple(seen)

    @property
    def ends_in_branch(self) -> bool:
        """True when the block ends in a conditional or multiway branch with
        more than one distinct successor (the unit counted against the path
        profiling depth)."""
        term = self.instructions[-1] if self.instructions else None
        return (
            term is not None and term.is_branch and len(self.successors()) > 1
        )

    def append(self, instr: Instruction) -> None:
        """Append ``instr``; terminators may only be appended last."""
        if self.instructions and self.instructions[-1].is_terminator:
            raise IRError(f"block {self.label} is already terminated")
        self.instructions.append(instr)

    def copy(self, new_label: str) -> "BasicBlock":
        """Deep-copy this block under a fresh label (used by tail duplication
        and superblock enlargement)."""
        return BasicBlock(new_label, [i.copy() for i in self.instructions])

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock {self.label} ({len(self.instructions)} instrs)>"


class Procedure:
    """A named control-flow graph with parameters.

    Blocks are kept in an explicit order; the first block is the entry.  The
    order is also the default code-layout order prior to the procedure
    placement pass.
    """

    def __init__(self, name: str, params: Sequence[int] = ()) -> None:
        self.name = name
        self.params: Tuple[int, ...] = tuple(params)
        self._blocks: Dict[str, BasicBlock] = {}
        self._order: List[str] = []
        self._next_reg = (max(self.params) + 1) if self.params else 0
        self._next_label = 0

    # -- block management --------------------------------------------------

    @property
    def entry_label(self) -> str:
        """Label of the entry block."""
        if not self._order:
            raise IRError(f"procedure {self.name} has no blocks")
        return self._order[0]

    @property
    def entry(self) -> BasicBlock:
        """The entry block."""
        return self._blocks[self.entry_label]

    def add_block(self, block: BasicBlock) -> BasicBlock:
        """Register ``block``; labels must be unique within the procedure."""
        if block.label in self._blocks:
            raise IRError(f"duplicate block label {block.label}")
        self._blocks[block.label] = block
        self._order.append(block.label)
        return block

    def new_block(self, hint: str = "b") -> BasicBlock:
        """Create, register, and return an empty block with a fresh label."""
        return self.add_block(BasicBlock(self.fresh_label(hint)))

    def remove_block(self, label: str) -> None:
        """Delete a block (callers must have rewired its predecessors)."""
        del self._blocks[label]
        self._order.remove(label)

    def block(self, label: str) -> BasicBlock:
        """Look up a block by label."""
        try:
            return self._blocks[label]
        except KeyError:
            raise IRError(f"no block {label} in procedure {self.name}") from None

    def has_block(self, label: str) -> bool:
        """True when ``label`` names a block of this procedure."""
        return label in self._blocks

    def blocks(self) -> Iterator[BasicBlock]:
        """Iterate blocks in layout order."""
        for label in self._order:
            yield self._blocks[label]

    @property
    def labels(self) -> Tuple[str, ...]:
        """Block labels in layout order."""
        return tuple(self._order)

    def reorder(self, order: Sequence[str]) -> None:
        """Set a new layout order; must be a permutation of the labels that
        keeps the entry block first."""
        if sorted(order) != sorted(self._order):
            raise IRError("reorder must permute the existing labels")
        if order[0] != self._order[0]:
            raise IRError("reorder must keep the entry block first")
        self._order = list(order)

    # -- name generation ----------------------------------------------------

    def fresh_reg(self) -> int:
        """Allocate a virtual register number unused in this procedure."""
        reg = self._next_reg
        self._next_reg += 1
        return reg

    def note_reg(self, reg: int) -> int:
        """Inform the allocator that ``reg`` is in use (builder helper)."""
        if reg >= self._next_reg:
            self._next_reg = reg + 1
        return reg

    def fresh_label(self, hint: str = "b") -> str:
        """Generate a block label unique within this procedure."""
        while True:
            label = f"{hint}{self._next_label}"
            self._next_label += 1
            if label not in self._blocks:
                return label

    @property
    def max_reg(self) -> int:
        """One past the highest virtual register number handed out."""
        return self._next_reg

    # -- graph queries -------------------------------------------------------

    def edges(self) -> List[Edge]:
        """All control-flow edges as ``(src_label, dst_label)`` pairs."""
        result: List[Edge] = []
        for block in self.blocks():
            for succ in block.successors():
                result.append((block.label, succ))
        return result

    def predecessors(self) -> Dict[str, List[str]]:
        """Map each label to the labels of its CFG predecessors."""
        preds: Dict[str, List[str]] = {label: [] for label in self._order}
        for src, dst in self.edges():
            preds[dst].append(src)
        return preds

    def successors(self, label: str) -> Tuple[str, ...]:
        """Successor labels of ``label``."""
        return self.block(label).successors()

    def instruction_count(self) -> int:
        """Static instruction count over all blocks."""
        return sum(len(b) for b in self.blocks())

    def copy(self) -> "Procedure":
        """Deep-copy the procedure (blocks and instructions)."""
        clone = Procedure(self.name, self.params)
        for block in self.blocks():
            clone.add_block(block.copy(block.label))
        clone._next_reg = self._next_reg
        clone._next_label = self._next_label
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Procedure {self.name} ({len(self._order)} blocks)>"


class Program:
    """A whole program: a set of procedures plus a designated entry point."""

    def __init__(self, entry: str = "main") -> None:
        self.entry = entry
        self._procedures: Dict[str, Procedure] = {}

    def add(self, proc: Procedure) -> Procedure:
        """Register ``proc``; procedure names must be unique."""
        if proc.name in self._procedures:
            raise IRError(f"duplicate procedure {proc.name}")
        self._procedures[proc.name] = proc
        return proc

    def procedure(self, name: str) -> Procedure:
        """Look up a procedure by name."""
        try:
            return self._procedures[name]
        except KeyError:
            raise IRError(f"no procedure named {name}") from None

    def has_procedure(self, name: str) -> bool:
        """True when ``name`` is a procedure of this program."""
        return name in self._procedures

    def remove(self, name: str) -> None:
        """Delete a procedure (callers must have removed every call to it).

        The entry procedure can never be removed.
        """
        if name == self.entry:
            raise IRError(f"cannot remove entry procedure {name}")
        if name not in self._procedures:
            raise IRError(f"no procedure named {name}")
        del self._procedures[name]

    def procedures(self) -> Iterator[Procedure]:
        """Iterate procedures in insertion order."""
        return iter(self._procedures.values())

    @property
    def names(self) -> Tuple[str, ...]:
        """Procedure names in insertion order."""
        return tuple(self._procedures)

    def instruction_count(self) -> int:
        """Static instruction count over the whole program."""
        return sum(p.instruction_count() for p in self.procedures())

    def copy(self) -> "Program":
        """Deep-copy the program."""
        clone = Program(self.entry)
        for proc in self.procedures():
            clone.add(proc.copy())
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Program entry={self.entry} procs={list(self._procedures)}>"


def reachable_labels(proc: Procedure) -> List[str]:
    """Labels reachable from the procedure entry, in reverse postorder."""
    seen = set()
    postorder: List[str] = []

    def visit(label: str) -> None:
        stack = [(label, iter(proc.successors(label)))]
        seen.add(label)
        while stack:
            current, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, iter(proc.successors(succ))))
                    advanced = True
                    break
            if not advanced:
                postorder.append(current)
                stack.pop()

    visit(proc.entry_label)
    return list(reversed(postorder))


def remove_unreachable_blocks(proc: Procedure) -> List[str]:
    """Drop blocks not reachable from the entry; returns removed labels."""
    keep = set(reachable_labels(proc))
    removed = [label for label in proc.labels if label not in keep]
    for label in removed:
        proc.remove_block(label)
    return removed
