"""Parser for the textual IR form produced by :mod:`repro.ir.printer`.

The assembly syntax round-trips: ``parse_program(format_program(p))`` is
structurally identical to ``p``.  This makes IR-level test fixtures and
debugging dumps first-class citizens — a scheduler bug report can carry the
exact superblock as text.

Grammar (per line)::

    func NAME(v0, v1, ...) {        procedure header
    LABEL:                          block start
      OPCODE operands                instruction
    }                               procedure end

Operands follow the printer's order: destination register, source
registers, immediate, @callee, target labels.  Registers are ``v<int>``;
anything else that is not an integer or ``@name`` is a label.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .cfg import BasicBlock, IRError, Procedure, Program
from .instructions import Instruction, Opcode

_FUNC_RE = re.compile(r"^func\s+(\w+)\s*\(([^)]*)\)\s*\{$")
_LABEL_RE = re.compile(r"^([\w.$-]+):$")
_REG_RE = re.compile(r"^v(\d+)$")
_INT_RE = re.compile(r"^-?\d+$")

_OPCODES = {op.value: op for op in Opcode}

#: Opcodes whose first register operand is a destination.
_HAS_DEST = {
    Opcode.LI,
    Opcode.MOV,
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.DIV,
    Opcode.MOD,
    Opcode.AND,
    Opcode.OR,
    Opcode.XOR,
    Opcode.SHL,
    Opcode.SHR,
    Opcode.CMPEQ,
    Opcode.CMPNE,
    Opcode.CMPLT,
    Opcode.CMPLE,
    Opcode.CMPGT,
    Opcode.CMPGE,
    Opcode.NEG,
    Opcode.NOT,
    Opcode.LOAD,
    Opcode.LOAD_S,
    Opcode.SPILL_LD,
    Opcode.READ,
}


class AsmParseError(IRError):
    """Raised on malformed textual IR."""


def _parse_instruction(line: str, lineno: int) -> Instruction:
    parts = line.split(None, 1)
    mnemonic = parts[0]
    opcode = _OPCODES.get(mnemonic)
    if opcode is None:
        raise AsmParseError(f"line {lineno}: unknown opcode {mnemonic!r}")
    operands = (
        [tok.strip() for tok in parts[1].split(",")] if len(parts) > 1 else []
    )

    regs: List[int] = []
    imm: Optional[int] = None
    callee: Optional[str] = None
    targets: List[str] = []
    for token in operands:
        if not token:
            continue
        reg_match = _REG_RE.match(token)
        if reg_match:
            regs.append(int(reg_match.group(1)))
        elif token.startswith("@"):
            callee = token[1:]
        elif _INT_RE.match(token):
            if imm is not None:
                raise AsmParseError(
                    f"line {lineno}: multiple immediates in {line!r}"
                )
            imm = int(token)
        else:
            targets.append(token)

    dest: Optional[int] = None
    srcs: Tuple[int, ...]
    if opcode is Opcode.CALL:
        # dest (optional) comes first; remaining regs are arguments.  The
        # printer always writes the dest when present; calls without a
        # destination list only argument registers — ambiguity is resolved
        # by arity at verification time, so here we follow the printer:
        # a call printed with a dest has it first.  We cannot distinguish
        # dest-less calls, so round-tripping uses the convention that the
        # printer's output for dest-less calls starts with '@'.
        if regs and not operands[0].startswith("@"):
            dest, srcs = regs[0], tuple(regs[1:])
        else:
            dest, srcs = None, tuple(regs)
    elif opcode in _HAS_DEST:
        if not regs:
            raise AsmParseError(
                f"line {lineno}: {mnemonic} needs a destination register"
            )
        dest, srcs = regs[0], tuple(regs[1:])
    else:
        dest, srcs = None, tuple(regs)

    return Instruction(
        opcode,
        dest=dest,
        srcs=srcs,
        imm=imm,
        targets=tuple(targets),
        callee=callee,
    )


def parse_program(text: str, entry: str = "main") -> Program:
    """Parse a printed program back into IR.

    Raises :class:`AsmParseError` on malformed text.
    """
    program = Program(entry=entry)
    proc: Optional[Procedure] = None
    block: Optional[BasicBlock] = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("//")[0].strip()
        if not line:
            continue
        header = _FUNC_RE.match(line)
        if header:
            if proc is not None:
                raise AsmParseError(f"line {lineno}: nested func")
            name, params_text = header.groups()
            params = []
            for token in params_text.split(","):
                token = token.strip()
                if not token:
                    continue
                match = _REG_RE.match(token)
                if not match:
                    raise AsmParseError(
                        f"line {lineno}: bad parameter {token!r}"
                    )
                params.append(int(match.group(1)))
            proc = Procedure(name, params=params)
            block = None
            continue
        if line == "}":
            if proc is None:
                raise AsmParseError(f"line {lineno}: stray '}}'")
            program.add(proc)
            proc = None
            block = None
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            if proc is None:
                raise AsmParseError(
                    f"line {lineno}: label outside a function"
                )
            block = BasicBlock(label_match.group(1))
            proc.add_block(block)
            continue
        if proc is None or block is None:
            raise AsmParseError(
                f"line {lineno}: instruction outside a block: {line!r}"
            )
        instr = _parse_instruction(line, lineno)
        block.append(instr)
        for reg in list(instr.srcs) + (
            [instr.dest] if instr.dest is not None else []
        ):
            proc.note_reg(reg)
    if proc is not None:
        raise AsmParseError("unterminated function at end of input")
    return program
