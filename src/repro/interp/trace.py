"""Compact execution traces: record once, replay many.

An :class:`ExecutionTrace` is the dynamic block stream of one interpreter
run, encoded as integers.  Labels are interned per procedure into a string
table, and each procedure activation (frame) owns one flat ``array('i')``
of block ids in execution order.  The encoding is exactly the information
the profilers consume:

* every block execution, in order, within its frame;
* the procedure of each frame, in activation order (``frame_id`` is the
  index into :attr:`frames`);
* the label spelling, rematerialized only at profile finalization.

Because every profiler in :mod:`repro.profiling` keeps its running state
*per frame* (recursion-safe sliding windows, per-frame last-block memory),
the frame-major layout loses nothing: replaying frames one after another
yields bit-identical profiles to the live interleaved stream.  What the
layout deliberately drops is the global interleaving of frames across
calls — a consumer that needs cross-frame event ordering must observe the
interpreter live instead.

A trace is a pure value: it never references the program it came from, so
it pickles small, ships across process boundaries cheaply, and serves as a
content-addressed cache artifact (see ``repro.experiments.cache.trace_key``)
that any number of profile derivations — every depth, every profiler kind —
can replay without re-executing the interpreter.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .interpreter import ExecutionObserver

#: Typecode of the per-frame block-id buffers.
TRACE_TYPECODE = "i"


class ExecutionTrace:
    """The encoded dynamic block stream of one program run."""

    __slots__ = ("proc_names", "labels", "frames")

    def __init__(
        self,
        proc_names: List[str],
        labels: List[List[str]],
        frames: List[Tuple[int, array]],
    ) -> None:
        #: procedure index -> procedure name
        self.proc_names = proc_names
        #: procedure index -> block id -> label string (the string table)
        self.labels = labels
        #: activation order: (procedure index, block ids); the list index
        #: is the frame id.
        self.frames = frames

    # -- statistics ----------------------------------------------------------

    @property
    def num_frames(self) -> int:
        """Number of procedure activations recorded."""
        return len(self.frames)

    @property
    def num_blocks(self) -> int:
        """Total dynamic block executions recorded."""
        return sum(len(buf) for _, buf in self.frames)

    def nbytes(self) -> int:
        """Approximate size of the block-id buffers in bytes."""
        return sum(buf.itemsize * len(buf) for _, buf in self.frames)

    # -- decoding ------------------------------------------------------------

    def frame_labels(self, frame_id: int) -> List[str]:
        """The label sequence of one frame, rematerialized."""
        pidx, buf = self.frames[frame_id]
        table = self.labels[pidx]
        return [table[lid] for lid in buf]

    def replay(self, observer: "ExecutionObserver") -> None:
        """Drive ``observer`` with the recorded stream, frame by frame.

        Events arrive frame-major (one frame's whole block sequence, then
        the next frame's), not in the original call-interleaved order; the
        ``frame_id`` passed to the hooks is the activation index.  Every
        profiler in :mod:`repro.profiling` is insensitive to that
        reordering because its state is per-frame.
        """
        proc_names = self.proc_names
        labels = self.labels
        for frame_id, (pidx, buf) in enumerate(self.frames):
            name = proc_names[pidx]
            table = labels[pidx]
            observer.enter_procedure(name, frame_id)
            block_executed = observer.block_executed
            for lid in buf:
                block_executed(name, frame_id, table[lid])
            observer.exit_procedure(name, frame_id)

    # -- value semantics -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExecutionTrace):
            return NotImplemented
        return (
            self.proc_names == other.proc_names
            and self.labels == other.labels
            and self.frames == other.frames
        )

    def __repr__(self) -> str:
        return (
            f"ExecutionTrace({self.num_frames} frames,"
            f" {self.num_blocks} blocks,"
            f" {len(self.proc_names)} procedures)"
        )
