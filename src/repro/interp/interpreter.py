"""Reference interpreter for IR programs.

The interpreter serves three roles in the reproduction:

1. **Profiling substrate** — it drives an observer with the dynamic stream of
   executed basic blocks, from which the edge and path profilers build their
   tables (the paper instruments every executed CFG edge, Section 3.1).
2. **Ground truth** — its program output is the semantic reference against
   which scheduled code is checked.
3. **Statistics** — it supplies the dynamic branch and instruction counts of
   Table 1.

Each procedure activation has its own register file (frames), and program
memory is a flat word-addressed integer store.  Input is a finite tape of
integers (``read`` yields -1 at the end), and output is the sequence of
``print``-ed integers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.cfg import BasicBlock, Procedure, Program
from ..ir.instructions import Instruction, Opcode
from .ops import BINARY_EVAL, MachineFault, UNARY_EVAL


class InterpreterError(Exception):
    """Raised on runaway executions or IR the interpreter cannot run."""


class StepLimitExceeded(InterpreterError):
    """The configured dynamic instruction budget was exhausted."""


class ExecutionObserver:
    """Interface for consumers of the dynamic execution stream.

    The interpreter invokes these hooks; the default implementations do
    nothing, so observers override only what they need.  ``frame_id`` values
    are unique per procedure activation, letting path profilers keep one
    sliding window per active frame (recursion-safe).
    """

    def enter_procedure(self, proc_name: str, frame_id: int) -> None:
        """A new activation of ``proc_name`` began."""

    def exit_procedure(self, proc_name: str, frame_id: int) -> None:
        """The activation ``frame_id`` returned."""

    def block_executed(self, proc_name: str, frame_id: int, label: str) -> None:
        """Control entered block ``label`` within activation ``frame_id``."""


@dataclass
class ExecutionResult:
    """Outcome and dynamic statistics of one program run."""

    output: List[int]
    return_value: int
    instructions: int
    branches: int
    blocks: int
    calls: int
    #: Dynamic instruction count per procedure name.
    per_procedure: Dict[str, int] = field(default_factory=dict)


class _Frame:
    __slots__ = (
        "proc",
        "regs",
        "block",
        "index",
        "ret_dest",
        "frame_id",
        "spill",
    )

    def __init__(
        self,
        proc: Procedure,
        regs: Dict[int, int],
        frame_id: int,
        ret_dest: Optional[int],
    ) -> None:
        self.proc = proc
        self.regs = regs
        self.block: BasicBlock = proc.entry
        self.index = 0
        self.ret_dest = ret_dest
        self.frame_id = frame_id
        self.spill: Dict[int, int] = {}


class Interpreter:
    """Executes a :class:`~repro.ir.cfg.Program` on a given input tape."""

    def __init__(
        self,
        program: Program,
        step_limit: int = 50_000_000,
        observer: Optional[ExecutionObserver] = None,
    ) -> None:
        self.program = program
        self.step_limit = step_limit
        self.observer = observer

    def run(
        self, input_tape: Sequence[int] = (), args: Sequence[int] = ()
    ) -> ExecutionResult:
        """Run the program's entry procedure to completion.

        Args:
            input_tape: integers yielded by successive ``read`` instructions.
            args: values bound to the entry procedure's parameters.

        Returns:
            An :class:`ExecutionResult` with the output and dynamic counts.
        """
        program = self.program
        observer = self.observer
        memory: Dict[int, int] = {}
        output: List[int] = []
        tape = list(input_tape)
        tape_pos = 0

        instructions = 0
        branches = 0
        blocks = 0
        calls = 0
        per_procedure: Dict[str, int] = {}

        next_frame_id = 0

        def new_frame(
            proc: Procedure, argv: Sequence[int], ret_dest: Optional[int]
        ) -> _Frame:
            nonlocal next_frame_id
            if len(argv) != len(proc.params):
                raise InterpreterError(
                    f"{proc.name} expects {len(proc.params)} args,"
                    f" got {len(argv)}"
                )
            regs = dict(zip(proc.params, argv))
            frame = _Frame(proc, regs, next_frame_id, ret_dest)
            next_frame_id += 1
            if observer is not None:
                observer.enter_procedure(proc.name, frame.frame_id)
                observer.block_executed(
                    proc.name, frame.frame_id, proc.entry_label
                )
            return frame

        entry_proc = program.procedure(program.entry)
        stack: List[_Frame] = [new_frame(entry_proc, list(args), None)]
        blocks += 1
        return_value = 0
        limit = self.step_limit

        while stack:
            frame = stack[-1]
            regs = frame.regs
            instrs = frame.block.instructions
            index = frame.index
            round_start = instructions
            advanced_control = False
            while index < len(instrs):
                instr = instrs[index]
                instructions += 1
                if instructions > limit:
                    raise StepLimitExceeded(
                        f"exceeded {limit} dynamic instructions"
                    )
                op = instr.opcode
                binop = BINARY_EVAL.get(op)
                if binop is not None:
                    a, b = instr.srcs
                    regs[instr.dest] = binop(regs[a], regs[b])
                elif op is Opcode.LI:
                    regs[instr.dest] = instr.imm
                elif op is Opcode.MOV:
                    regs[instr.dest] = regs[instr.srcs[0]]
                elif op in (Opcode.LOAD, Opcode.LOAD_S):
                    regs[instr.dest] = memory.get(regs[instr.srcs[0]], 0)
                elif op is Opcode.STORE:
                    memory[regs[instr.srcs[0]]] = regs[instr.srcs[1]]
                elif op is Opcode.SPILL_LD:
                    regs[instr.dest] = frame.spill.get(instr.imm, 0)
                elif op is Opcode.SPILL_ST:
                    frame.spill[instr.imm] = regs[instr.srcs[0]]
                elif op is Opcode.READ:
                    if tape_pos < len(tape):
                        regs[instr.dest] = tape[tape_pos]
                        tape_pos += 1
                    else:
                        regs[instr.dest] = -1
                elif op is Opcode.PRINT:
                    output.append(regs[instr.srcs[0]])
                elif op is Opcode.NOP:
                    pass
                elif op in UNARY_EVAL:
                    regs[instr.dest] = UNARY_EVAL[op](regs[instr.srcs[0]])
                elif op is Opcode.BR:
                    branches += 1
                    target = instr.targets[0 if regs[instr.srcs[0]] else 1]
                    frame.block = frame.proc.block(target)
                    frame.index = 0
                    blocks += 1
                    if observer is not None:
                        observer.block_executed(
                            frame.proc.name, frame.frame_id, target
                        )
                    advanced_control = True
                    break
                elif op is Opcode.JMP:
                    target = instr.targets[0]
                    frame.block = frame.proc.block(target)
                    frame.index = 0
                    blocks += 1
                    if observer is not None:
                        observer.block_executed(
                            frame.proc.name, frame.frame_id, target
                        )
                    advanced_control = True
                    break
                elif op is Opcode.MBR:
                    branches += 1
                    sel = regs[instr.srcs[0]]
                    if 0 <= sel < len(instr.targets) - 1:
                        target = instr.targets[sel]
                    else:
                        target = instr.targets[-1]
                    frame.block = frame.proc.block(target)
                    frame.index = 0
                    blocks += 1
                    if observer is not None:
                        observer.block_executed(
                            frame.proc.name, frame.frame_id, target
                        )
                    advanced_control = True
                    break
                elif op is Opcode.CALL:
                    calls += 1
                    callee = program.procedure(instr.callee)
                    argv = [regs[s] for s in instr.srcs]
                    frame.index = index + 1
                    stack.append(new_frame(callee, argv, instr.dest))
                    blocks += 1
                    advanced_control = True
                    break
                elif op is Opcode.RET:
                    value = regs[instr.srcs[0]] if instr.srcs else 0
                    if observer is not None:
                        observer.exit_procedure(
                            frame.proc.name, frame.frame_id
                        )
                    stack.pop()
                    if stack:
                        caller = stack[-1]
                        if frame.ret_dest is not None:
                            caller.regs[frame.ret_dest] = value
                    else:
                        return_value = value
                    advanced_control = True
                    break
                else:  # pragma: no cover - exhaustive over Opcode
                    raise InterpreterError(f"cannot execute {op}")
                index += 1
            per_name = frame.proc.name
            per_procedure[per_name] = (
                per_procedure.get(per_name, 0) + instructions - round_start
            )
            if not advanced_control:
                raise InterpreterError(
                    f"fell off the end of block {frame.block.label}"
                    f" in {frame.proc.name}"
                )

        result = ExecutionResult(
            output=output,
            return_value=return_value,
            instructions=instructions,
            branches=branches,
            blocks=blocks,
            calls=calls,
            per_procedure=per_procedure,
        )
        return result


def run_program(
    program: Program,
    input_tape: Sequence[int] = (),
    args: Sequence[int] = (),
    step_limit: int = 50_000_000,
    observer: Optional[ExecutionObserver] = None,
) -> ExecutionResult:
    """Convenience wrapper: interpret ``program`` and return the result."""
    return Interpreter(program, step_limit=step_limit, observer=observer).run(
        input_tape, args
    )
