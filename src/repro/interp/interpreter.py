"""Reference interpreter for IR programs.

The interpreter serves three roles in the reproduction:

1. **Profiling substrate** — it drives an observer with the dynamic stream of
   executed basic blocks, from which the edge and path profilers build their
   tables (the paper instruments every executed CFG edge, Section 3.1).
2. **Ground truth** — its program output is the semantic reference against
   which scheduled code is checked.
3. **Statistics** — it supplies the dynamic branch and instruction counts of
   Table 1.

Each procedure activation has its own register file (frames), and program
memory is a flat word-addressed integer store.  Input is a finite tape of
integers (``read`` yields -1 at the end), and output is the sequence of
``print``-ed integers.

Execution is driven by *pre-decoded* basic blocks: the first time control
enters a block, its instructions are translated into flat dispatch tuples
``(kind, operand, ...)``, hoisting the per-instruction ``Opcode`` comparison
ladder, the :data:`BINARY_EVAL` dictionary probe, and the successor-label
lookups out of the hot loop.  Decoded blocks are cached per interpreter
instance, so repeated executions of a block pay decode cost once.  When no
observer is attached, a dedicated fast-path loop with no profiling hooks
runs instead of the instrumented one.

A third loop, :meth:`Interpreter.run_traced`, records the dynamic block
stream as a compact :class:`~repro.interp.trace.ExecutionTrace` instead of
calling observers: per executed block it pays one interning-dict probe and
one ``array('i')`` append, so recording costs a fraction of a single
observer callback while capturing enough to replay *every* profiler —
edge, general path, forward path, at any depth — offline.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.cfg import BasicBlock, Procedure, Program
from ..ir.instructions import Instruction, Opcode
from .ops import BINARY_EVAL, MachineFault, UNARY_EVAL
from .trace import TRACE_TYPECODE, ExecutionTrace


class InterpreterError(Exception):
    """Raised on runaway executions or IR the interpreter cannot run."""


class StepLimitExceeded(InterpreterError):
    """The configured dynamic instruction budget was exhausted."""


class ExecutionObserver:
    """Interface for consumers of the dynamic execution stream.

    The interpreter invokes these hooks; the default implementations do
    nothing, so observers override only what they need.  ``frame_id`` values
    are unique per procedure activation, letting path profilers keep one
    sliding window per active frame (recursion-safe).
    """

    def enter_procedure(self, proc_name: str, frame_id: int) -> None:
        """A new activation of ``proc_name`` began."""

    def exit_procedure(self, proc_name: str, frame_id: int) -> None:
        """The activation ``frame_id`` returned."""

    def block_executed(self, proc_name: str, frame_id: int, label: str) -> None:
        """Control entered block ``label`` within activation ``frame_id``."""


@dataclass
class ExecutionResult:
    """Outcome and dynamic statistics of one program run."""

    output: List[int]
    return_value: int
    instructions: int
    branches: int
    blocks: int
    calls: int
    #: Dynamic instruction count per procedure name.
    per_procedure: Dict[str, int] = field(default_factory=dict)


# Decoded-instruction kind codes.  Small ints dispatch faster than Opcode
# enum members and collapse opcode families (all binary ALU ops share one
# kind with the evaluation function baked into the tuple).
_K_BINOP = 0
_K_BR = 1
_K_LI = 2
_K_MOV = 3
_K_LOAD = 4
_K_JMP = 5
_K_STORE = 6
_K_READ = 7
_K_PRINT = 8
_K_UNOP = 9
_K_MBR = 10
_K_SPILL_LD = 11
_K_SPILL_ST = 12
_K_CALL = 13
_K_RET = 14
_K_NOP = 15


def _decode_block(program: Program, block: BasicBlock) -> List[tuple]:
    """Translate one basic block into flat dispatch tuples.

    Branch targets stay label strings (resolved through the per-procedure
    decode cache at transfer time); call targets resolve to the callee
    :class:`Procedure` eagerly.
    """
    decoded: List[tuple] = []
    for instr in block.instructions:
        op = instr.opcode
        binop = BINARY_EVAL.get(op)
        if binop is not None:
            a, b = instr.srcs
            decoded.append((_K_BINOP, binop, instr.dest, a, b))
        elif op is Opcode.LI:
            decoded.append((_K_LI, instr.dest, instr.imm))
        elif op is Opcode.MOV:
            decoded.append((_K_MOV, instr.dest, instr.srcs[0]))
        elif op in (Opcode.LOAD, Opcode.LOAD_S):
            decoded.append((_K_LOAD, instr.dest, instr.srcs[0]))
        elif op is Opcode.STORE:
            decoded.append((_K_STORE, instr.srcs[0], instr.srcs[1]))
        elif op is Opcode.SPILL_LD:
            decoded.append((_K_SPILL_LD, instr.dest, instr.imm))
        elif op is Opcode.SPILL_ST:
            decoded.append((_K_SPILL_ST, instr.imm, instr.srcs[0]))
        elif op is Opcode.READ:
            decoded.append((_K_READ, instr.dest))
        elif op is Opcode.PRINT:
            decoded.append((_K_PRINT, instr.srcs[0]))
        elif op is Opcode.NOP:
            decoded.append((_K_NOP,))
        elif op in UNARY_EVAL:
            decoded.append(
                (_K_UNOP, UNARY_EVAL[op], instr.dest, instr.srcs[0])
            )
        elif op is Opcode.BR:
            decoded.append(
                (_K_BR, instr.srcs[0], instr.targets[0], instr.targets[1])
            )
        elif op is Opcode.JMP:
            decoded.append((_K_JMP, instr.targets[0]))
        elif op is Opcode.MBR:
            decoded.append((_K_MBR, instr.srcs[0], tuple(instr.targets)))
        elif op is Opcode.CALL:
            decoded.append(
                (
                    _K_CALL,
                    program.procedure(instr.callee),
                    tuple(instr.srcs),
                    instr.dest,
                )
            )
        elif op is Opcode.RET:
            decoded.append(
                (_K_RET, instr.srcs[0] if instr.srcs else None)
            )
        else:  # pragma: no cover - exhaustive over Opcode
            raise InterpreterError(f"cannot execute {op}")
    return decoded


class _Frame:
    __slots__ = (
        "proc",
        "regs",
        "label",
        "dblock",
        "index",
        "ret_dest",
        "frame_id",
        "spill",
        "pcache",
    )

    def __init__(
        self,
        proc: Procedure,
        regs: Dict[int, int],
        frame_id: int,
        ret_dest: Optional[int],
        dblock: List[tuple],
        pcache: Dict[str, List[tuple]],
    ) -> None:
        self.proc = proc
        self.regs = regs
        self.label = proc.entry_label
        self.dblock = dblock
        self.index = 0
        self.ret_dest = ret_dest
        self.frame_id = frame_id
        self.spill: Dict[int, int] = {}
        self.pcache = pcache


class Interpreter:
    """Executes a :class:`~repro.ir.cfg.Program` on a given input tape."""

    def __init__(
        self,
        program: Program,
        step_limit: int = 50_000_000,
        observer: Optional[ExecutionObserver] = None,
        jit: Optional[bool] = None,
    ) -> None:
        self.program = program
        self.step_limit = step_limit
        self.observer = observer
        #: ``True``/``False`` forces the template JIT on/off for this
        #: instance; ``None`` defers to :func:`repro.jit.jit_enabled`
        #: (the ``REPRO_JIT`` env toggle / ``--no-jit``).
        self.jit = jit
        #: procedure name -> block label -> decoded instructions
        self._decoded: Dict[str, Dict[str, List[tuple]]] = {}

    def _use_jit(self) -> bool:
        if self.jit is not None:
            return self.jit
        from ..jit import jit_enabled

        return jit_enabled()

    # -- decode cache --------------------------------------------------------

    def _proc_cache(self, proc: Procedure) -> Dict[str, List[tuple]]:
        cache = self._decoded.get(proc.name)
        if cache is None:
            cache = self._decoded[proc.name] = {}
        return cache

    def _decoded_entry(
        self, proc: Procedure
    ) -> Tuple[List[tuple], Dict[str, List[tuple]]]:
        """Decoded entry block of ``proc`` plus its per-procedure cache."""
        pcache = self._proc_cache(proc)
        label = proc.entry_label
        dblock = pcache.get(label)
        if dblock is None:
            dblock = pcache[label] = _decode_block(self.program, proc.entry)
        return dblock, pcache

    # -- public API ----------------------------------------------------------

    def run(
        self, input_tape: Sequence[int] = (), args: Sequence[int] = ()
    ) -> ExecutionResult:
        """Run the program's entry procedure to completion.

        Args:
            input_tape: integers yielded by successive ``read`` instructions.
            args: values bound to the entry procedure's parameters.

        Returns:
            An :class:`ExecutionResult` with the output and dynamic counts.
        """
        if self.observer is None:
            if self._use_jit():
                from ..jit.interp_jit import run_jit

                return run_jit(
                    self.program, input_tape, args, self.step_limit
                )
            return self._run_fast(input_tape, args)
        return self._run_observed(input_tape, args)

    def run_traced(
        self, input_tape: Sequence[int] = (), args: Sequence[int] = ()
    ) -> Tuple[ExecutionResult, ExecutionTrace]:
        """Run the program, recording the block stream as a compact trace.

        Returns the usual :class:`ExecutionResult` (identical to what
        :meth:`run` produces on the same inputs) plus the
        :class:`~repro.interp.trace.ExecutionTrace` of the run.  Any
        attached observer is ignored: tracing replaces live observation —
        replay the trace through the batch profilers instead.
        """
        if self._use_jit():
            from ..jit.interp_jit import run_traced_jit

            return run_traced_jit(
                self.program, input_tape, args, self.step_limit
            )
        return self._run_traced(input_tape, args)

    # -- shared helpers ------------------------------------------------------

    def _make_frame(
        self,
        proc: Procedure,
        argv: Sequence[int],
        frame_id: int,
        ret_dest: Optional[int],
    ) -> _Frame:
        if len(argv) != len(proc.params):
            raise InterpreterError(
                f"{proc.name} expects {len(proc.params)} args,"
                f" got {len(argv)}"
            )
        dblock, pcache = self._decoded_entry(proc)
        return _Frame(
            proc, dict(zip(proc.params, argv)), frame_id, ret_dest, dblock, pcache
        )

    # -- no-observer fast path ----------------------------------------------

    def _run_fast(
        self, input_tape: Sequence[int], args: Sequence[int]
    ) -> ExecutionResult:
        program = self.program
        memory: Dict[int, int] = {}
        output: List[int] = []
        tape = list(input_tape)
        tape_pos = 0
        tape_len = len(tape)

        instructions = 0
        branches = 0
        blocks = 0
        calls = 0
        per_procedure: Dict[str, int] = {}

        limit = self.step_limit
        next_frame_id = 1
        decode = _decode_block

        entry_proc = program.procedure(program.entry)
        stack: List[_Frame] = [
            self._make_frame(entry_proc, list(args), 0, None)
        ]
        blocks += 1
        return_value = 0

        while stack:
            frame = stack[-1]
            proc = frame.proc
            regs = frame.regs
            spill = frame.spill
            pcache = frame.pcache
            instrs = frame.dblock
            index = frame.index
            n = len(instrs)
            round_start = instructions
            transferred = False
            while index < n:
                d = instrs[index]
                instructions += 1
                if instructions > limit:
                    raise StepLimitExceeded(
                        f"exceeded {limit} dynamic instructions"
                    )
                k = d[0]
                if k == 0:  # _K_BINOP
                    regs[d[2]] = d[1](regs[d[3]], regs[d[4]])
                elif k == 1:  # _K_BR
                    branches += 1
                    target = d[2] if regs[d[1]] else d[3]
                    dblock = pcache.get(target)
                    if dblock is None:
                        dblock = pcache[target] = decode(
                            program, proc.block(target)
                        )
                    frame.label = target
                    instrs = dblock
                    n = len(instrs)
                    index = 0
                    blocks += 1
                    continue
                elif k == 2:  # _K_LI
                    regs[d[1]] = d[2]
                elif k == 3:  # _K_MOV
                    regs[d[1]] = regs[d[2]]
                elif k == 4:  # _K_LOAD
                    regs[d[1]] = memory.get(regs[d[2]], 0)
                elif k == 5:  # _K_JMP
                    target = d[1]
                    dblock = pcache.get(target)
                    if dblock is None:
                        dblock = pcache[target] = decode(
                            program, proc.block(target)
                        )
                    frame.label = target
                    instrs = dblock
                    n = len(instrs)
                    index = 0
                    blocks += 1
                    continue
                elif k == 6:  # _K_STORE
                    memory[regs[d[1]]] = regs[d[2]]
                elif k == 7:  # _K_READ
                    if tape_pos < tape_len:
                        regs[d[1]] = tape[tape_pos]
                        tape_pos += 1
                    else:
                        regs[d[1]] = -1
                elif k == 8:  # _K_PRINT
                    output.append(regs[d[1]])
                elif k == 9:  # _K_UNOP
                    regs[d[2]] = d[1](regs[d[3]])
                elif k == 10:  # _K_MBR
                    branches += 1
                    targets = d[2]
                    sel = regs[d[1]]
                    if 0 <= sel < len(targets) - 1:
                        target = targets[sel]
                    else:
                        target = targets[-1]
                    dblock = pcache.get(target)
                    if dblock is None:
                        dblock = pcache[target] = decode(
                            program, proc.block(target)
                        )
                    frame.label = target
                    instrs = dblock
                    n = len(instrs)
                    index = 0
                    blocks += 1
                    continue
                elif k == 11:  # _K_SPILL_LD
                    regs[d[1]] = spill.get(d[2], 0)
                elif k == 12:  # _K_SPILL_ST
                    spill[d[1]] = regs[d[2]]
                elif k == 13:  # _K_CALL
                    calls += 1
                    argv = [regs[s] for s in d[2]]
                    frame.index = index + 1
                    frame.dblock = instrs
                    stack.append(
                        self._make_frame(d[1], argv, next_frame_id, d[3])
                    )
                    next_frame_id += 1
                    blocks += 1
                    transferred = True
                    break
                elif k == 14:  # _K_RET
                    value = regs[d[1]] if d[1] is not None else 0
                    stack.pop()
                    if stack:
                        if frame.ret_dest is not None:
                            stack[-1].regs[frame.ret_dest] = value
                    else:
                        return_value = value
                    transferred = True
                    break
                else:  # _K_NOP
                    pass
                index += 1
            per_name = proc.name
            per_procedure[per_name] = (
                per_procedure.get(per_name, 0) + instructions - round_start
            )
            if not transferred:
                raise InterpreterError(
                    f"fell off the end of block {frame.label}"
                    f" in {proc.name}"
                )

        return ExecutionResult(
            output=output,
            return_value=return_value,
            instructions=instructions,
            branches=branches,
            blocks=blocks,
            calls=calls,
            per_procedure=per_procedure,
        )

    # -- trace-recording path ------------------------------------------------

    def _run_traced(
        self, input_tape: Sequence[int], args: Sequence[int]
    ) -> Tuple[ExecutionResult, ExecutionTrace]:
        program = self.program
        memory: Dict[int, int] = {}
        output: List[int] = []
        tape = list(input_tape)
        tape_pos = 0
        tape_len = len(tape)

        instructions = 0
        branches = 0
        blocks = 0
        calls = 0
        per_procedure: Dict[str, int] = {}

        limit = self.step_limit
        next_frame_id = 1
        decode = _decode_block

        # Trace state: per-procedure label interning plus one flat block-id
        # buffer per activation.  ``tstack`` mirrors the frame stack so the
        # current frame's buffer and intern map are plain locals.
        proc_ids: Dict[str, int] = {}
        label_maps: List[Dict[str, int]] = []
        label_lists: List[List[str]] = []
        frames_rec: List[Tuple[int, array]] = []

        def open_frame(proc: Procedure) -> Tuple[array, Dict[str, int], List[str]]:
            pidx = proc_ids.get(proc.name)
            if pidx is None:
                pidx = proc_ids[proc.name] = len(label_lists)
                label_maps.append({})
                label_lists.append([])
            tmap = label_maps[pidx]
            tlist = label_lists[pidx]
            tbuf = array(TRACE_TYPECODE)
            frames_rec.append((pidx, tbuf))
            entry = proc.entry_label
            lid = tmap.get(entry)
            if lid is None:
                lid = tmap[entry] = len(tlist)
                tlist.append(entry)
            tbuf.append(lid)
            return tbuf, tmap, tlist

        entry_proc = program.procedure(program.entry)
        stack: List[_Frame] = [
            self._make_frame(entry_proc, list(args), 0, None)
        ]
        tstack = [open_frame(entry_proc)]
        blocks += 1
        return_value = 0

        while stack:
            frame = stack[-1]
            proc = frame.proc
            regs = frame.regs
            spill = frame.spill
            pcache = frame.pcache
            instrs = frame.dblock
            index = frame.index
            n = len(instrs)
            tbuf, tmap, tlist = tstack[-1]
            tappend = tbuf.append
            round_start = instructions
            transferred = False
            while index < n:
                d = instrs[index]
                instructions += 1
                if instructions > limit:
                    raise StepLimitExceeded(
                        f"exceeded {limit} dynamic instructions"
                    )
                k = d[0]
                if k == 0:  # _K_BINOP
                    regs[d[2]] = d[1](regs[d[3]], regs[d[4]])
                elif k == 1:  # _K_BR
                    branches += 1
                    target = d[2] if regs[d[1]] else d[3]
                    dblock = pcache.get(target)
                    if dblock is None:
                        dblock = pcache[target] = decode(
                            program, proc.block(target)
                        )
                    frame.label = target
                    instrs = dblock
                    n = len(instrs)
                    index = 0
                    blocks += 1
                    lid = tmap.get(target)
                    if lid is None:
                        lid = tmap[target] = len(tlist)
                        tlist.append(target)
                    tappend(lid)
                    continue
                elif k == 2:  # _K_LI
                    regs[d[1]] = d[2]
                elif k == 3:  # _K_MOV
                    regs[d[1]] = regs[d[2]]
                elif k == 4:  # _K_LOAD
                    regs[d[1]] = memory.get(regs[d[2]], 0)
                elif k == 5:  # _K_JMP
                    target = d[1]
                    dblock = pcache.get(target)
                    if dblock is None:
                        dblock = pcache[target] = decode(
                            program, proc.block(target)
                        )
                    frame.label = target
                    instrs = dblock
                    n = len(instrs)
                    index = 0
                    blocks += 1
                    lid = tmap.get(target)
                    if lid is None:
                        lid = tmap[target] = len(tlist)
                        tlist.append(target)
                    tappend(lid)
                    continue
                elif k == 6:  # _K_STORE
                    memory[regs[d[1]]] = regs[d[2]]
                elif k == 7:  # _K_READ
                    if tape_pos < tape_len:
                        regs[d[1]] = tape[tape_pos]
                        tape_pos += 1
                    else:
                        regs[d[1]] = -1
                elif k == 8:  # _K_PRINT
                    output.append(regs[d[1]])
                elif k == 9:  # _K_UNOP
                    regs[d[2]] = d[1](regs[d[3]])
                elif k == 10:  # _K_MBR
                    branches += 1
                    targets = d[2]
                    sel = regs[d[1]]
                    if 0 <= sel < len(targets) - 1:
                        target = targets[sel]
                    else:
                        target = targets[-1]
                    dblock = pcache.get(target)
                    if dblock is None:
                        dblock = pcache[target] = decode(
                            program, proc.block(target)
                        )
                    frame.label = target
                    instrs = dblock
                    n = len(instrs)
                    index = 0
                    blocks += 1
                    lid = tmap.get(target)
                    if lid is None:
                        lid = tmap[target] = len(tlist)
                        tlist.append(target)
                    tappend(lid)
                    continue
                elif k == 11:  # _K_SPILL_LD
                    regs[d[1]] = spill.get(d[2], 0)
                elif k == 12:  # _K_SPILL_ST
                    spill[d[1]] = regs[d[2]]
                elif k == 13:  # _K_CALL
                    calls += 1
                    argv = [regs[s] for s in d[2]]
                    frame.index = index + 1
                    frame.dblock = instrs
                    stack.append(
                        self._make_frame(d[1], argv, next_frame_id, d[3])
                    )
                    tstack.append(open_frame(d[1]))
                    next_frame_id += 1
                    blocks += 1
                    transferred = True
                    break
                elif k == 14:  # _K_RET
                    value = regs[d[1]] if d[1] is not None else 0
                    stack.pop()
                    tstack.pop()
                    if stack:
                        if frame.ret_dest is not None:
                            stack[-1].regs[frame.ret_dest] = value
                    else:
                        return_value = value
                    transferred = True
                    break
                else:  # _K_NOP
                    pass
                index += 1
            per_name = proc.name
            per_procedure[per_name] = (
                per_procedure.get(per_name, 0) + instructions - round_start
            )
            if not transferred:
                raise InterpreterError(
                    f"fell off the end of block {frame.label}"
                    f" in {proc.name}"
                )

        result = ExecutionResult(
            output=output,
            return_value=return_value,
            instructions=instructions,
            branches=branches,
            blocks=blocks,
            calls=calls,
            per_procedure=per_procedure,
        )
        proc_names = [""] * len(proc_ids)
        for name, pidx in proc_ids.items():
            proc_names[pidx] = name
        trace = ExecutionTrace(
            proc_names=proc_names,
            labels=label_lists,
            frames=frames_rec,
        )
        return result, trace

    # -- instrumented path ---------------------------------------------------

    def _run_observed(
        self, input_tape: Sequence[int], args: Sequence[int]
    ) -> ExecutionResult:
        program = self.program
        observer = self.observer
        enter_procedure = observer.enter_procedure
        exit_procedure = observer.exit_procedure
        block_executed = observer.block_executed
        memory: Dict[int, int] = {}
        output: List[int] = []
        tape = list(input_tape)
        tape_pos = 0
        tape_len = len(tape)

        instructions = 0
        branches = 0
        blocks = 0
        calls = 0
        per_procedure: Dict[str, int] = {}

        limit = self.step_limit
        next_frame_id = 1
        decode = _decode_block

        entry_proc = program.procedure(program.entry)
        frame = self._make_frame(entry_proc, list(args), 0, None)
        enter_procedure(entry_proc.name, 0)
        block_executed(entry_proc.name, 0, entry_proc.entry_label)
        stack: List[_Frame] = [frame]
        blocks += 1
        return_value = 0

        while stack:
            frame = stack[-1]
            proc = frame.proc
            proc_name = proc.name
            frame_id = frame.frame_id
            regs = frame.regs
            spill = frame.spill
            pcache = frame.pcache
            instrs = frame.dblock
            index = frame.index
            n = len(instrs)
            round_start = instructions
            transferred = False
            while index < n:
                d = instrs[index]
                instructions += 1
                if instructions > limit:
                    raise StepLimitExceeded(
                        f"exceeded {limit} dynamic instructions"
                    )
                k = d[0]
                if k == 0:  # _K_BINOP
                    regs[d[2]] = d[1](regs[d[3]], regs[d[4]])
                elif k == 1:  # _K_BR
                    branches += 1
                    target = d[2] if regs[d[1]] else d[3]
                    dblock = pcache.get(target)
                    if dblock is None:
                        dblock = pcache[target] = decode(
                            program, proc.block(target)
                        )
                    frame.label = target
                    instrs = dblock
                    n = len(instrs)
                    index = 0
                    blocks += 1
                    block_executed(proc_name, frame_id, target)
                    continue
                elif k == 2:  # _K_LI
                    regs[d[1]] = d[2]
                elif k == 3:  # _K_MOV
                    regs[d[1]] = regs[d[2]]
                elif k == 4:  # _K_LOAD
                    regs[d[1]] = memory.get(regs[d[2]], 0)
                elif k == 5:  # _K_JMP
                    target = d[1]
                    dblock = pcache.get(target)
                    if dblock is None:
                        dblock = pcache[target] = decode(
                            program, proc.block(target)
                        )
                    frame.label = target
                    instrs = dblock
                    n = len(instrs)
                    index = 0
                    blocks += 1
                    block_executed(proc_name, frame_id, target)
                    continue
                elif k == 6:  # _K_STORE
                    memory[regs[d[1]]] = regs[d[2]]
                elif k == 7:  # _K_READ
                    if tape_pos < tape_len:
                        regs[d[1]] = tape[tape_pos]
                        tape_pos += 1
                    else:
                        regs[d[1]] = -1
                elif k == 8:  # _K_PRINT
                    output.append(regs[d[1]])
                elif k == 9:  # _K_UNOP
                    regs[d[2]] = d[1](regs[d[3]])
                elif k == 10:  # _K_MBR
                    branches += 1
                    targets = d[2]
                    sel = regs[d[1]]
                    if 0 <= sel < len(targets) - 1:
                        target = targets[sel]
                    else:
                        target = targets[-1]
                    dblock = pcache.get(target)
                    if dblock is None:
                        dblock = pcache[target] = decode(
                            program, proc.block(target)
                        )
                    frame.label = target
                    instrs = dblock
                    n = len(instrs)
                    index = 0
                    blocks += 1
                    block_executed(proc_name, frame_id, target)
                    continue
                elif k == 11:  # _K_SPILL_LD
                    regs[d[1]] = spill.get(d[2], 0)
                elif k == 12:  # _K_SPILL_ST
                    spill[d[1]] = regs[d[2]]
                elif k == 13:  # _K_CALL
                    calls += 1
                    callee = d[1]
                    argv = [regs[s] for s in d[2]]
                    frame.index = index + 1
                    frame.dblock = instrs
                    callee_frame = self._make_frame(
                        callee, argv, next_frame_id, d[3]
                    )
                    enter_procedure(callee.name, next_frame_id)
                    block_executed(
                        callee.name, next_frame_id, callee.entry_label
                    )
                    next_frame_id += 1
                    stack.append(callee_frame)
                    blocks += 1
                    transferred = True
                    break
                elif k == 14:  # _K_RET
                    value = regs[d[1]] if d[1] is not None else 0
                    exit_procedure(proc_name, frame_id)
                    stack.pop()
                    if stack:
                        if frame.ret_dest is not None:
                            stack[-1].regs[frame.ret_dest] = value
                    else:
                        return_value = value
                    transferred = True
                    break
                else:  # _K_NOP
                    pass
                index += 1
            per_procedure[proc_name] = (
                per_procedure.get(proc_name, 0) + instructions - round_start
            )
            if not transferred:
                raise InterpreterError(
                    f"fell off the end of block {frame.label}"
                    f" in {proc.name}"
                )

        return ExecutionResult(
            output=output,
            return_value=return_value,
            instructions=instructions,
            branches=branches,
            blocks=blocks,
            calls=calls,
            per_procedure=per_procedure,
        )


def run_program(
    program: Program,
    input_tape: Sequence[int] = (),
    args: Sequence[int] = (),
    step_limit: int = 50_000_000,
    observer: Optional[ExecutionObserver] = None,
    jit: Optional[bool] = None,
) -> ExecutionResult:
    """Convenience wrapper: interpret ``program`` and return the result."""
    return Interpreter(
        program, step_limit=step_limit, observer=observer, jit=jit
    ).run(input_tape, args)


def run_program_traced(
    program: Program,
    input_tape: Sequence[int] = (),
    args: Sequence[int] = (),
    step_limit: int = 50_000_000,
    jit: Optional[bool] = None,
) -> Tuple[ExecutionResult, ExecutionTrace]:
    """Interpret ``program`` while recording its compact execution trace."""
    return Interpreter(program, step_limit=step_limit, jit=jit).run_traced(
        input_tape, args
    )
