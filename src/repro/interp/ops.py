"""Scalar operation semantics shared by the interpreter and the VLIW
simulator.

Keeping one evaluation table guarantees that scheduled code and original code
agree on arithmetic corner cases (division truncates toward zero, remainder
takes the dividend's sign, shifts are arithmetic), so output-equivalence
checks test the *schedulers*, not accidental semantic drift.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..ir.instructions import Opcode


class MachineFault(Exception):
    """Raised when an excepting instruction faults (e.g. divide by zero)."""


def _div(a: int, b: int) -> int:
    if b == 0:
        raise MachineFault("integer divide by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _mod(a: int, b: int) -> int:
    if b == 0:
        raise MachineFault("integer modulo by zero")
    return a - _div(a, b) * b


def _shl(a: int, b: int) -> int:
    return a << (b & 63)


def _shr(a: int, b: int) -> int:
    return a >> (b & 63)


#: Two-source ALU evaluation functions.
BINARY_EVAL: Dict[Opcode, Callable[[int, int], int]] = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.DIV: _div,
    Opcode.MOD: _mod,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: _shl,
    Opcode.SHR: _shr,
    Opcode.CMPEQ: lambda a, b: int(a == b),
    Opcode.CMPNE: lambda a, b: int(a != b),
    Opcode.CMPLT: lambda a, b: int(a < b),
    Opcode.CMPLE: lambda a, b: int(a <= b),
    Opcode.CMPGT: lambda a, b: int(a > b),
    Opcode.CMPGE: lambda a, b: int(a >= b),
}

#: One-source ALU evaluation functions.
UNARY_EVAL: Dict[Opcode, Callable[[int], int]] = {
    Opcode.NEG: lambda a: -a,
    Opcode.NOT: lambda a: int(a == 0),
}
