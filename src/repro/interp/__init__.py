"""Reference interpreter and shared operation semantics."""

from .interpreter import (
    ExecutionObserver,
    ExecutionResult,
    Interpreter,
    InterpreterError,
    StepLimitExceeded,
    run_program,
)
from .ops import BINARY_EVAL, MachineFault, UNARY_EVAL

__all__ = [
    "BINARY_EVAL",
    "ExecutionObserver",
    "ExecutionResult",
    "Interpreter",
    "InterpreterError",
    "MachineFault",
    "StepLimitExceeded",
    "UNARY_EVAL",
    "run_program",
]
