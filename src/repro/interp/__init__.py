"""Reference interpreter and shared operation semantics."""

from .interpreter import (
    ExecutionObserver,
    ExecutionResult,
    Interpreter,
    InterpreterError,
    StepLimitExceeded,
    run_program,
    run_program_traced,
)
from .ops import BINARY_EVAL, MachineFault, UNARY_EVAL
from .trace import ExecutionTrace

__all__ = [
    "BINARY_EVAL",
    "ExecutionObserver",
    "ExecutionResult",
    "ExecutionTrace",
    "Interpreter",
    "InterpreterError",
    "MachineFault",
    "StepLimitExceeded",
    "UNARY_EVAL",
    "run_program",
    "run_program_traced",
]
