"""Unified path-profile-driven superblock enlargement (Figure 2,
``enlarge_trace``).

One mechanism replaces branch target expansion, loop peeling, and loop
unrolling: repeatedly append a copy of the *most-likely path successor* of
the (growing) superblock.  Because the successor is chosen from exact path
frequencies over the longest known suffix, the enlarger

* unrolls high-trip-count loops (the path stays in the loop for the whole
  history depth),
* peels low-trip-count loops (the path history contains the common exit, so
  growth follows the loop for the observed number of iterations and then
  leaves), and
* tracks correlated and alternating multi-iteration patterns (Figure 3's
  Path1/Path2) that no point profile can express.

Stopping rules, as in the paper: stop at any superblock head that is not a
superblock-loop head; stop when a configurable number of superblock-loop
heads have been absorbed (4 in the paper's "P4"); stop at a static
instruction budget; and only enlarge superblocks whose *completion ratio*
(exact frequency of the full superblock path over its head frequency)
reaches a user threshold.  The "P4e" variant additionally restricts
superblocks that are *not* superblock loops to tail-duplicated code: they may
absorb copy-headed duplicate chains but stop at every primary superblock
head and never absorb a loop, restraining code growth (Section 4's fix for
the gcc/go miss-rate increases).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..ir.cfg import Procedure
from ..profiling.path_profile import PathProfile
from .duplication import OriginMap, duplicate_chain, retarget


@dataclass
class PathEnlargeConfig:
    """Tuning knobs for the unified path-based enlarger."""

    #: Superblock-loop heads that may be absorbed before stopping ("P4"=4).
    max_loop_heads: int = 4
    #: Only enlarge superblocks completing with at least this frequency.
    completion_threshold: float = 0.5
    #: Static instruction budget per superblock after enlargement.
    max_instructions: int = 256
    #: P4e: non-loop superblocks use only tail-duplicated code — they may
    #: absorb copy-headed duplicate chains but stop at primary superblock
    #: heads and never absorb superblock loops.
    stop_nonloop_at_first_head: bool = False


def is_superblock_loop_path(
    proc: Procedure,
    sb: List[str],
    profile: PathProfile,
    origin: OriginMap,
) -> bool:
    """True when the most-likely path successor of the whole superblock is
    its own head: the path-profile notion of a superblock loop."""
    tail, head = sb[-1], sb[0]
    succs = proc.successors(tail)
    if head not in succs:
        return False
    trace = [origin.get(label, label) for label in sb]
    succ_origins = [origin.get(s, s) for s in succs]
    best = profile.most_likely_path_successor(proc.name, trace, succ_origins)
    return best is not None and best[0] == origin.get(head, head)


def _hinted_slide(
    profile: PathProfile,
    proc: str,
    trace: List[str],
    succ_origins: Dict[str, str],
    unroll_hints: Dict[str, int],
) -> Optional[tuple]:
    """Successor choice past flat-profile depth, under a k-iteration hint.

    The path table stores maximal in-depth windows, so once the growing
    superblock's suffix reaches full profiling depth every extension
    ``suffix + (succ,)`` is longer than any recorded key and the flat
    lookup returns nil.  When the k-iteration profile certifies that the
    governing loop runs more consecutive iterations than the depth can
    express, keep growing by *sliding the window*: score each successor
    by the frequency of the longest recorded window ending in it
    (``known_suffix(trace + (succ,))``), exactly the evidence a deeper
    profile would have provided one block later.

    The governing head is the most recent hinted loop head in the trace;
    its absorption allowance is its hint, counted as occurrences of the
    head origin in the trace (copies included — unlike the flat
    ``max_loop_heads`` rule, unrolled re-entries must count).  Returns
    ``(successor_origin, window_frequency)`` or None to stop.
    """
    governing = None
    for label in reversed(trace):
        if label in unroll_hints:
            governing = label
            break
    if governing is None:
        return None
    if trace.count(governing) >= unroll_hints[governing]:
        return None
    best = None
    for succ_origin in succ_origins:
        window = profile.known_suffix(proc, tuple(trace) + (succ_origin,))
        if len(window) < 2 or window[-1] != succ_origin:
            continue
        freq = profile.freq(proc, window)
        if freq > 0 and (best is None or freq > best[1]):
            best = (succ_origin, freq)
    return best


def enlarge_path(
    proc: Procedure,
    superblocks: List[List[str]],
    profile: PathProfile,
    origin: OriginMap,
    config: Optional[PathEnlargeConfig] = None,
    loop_heads: Optional[Set[str]] = None,
    tracer=None,
    unroll_hints: Optional[Dict[str, int]] = None,
) -> Dict[str, str]:
    """Enlarge every qualifying superblock of ``proc`` in place.

    Returns a map head label -> short description of the growth performed
    (for tests/diagnostics).  Side entrances left by partial absorption of
    other superblocks must be repaired afterwards with
    :func:`repro.formation.duplication.remove_side_entrances`.

    ``unroll_hints`` maps loop-head *origin* labels to k-iteration unroll
    recommendations (see :mod:`repro.profiling.kiter`): a hinted head may
    be absorbed up to its hint many times even past the flat
    ``max_loop_heads`` cap, so cross-iteration evidence of long uniform
    runs unrolls that loop deeper.  Without hints (or with hints at or
    below the cap) growth is identical to the paper's P4 rule.

    With a tracer, the completion-ratio gate and every grow/stop step is
    recorded as an ``enlarge`` decision: the chosen path successor with
    its exact path frequency, the rejected alternatives, and the
    stopping rule that ended growth.
    """
    config = config or PathEnlargeConfig()
    unroll_hints = unroll_hints or {}
    applied: Dict[str, str] = {}
    heads: Dict[str, List[str]] = {sb[0]: sb for sb in superblocks}
    if loop_heads is None:
        loop_heads = {
            sb[0]
            for sb in superblocks
            if is_superblock_loop_path(proc, sb, profile, origin)
        }
    order = sorted(
        superblocks,
        key=lambda sb: (
            -profile.block_count(proc.name, origin.get(sb[0], sb[0])),
            sb[0],
        ),
    )
    for sb in order:
        head = sb[0]
        trace = [origin.get(label, label) for label in sb]
        ratio = profile.completion_ratio(proc.name, trace)
        grown = 0

        def _note(action, reason=None, **fields):
            if tracer is not None:
                record = {
                    "enlarger": "path",
                    "proc": proc.name,
                    "head": head,
                    "step": grown + 1,
                    "action": action,
                }
                if reason is not None:
                    record["reason"] = reason
                record.update(fields)
                tracer.decision("enlarge", **record)

        if ratio < config.completion_threshold:
            if tracer is not None:
                tracer.decision(
                    "enlarge",
                    enlarger="path",
                    proc=proc.name,
                    head=head,
                    action="ratio_skip",
                    ratio=round(ratio, 6),
                    threshold=config.completion_threshold,
                )
            continue
        self_is_loop = head in loop_heads
        absorbed_loops = 0
        absorbed_by_head: Dict[str, int] = {}
        while True:
            if (
                sum(len(proc.block(label)) for label in sb)
                >= config.max_instructions
            ):
                _note("stop", "instruction_budget")
                break
            tail = sb[-1]
            succs = proc.successors(tail)
            if not succs:
                _note("stop", "no_successors")
                break
            succ_origins = {origin.get(s, s): s for s in succs}
            best = profile.most_likely_path_successor(
                proc.name, trace, list(succ_origins)
            )
            hint_slide = False
            if best is None:
                if unroll_hints:
                    best = _hinted_slide(
                        profile, proc.name, trace, succ_origins, unroll_hints
                    )
                    hint_slide = best is not None
                if best is None:
                    _note("stop", "no_observed_path")
                    break
            succ_origin = best[0]
            succ = succ_origins[succ_origin]
            if succ in heads:
                if config.stop_nonloop_at_first_head and not self_is_loop:
                    # P4e: a non-loop superblock may still absorb
                    # *tail-duplicated* code (copy-headed chains) — the
                    # paper's "enlargement uses only tail-duplicated code" —
                    # but stops at every primary superblock head and never
                    # absorbs a superblock loop.
                    is_copy_head = origin.get(succ, succ) != succ
                    if (succ in loop_heads) or not is_copy_head:
                        _note(
                            "stop",
                            "p4e_loop_head"
                            if succ in loop_heads
                            else "p4e_primary_head",
                            candidate=succ_origin,
                        )
                        break
                if succ in loop_heads:
                    if absorbed_loops >= config.max_loop_heads and (
                        absorbed_by_head.get(succ_origin, 0)
                        >= unroll_hints.get(succ_origin, 0)
                    ):
                        # The "fifth superblock loop head" rule — unless a
                        # k-iteration hint grants this head a deeper
                        # unroll allowance.
                        _note(
                            "stop",
                            "max_loop_heads",
                            candidate=succ_origin,
                            absorbed_loops=absorbed_loops,
                        )
                        break
                    absorbed_loops += 1
                    absorbed_by_head[succ_origin] = (
                        absorbed_by_head.get(succ_origin, 0) + 1
                    )
                # Non-loop heads are passed through: this is how the unified
                # mechanism performs branch target expansion and how the
                # Path1/Path2 unrollings of Figure 3 absorb the secondary
                # arm's block.  Section 4 of the paper: "In P4, all
                # superblocks are treated equally: a superblock ... is
                # enlarged until it contains at most 4 superblock loops."
            if tracer is not None:
                freqs = profile.successor_frequencies(
                    proc.name, trace, list(succ_origins)
                )
                _note(
                    "grow",
                    chosen=succ_origin,
                    freq=best[1],
                    is_loop_head=succ in loop_heads,
                    absorbed_loops=absorbed_loops,
                    via="kiter_slide" if hint_slide else "path",
                    alternatives=sorted(
                        (
                            [label, freq]
                            for label, freq in freqs.items()
                            if label != succ_origin
                        ),
                        key=lambda kv: (-kv[1], kv[0]),
                    ),
                )
            chain = duplicate_chain(proc, [succ], origin)
            retarget(proc.block(tail).instructions[-1], succ, chain[0])
            sb.append(chain[0])
            trace.append(succ_origin)
            grown += 1
        if grown:
            applied[head] = (
                f"grew {grown} blocks, {absorbed_loops} loop heads"
            )
    return applied
