"""The ``form`` pass: superblock selection and enlargement (Section 2.3).

:func:`form_superblocks` runs one of the paper's formation schemes over a
program, producing a :class:`~repro.formation.superblock.FormationResult`
whose transformed program is semantically equivalent to the input (all code
growth is duplication) and whose every control-transfer target is a
superblock head.

Schemes (Section 4):

=========  ==============================================================
``BB``     every basic block is its own region (Table 1 baseline)
``M4``     edge profile, mutual-most-likely selection, classical
           enlargements, unroll factor 4 (baseline of Figures 4-6)
``M16``    M4 with unroll factor 16 (Figure 6)
``P4``     path-profile selection + unified path enlargement, up to 4
           superblock-loop heads (Section 2.2)
``P4e``    P4, but non-loop superblocks stop at the first head (Figure 5)
``P4i``    P4 after demand-driven profile-guided inlining (hot call
           chains become single-procedure superblock fodder)
``P4k``    P4 with k-iteration path profiles feeding per-loop unroll
           hints into the unified enlarger
=========  ==============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..ir.cfg import IRError, Procedure, Program
from ..profiling.edge_profile import EdgeProfile
from ..profiling.path_profile import PathProfile
from .duplication import OriginMap, remove_side_entrances, tail_duplicate
from .enlarge_classic import (
    ClassicEnlargeConfig,
    enlarge_classic,
    is_superblock_loop_edge,
)
from .enlarge_path import (
    PathEnlargeConfig,
    enlarge_path,
    is_superblock_loop_path,
)
from .inline import InlineConfig
from ..profiling.kiter import KIterConfig, KIterProfile
from .selection import (
    select_traces_basic_block,
    select_traces_mutual_most_likely,
    select_traces_path,
)
from .superblock import FormationResult, Superblock, verify_formation
from ..trace.tracer import tspan


@dataclass
class FormationConfig:
    """Fully describes one formation scheme."""

    #: "bb", "edge", or "path"
    kind: str = "edge"
    #: Scheme name used in reports ("M4", "P4", ...).
    name: str = "M4"
    #: Enable the enlargement phase (selection+tail-duplication always run).
    enlarge: bool = True
    classic: ClassicEnlargeConfig = field(default_factory=ClassicEnlargeConfig)
    path: PathEnlargeConfig = field(default_factory=PathEnlargeConfig)
    #: Profile-guided inlining ahead of formation (``None`` = off; the
    #: default keeps every pre-existing scheme byte-identical).
    inline: Optional[InlineConfig] = None
    #: k-iteration path profiling feeding per-loop unroll hints into the
    #: unified enlarger (``None`` = off).
    kiter: Optional[KIterConfig] = None


def scheme(name: str, **overrides) -> FormationConfig:
    """Look up one of the paper's named schemes; keyword overrides adjust
    the underlying enlargement knobs (e.g. ``max_instructions=128``)."""
    presets: Dict[str, FormationConfig] = {
        "BB": FormationConfig(kind="bb", name="BB", enlarge=False),
        "M4": FormationConfig(
            kind="edge",
            name="M4",
            classic=ClassicEnlargeConfig(unroll_factor=4),
        ),
        "M16": FormationConfig(
            kind="edge",
            name="M16",
            classic=ClassicEnlargeConfig(unroll_factor=16),
        ),
        "P4": FormationConfig(
            kind="path",
            name="P4",
            path=PathEnlargeConfig(max_loop_heads=4),
        ),
        "P4e": FormationConfig(
            kind="path",
            name="P4e",
            path=PathEnlargeConfig(
                max_loop_heads=4, stop_nonloop_at_first_head=True
            ),
        ),
        "P4i": FormationConfig(
            kind="path",
            name="P4i",
            path=PathEnlargeConfig(max_loop_heads=4),
            inline=InlineConfig(),
        ),
        "P4k": FormationConfig(
            kind="path",
            name="P4k",
            path=PathEnlargeConfig(max_loop_heads=4),
            kiter=KIterConfig(k=16),
        ),
    }
    if name not in presets:
        raise ValueError(f"unknown scheme {name!r}; choose from {sorted(presets)}")
    config = presets[name]
    if overrides:
        classic_fields = set(ClassicEnlargeConfig.__dataclass_fields__)
        path_fields = set(PathEnlargeConfig.__dataclass_fields__)
        inline_fields = set(InlineConfig.__dataclass_fields__)
        kiter_fields = set(KIterConfig.__dataclass_fields__)
        classic_kw = {
            k: v for k, v in overrides.items() if k in classic_fields
        }
        path_kw = {k: v for k, v in overrides.items() if k in path_fields}
        inline_kw = {
            k: v for k, v in overrides.items() if k in inline_fields
        }
        kiter_kw = {k: v for k, v in overrides.items() if k in kiter_fields}
        unknown = (
            set(overrides)
            - classic_fields
            - path_fields
            - inline_fields
            - kiter_fields
        )
        if unknown:
            raise ValueError(f"unknown overrides: {sorted(unknown)}")
        if inline_kw and config.inline is None:
            raise ValueError(
                f"scheme {name!r} has no inliner; inline overrides need P4i"
            )
        if kiter_kw and config.kiter is None:
            raise ValueError(
                f"scheme {name!r} has no k-iteration profiler; overrides"
                " like k= need P4k"
            )
        config = replace(
            config,
            classic=replace(config.classic, **classic_kw),
            path=replace(config.path, **path_kw),
            inline=(
                replace(config.inline, **inline_kw)
                if inline_kw
                else config.inline
            ),
            kiter=(
                replace(config.kiter, **kiter_kw)
                if kiter_kw
                else config.kiter
            ),
        )
    return config


def _static_size(proc: Procedure):
    """(block count, instruction count) of one procedure right now."""
    return len(proc.labels), sum(len(proc.block(l)) for l in proc.labels)


def form_superblocks(
    program: Program,
    config: FormationConfig,
    edge_profile: Optional[EdgeProfile] = None,
    path_profile: Optional[PathProfile] = None,
    validation=None,
    metrics=None,
    tracer=None,
    kiter_profile: Optional[KIterProfile] = None,
) -> FormationResult:
    """Run the configured formation scheme over every procedure.

    The input program is not modified; the result holds a transformed copy.
    Raises :class:`IRError` when the result violates the formation
    invariants (a formation bug, not a user error).  ``validation``
    (a :class:`~repro.validation.ValidationConfig`) additionally runs the
    full IR verifier and formation structure checks as a stage checkpoint,
    raising :class:`~repro.validation.ValidationError` on violation.
    ``metrics`` (a :class:`~repro.metrics.MetricsSink`) records one timed
    event per procedure plus superblock and code-growth counters.
    ``tracer`` (a :class:`~repro.trace.Tracer`) records every selection
    and enlargement decision plus a per-procedure formation span.
    ``kiter_profile`` (a :class:`~repro.profiling.kiter.KIterProfile`)
    supplies cross-iteration unroll hints to the path enlarger when
    ``config.kiter`` is set; inlining itself happens *before* this
    function (see ``repro.pipeline.compile_scheme``), which receives the
    already-inlined program here.
    """
    if config.kind == "edge" and edge_profile is None:
        raise ValueError("edge-based formation needs an edge profile")
    if config.kind == "path" and path_profile is None:
        raise ValueError("path-based formation needs a path profile")

    transformed = program.copy()
    result = FormationResult(
        program=transformed, scheme=config.name or config.kind
    )
    for proc in transformed.procedures():
        origin: OriginMap = {}
        with tspan(tracer, "formation.form", proc=proc.name):
            if metrics is None:
                sbs, loops = _form_procedure(
                    proc, config, edge_profile, path_profile, origin, tracer,
                    kiter_profile,
                )
            else:
                blocks_in, instrs_in = _static_size(proc)
                with metrics.stage("formation.form", proc=proc.name) as out:
                    sbs, loops = _form_procedure(
                        proc, config, edge_profile, path_profile, origin,
                        tracer, kiter_profile,
                    )
                    blocks_out, instrs_out = _static_size(proc)
                    out["superblocks"] = len(sbs)
                    out["blocks_in"] = blocks_in
                    out["blocks_out"] = blocks_out
                    out["instructions_in"] = instrs_in
                    out["instructions_out"] = instrs_out
                metrics.add("formation.superblocks", len(sbs))
                metrics.add("formation.loop_superblocks", len(loops))
                metrics.add("formation.blocks_in", blocks_in)
                metrics.add("formation.blocks_out", blocks_out)
                metrics.add("formation.instructions_in", instrs_in)
                metrics.add("formation.instructions_out", instrs_out)
        result.superblocks[proc.name] = [
            Superblock(proc.name, labels, is_loop=labels[0] in loops)
            for labels in sbs
        ]
        result.origin[proc.name] = origin
    if metrics is None:
        problems = verify_formation(result)
    else:
        with metrics.stage("formation.verify"):
            problems = verify_formation(result)
    if problems:
        raise IRError(
            f"formation invariant violation ({config.name}): "
            + "; ".join(problems[:5])
        )
    if validation is not None and validation.any_formation_checks:
        # Imported lazily: repro.validation pulls in this package.
        from ..validation.invariants import (
            check_cfg_consistency,
            check_formation_invariants,
            require,
        )

        if validation.check_ir:
            require("formation:ir", check_cfg_consistency(transformed))
        if validation.check_formation:
            require("formation:structure", check_formation_invariants(result))
    return result


def _form_procedure(
    proc: Procedure,
    config: FormationConfig,
    edge_profile: Optional[EdgeProfile],
    path_profile: Optional[PathProfile],
    origin: OriginMap,
    tracer=None,
    kiter_profile: Optional[KIterProfile] = None,
):
    """Returns ``(superblock label lists, loop head set)``.

    Loop heads are classified on the *initial* (pre-enlargement) superblocks,
    matching the paper's definition: enlargement itself may unroll a loop
    into a region whose final branch no longer prefers the head.
    """
    if config.kind == "bb":
        return [list(t) for t in select_traces_basic_block(proc)], set()
    if config.kind == "edge":
        traces = select_traces_mutual_most_likely(proc, edge_profile, tracer)
        sbs = tail_duplicate(proc, traces, origin, tracer)
        loops = {
            sb[0]
            for sb in sbs
            if is_superblock_loop_edge(
                proc, sb, edge_profile, config.classic.likely_threshold, origin
            )
        }
        if config.enlarge:
            enlarge_classic(
                proc, sbs, edge_profile, origin, config.classic, loops,
                tracer=tracer,
            )
        sbs = remove_side_entrances(proc, sbs, origin, tracer)
        return sbs, loops
    if config.kind == "path":
        traces = select_traces_path(proc, path_profile, tracer)
        sbs = tail_duplicate(proc, traces, origin, tracer)
        loops = {
            sb[0]
            for sb in sbs
            if is_superblock_loop_path(proc, sb, path_profile, origin)
        }
        if config.enlarge:
            unroll_hints = None
            if kiter_profile is not None:
                unroll_hints = kiter_profile.unroll_hints(
                    proc.name, config.path.max_loop_heads
                )
            enlarge_path(
                proc, sbs, path_profile, origin, config.path, loops,
                tracer=tracer, unroll_hints=unroll_hints,
            )
        sbs = remove_side_entrances(proc, sbs, origin, tracer)
        return sbs, loops
    raise ValueError(f"unknown formation kind {config.kind!r}")
