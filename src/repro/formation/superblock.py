"""Superblock representation and formation-wide invariants.

A superblock is a sequence of basic blocks with a single entry (the head) and
possibly many side exits (Section 2 of the paper).  Formation transforms a
*copy* of the input program; :class:`FormationResult` carries the transformed
program, the partition of every block into superblocks, and the ``origin``
map taking duplicated/enlarged block labels back to the original CFG labels
(used for profile queries and for the Figure 7 metrics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.cfg import Procedure, Program


@dataclass
class Superblock:
    """One scheduling region: ``labels[0]`` is the single entry."""

    proc: str
    labels: List[str]
    #: True when the last block is likely to jump back to the head.
    is_loop: bool = False

    @property
    def head(self) -> str:
        """Label of the single entry block."""
        return self.labels[0]

    @property
    def size_blocks(self) -> int:
        """Number of basic blocks in the superblock."""
        return len(self.labels)

    def instruction_count(self, proc: Procedure) -> int:
        """Static instruction count over the member blocks."""
        return sum(len(proc.block(label)) for label in self.labels)

    def __contains__(self, label: str) -> bool:
        return label in self.labels


@dataclass
class FormationResult:
    """Output of a formation pass over a whole program."""

    #: The transformed program (tail-duplicated and enlarged copies).
    program: Program
    #: proc name -> superblocks partitioning that procedure's blocks.
    superblocks: Dict[str, List[Superblock]] = field(default_factory=dict)
    #: proc name -> label -> original CFG label (identity for originals).
    origin: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: Name of the scheme that produced this result (e.g. "M4", "P4").
    scheme: str = ""
    #: The pre-formation program formation actually ran on, when it differs
    #: from the user's input (profile-guided inlining rewrote it).  This is
    #: the program provenance ids resolve against; ``None`` means the input
    #: program itself.
    source_program: Optional[Program] = None

    def origin_of(self, proc: str, label: str) -> str:
        """Original CFG label a (possibly duplicated) block descends from."""
        return self.origin.get(proc, {}).get(label, label)

    def superblock_of(self, proc: str, label: str) -> Superblock:
        """The superblock containing block ``label``."""
        for sb in self.superblocks.get(proc, []):
            if label in sb.labels:
                return sb
        raise KeyError(f"{proc}/{label} is in no superblock")

    def heads(self, proc: str) -> Dict[str, Superblock]:
        """Map head label -> superblock for one procedure."""
        return {sb.head: sb for sb in self.superblocks.get(proc, [])}

    def member_index(self, proc: str) -> Dict[str, Tuple[int, int]]:
        """Map label -> (superblock index, position within superblock)."""
        index: Dict[str, Tuple[int, int]] = {}
        for si, sb in enumerate(self.superblocks.get(proc, [])):
            for pi, label in enumerate(sb.labels):
                index[label] = (si, pi)
        return index


def verify_formation(result: FormationResult) -> List[str]:
    """Check the structural invariants every formation scheme must satisfy.

    * every block belongs to exactly one superblock;
    * the procedure entry is a superblock head;
    * every control-transfer target is a superblock head (single-entry), with
      the sole exception of a block's transfer to its immediate on-trace
      successor within the same superblock;
    * superblock member sequences are connected (block i can transfer to
      block i+1).
    """
    problems: List[str] = []
    for proc in result.program.procedures():
        sbs = result.superblocks.get(proc.name, [])
        seen: Dict[str, int] = {}
        for si, sb in enumerate(sbs):
            for label in sb.labels:
                if label in seen:
                    problems.append(
                        f"{proc.name}/{label}: in superblocks"
                        f" {seen[label]} and {si}"
                    )
                seen[label] = si
        for label in proc.labels:
            if label not in seen:
                problems.append(f"{proc.name}/{label}: in no superblock")
        heads = {sb.head for sb in sbs}
        if proc.entry_label not in heads:
            problems.append(
                f"{proc.name}: entry {proc.entry_label} is not a head"
            )
        member = result.member_index(proc.name)
        for sb in sbs:
            for pi, label in enumerate(sb.labels):
                block = proc.block(label)
                succs = block.successors() if block.instructions and block.instructions[-1].is_terminator else ()
                for target in succs:
                    if target in heads:
                        continue
                    ti = member.get(target)
                    if ti is None:
                        problems.append(
                            f"{proc.name}/{label}: target {target} unknown"
                        )
                        continue
                    tsi, tpi = ti
                    if not (
                        tsi == member[label][0] and tpi == pi + 1
                    ):
                        problems.append(
                            f"{proc.name}/{label}: side entrance into"
                            f" {target} (superblock {tsi} pos {tpi})"
                        )
                if pi + 1 < len(sb.labels):
                    nxt = sb.labels[pi + 1]
                    if nxt not in succs:
                        problems.append(
                            f"{proc.name}/{label}: disconnected from"
                            f" on-trace successor {nxt}"
                        )
    return problems
