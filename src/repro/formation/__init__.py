"""Superblock formation: trace selection, tail duplication, enlargement."""

from .duplication import (
    OriginMap,
    duplicate_chain,
    remove_side_entrances,
    retarget,
    tail_duplicate,
)
from .enlarge_classic import (
    ClassicEnlargeConfig,
    enlarge_classic,
    expected_trip_count,
    is_superblock_loop_edge,
)
from .enlarge_path import (
    PathEnlargeConfig,
    enlarge_path,
    is_superblock_loop_path,
)
from .inline import InlineConfig, InlineStats, inline_program
from .pipeline import FormationConfig, form_superblocks, scheme
from .selection import (
    Trace,
    select_traces_basic_block,
    select_traces_mutual_most_likely,
    select_traces_path,
)
from .superblock import FormationResult, Superblock, verify_formation

__all__ = [
    "ClassicEnlargeConfig",
    "FormationConfig",
    "FormationResult",
    "InlineConfig",
    "InlineStats",
    "OriginMap",
    "PathEnlargeConfig",
    "Superblock",
    "Trace",
    "duplicate_chain",
    "enlarge_classic",
    "enlarge_path",
    "expected_trip_count",
    "form_superblocks",
    "inline_program",
    "is_superblock_loop_edge",
    "is_superblock_loop_path",
    "remove_side_entrances",
    "retarget",
    "scheme",
    "select_traces_basic_block",
    "select_traces_mutual_most_likely",
    "select_traces_path",
    "tail_duplicate",
    "verify_formation",
]
