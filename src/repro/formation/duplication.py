"""Code duplication machinery: tail duplication and chain copying.

Tail duplication (Section 2.1) turns traces into superblocks by copying the
trace suffix starting at each side entrance and redirecting the off-trace
predecessors to the copy.  The same chain-copy primitive also implements
superblock enlargement (classical unrolling/expansion and the unified
path-based enlarger) and the post-enlargement side-entrance fixup.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..ir.cfg import Procedure
from ..ir.instructions import Instruction

OriginMap = Dict[str, str]


def retarget(instr: Instruction, old: str, new: str) -> None:
    """Replace every occurrence of target label ``old`` with ``new``."""
    instr.targets = tuple(new if t == old else t for t in instr.targets)


def duplicate_chain(
    proc: Procedure,
    labels: Sequence[str],
    origin: OriginMap,
) -> List[str]:
    """Copy the blocks ``labels`` as a connected chain of fresh blocks.

    Each copy's control transfer to the *next source label* is redirected to
    the next copy, so the chain is internally connected; all other targets
    (side exits) are preserved.  The ``origin`` map is extended so each copy
    points at the original CFG label of its source.

    Returns the labels of the new chain in order.
    """
    copies = []
    for label in labels:
        new_label = proc.fresh_label(f"{label}.d")
        block = proc.block(label).copy(new_label)
        proc.add_block(block)
        origin[new_label] = origin.get(label, label)
        copies.append(block)
    for j in range(len(labels) - 1):
        retarget(copies[j].instructions[-1], labels[j + 1], copies[j + 1].label)
    return [c.label for c in copies]


def tail_duplicate(
    proc: Procedure,
    traces: Sequence[List[str]],
    origin: OriginMap,
    tracer=None,
) -> List[List[str]]:
    """Remove side entrances from every trace by tail duplication.

    For each trace position ``i > 0`` with a predecessor other than the
    on-trace predecessor, the suffix ``trace[i:]`` is copied once and all the
    offending predecessors are redirected into the copy.  Each copy chain is
    itself a clean (single-entry) region and is returned as an additional
    superblock.

    Returns the superblock label lists: the input traces (now side-entrance
    free) followed by the duplicate chains.
    """
    superblocks = [list(t) for t in traces]
    chains: List[List[str]] = []
    for sb in superblocks:
        for i in range(1, len(sb)):
            label = sb[i]
            preds = proc.predecessors()[label]
            side = sorted({p for p in preds if p != sb[i - 1]})
            if not side:
                continue
            chain = duplicate_chain(proc, sb[i:], origin)
            for pred in side:
                retarget(proc.block(pred).instructions[-1], label, chain[0])
            if tracer is not None:
                tracer.decision(
                    "tail_dup",
                    proc=proc.name,
                    head=sb[0],
                    at=label,
                    side_preds=side,
                    copied=list(sb[i:]),
                    chain=list(chain),
                )
            chains.append(chain)
    return superblocks + chains


def remove_side_entrances(
    proc: Procedure,
    superblocks: List[List[str]],
    origin: OriginMap,
    tracer=None,
) -> List[List[str]]:
    """Post-enlargement fixup: restore the single-entry invariant.

    Path-based enlargement copies blocks one at a time and may stop with a
    copy whose untaken arm jumps into the *middle* of another superblock.
    This pass restores the invariant that every transfer targets a head.

    Every duplicated block is observationally equivalent to its origin:
    duplication copies instructions verbatim, branches keep all their exit
    arms, and arms are only ever redirected to labels of the same origin.
    So a side entrance into a non-head block ``q`` is first repaired by
    redirecting the offending edges to an existing *head* whose origin
    matches ``q`` (preferring the original CFG block) — this is what closes
    path-unrolled loops back onto their own heads.  Only when no equivalent
    head exists is the dangling suffix tail-duplicated into a fresh chain
    superblock (whose head then becomes an equivalent head for later
    repairs, so one worklist sweep converges).

    Returns the updated superblock list (chains appended); mutates ``proc``.
    """
    result = [list(sb) for sb in superblocks]
    while True:
        preds = proc.predecessors()
        violation = None
        for si, sb in enumerate(result):
            for pi in range(1, len(sb)):
                side = sorted(
                    {p for p in preds.get(sb[pi], []) if p != sb[pi - 1]}
                )
                if side:
                    violation = (sb, pi, side)
                    break
            if violation:
                break
        if violation is None:
            return result
        sb, pi, side = violation
        target_origin = origin.get(sb[pi], sb[pi])
        heads = {s[0] for s in result}
        equivalent = [
            h for h in heads if origin.get(h, h) == target_origin
        ]
        if target_origin in equivalent:
            new_target = target_origin
            repair = "retarget_original_head"
        elif equivalent:
            new_target = min(equivalent)
            repair = "retarget_equivalent_head"
        else:
            chain = duplicate_chain(proc, sb[pi:], origin)
            result.append(chain)
            new_target = chain[0]
            repair = "duplicate_suffix"
        if tracer is not None:
            tracer.decision(
                "reentry",
                proc=proc.name,
                head=sb[0],
                at=sb[pi],
                side_preds=side,
                repair=repair,
                new_target=new_target,
            )
        for pred in side:
            retarget(proc.block(pred).instructions[-1], sb[pi], new_target)
