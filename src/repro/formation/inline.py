"""Demand-driven, profile-guided procedure inlining (pre-formation).

Superblock formation works one procedure at a time, so a hot path that
crosses a call site is invisible to it: the trace stops at the ``CALL`` and
the scheduler loses every cross-call compaction opportunity.  Following the
region-based-optimizer literature, this pass runs *ahead* of formation and
splices the bodies of hot callees into their callers, turning hot call
chains into single-procedure superblock fodder:

1. **Rank call sites by edge-profile heat.**  A site's heat is the dynamic
   execution count of its containing block.  Ranking and tie-breaking are
   fully deterministic: ``(-count, caller name, block label, instruction
   index)`` — container order never leaks into the result.
2. **Inline the hottest site that fits the budget.**  The callee CFG is
   cloned into the caller under fresh block labels, callee virtual
   registers are shifted above the caller's register space, parameters
   become ``MOV``s, and every ``RET`` becomes a ``MOV`` of the return value
   (or ``LI 0`` for a bare ``ret``, matching the interpreter) plus a jump
   to the split-off continuation block.
3. **Repeat on the grown program.**  Calls cloned out of a callee body are
   themselves candidates in later rounds, so hot chains ``a -> b -> c``
   flatten end to end, bounded by a per-site depth guard, a recursion
   guard (a callee never inlines into a clone of itself), and a whole-
   program code-growth budget.

The transformation is semantics-preserving by construction: the interpreter
binds parameters by position, returns 0 for a value-less ``ret``, and keeps
memory/I-O global, all of which the generated ``MOV``/``LI``/``JMP``
sequence reproduces exactly.  Provenance is re-stamped *after* inlining
(see ``repro.pipeline.compile_scheme``), so two clones of the same callee
instruction get distinct ``proc:block:index`` ids — the provenance checker
keeps resolving every scheduled op to exactly one source instruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.cfg import BasicBlock, Procedure, Program
from ..ir.instructions import Instruction, Opcode, jmp, li, mov
from ..profiling.edge_profile import EdgeProfile


@dataclass(frozen=True)
class InlineConfig:
    """Budget and guard knobs for profile-guided inlining."""

    #: Whole-program static growth cap: inlining stops when the program
    #: would exceed ``original size * max_growth_ratio`` instructions.
    max_growth_ratio: float = 1.6
    #: Only callees at most this large (static instructions) are inlined.
    max_callee_instructions: int = 120
    #: Sites whose containing block ran fewer times are never inlined.
    min_site_count: int = 1
    #: A call site descended from ``max_inline_depth`` nested inlinings is
    #: left alone (bounds chain flattening).
    max_inline_depth: int = 3
    #: Hard cap on inlined sites per program (safety valve).
    max_sites: int = 32
    #: Drop procedures that become unreachable from the entry point in the
    #: call graph after inlining (smaller layouts, no dead formation work).
    prune_uncalled: bool = True


@dataclass
class InlineStats:
    """What one :func:`inline_program` run did."""

    sites_considered: int = 0
    sites_inlined: int = 0
    #: Distinct callee procedures inlined at least once.
    procs_inlined: int = 0
    instructions_added: int = 0
    procs_pruned: int = 0


def _callee_reg_span(callee: Procedure) -> int:
    """One past the highest virtual register the callee mentions."""
    hi = callee.max_reg
    for block in callee.blocks():
        for instr in block:
            if instr.dest is not None and instr.dest >= hi:
                hi = instr.dest + 1
            for src in instr.srcs:
                if src >= hi:
                    hi = src + 1
    return hi


def _inline_site(
    proc: Procedure,
    label: str,
    index: int,
    callee: Procedure,
    lineage: Dict[int, Tuple[str, ...]],
) -> Tuple[str, Dict[str, str]]:
    """Splice ``callee`` into ``proc`` at the call ``label[index]``.

    Returns ``(continuation label, callee label -> clone label map)``.  The
    containing block keeps its label (predecessors stay wired); the code
    after the call moves to a fresh continuation block.
    """
    block = proc.block(label)
    site = block.instructions[index]
    base = proc.max_reg
    proc.note_reg(base + _callee_reg_span(callee) - 1)

    label_map = {
        lbl: proc.fresh_label(f"inl_{callee.name}_") for lbl in callee.labels
    }
    cont = BasicBlock(
        proc.fresh_label(f"inl_{callee.name}_cont_"),
        block.instructions[index + 1 :],
    )
    proc.add_block(cont)

    head = block.instructions[:index]
    for param, arg in zip(callee.params, site.srcs):
        head.append(mov(base + param, arg))
    head.append(jmp(label_map[callee.entry_label]))
    block.instructions = head

    site_lineage = lineage.get(id(site), ()) + (callee.name,)
    for lbl in callee.labels:
        clone = BasicBlock(label_map[lbl])
        for instr in callee.block(lbl):
            if instr.opcode is Opcode.RET:
                if site.dest is not None:
                    if instr.srcs:
                        clone.instructions.append(
                            mov(site.dest, base + instr.srcs[0])
                        )
                    else:
                        # A value-less return yields 0 in the interpreter.
                        clone.instructions.append(li(site.dest, 0))
                clone.instructions.append(jmp(cont.label))
                continue
            copied = instr.copy()
            if copied.dest is not None:
                copied.dest += base
            copied.srcs = tuple(src + base for src in copied.srcs)
            if copied.targets:
                copied.targets = tuple(
                    label_map[t] for t in copied.targets
                )
            if copied.opcode is Opcode.CALL:
                lineage[id(copied)] = site_lineage
            clone.instructions.append(copied)
        proc.add_block(clone)
    return cont.label, label_map


def _candidate_sites(
    program: Program,
    heat: Dict[str, Dict[str, int]],
    lineage: Dict[int, Tuple[str, ...]],
    config: InlineConfig,
) -> List[Tuple[int, str, str, int, Instruction, Procedure]]:
    """Every inlinable call site, ranked hottest-first with deterministic
    tie-breaks ``(-count, caller, block label, index)``."""
    sites: List[Tuple[int, str, str, int, Instruction, Procedure]] = []
    for proc in program.procedures():
        proc_heat = heat.get(proc.name, {})
        for label in proc.labels:
            for index, instr in enumerate(proc.block(label)):
                if instr.opcode is not Opcode.CALL:
                    continue
                count = proc_heat.get(label, 0)
                if count < config.min_site_count:
                    continue
                callee_name = instr.callee
                if callee_name == proc.name:
                    continue  # direct recursion
                site_lineage = lineage.get(id(instr), ())
                if callee_name in site_lineage:
                    continue  # indirect recursion through an inlined body
                if len(site_lineage) >= config.max_inline_depth:
                    continue
                if not program.has_procedure(callee_name):
                    continue
                callee = program.procedure(callee_name)
                if (
                    callee.instruction_count()
                    > config.max_callee_instructions
                ):
                    continue
                sites.append((count, proc.name, label, index, instr, callee))
    sites.sort(key=lambda s: (-s[0], s[1], s[2], s[3]))
    return sites


def _prune_uncalled(program: Program) -> int:
    """Drop procedures unreachable from the entry in the call graph."""
    reachable = {program.entry}
    work = [program.entry]
    while work:
        proc = program.procedure(work.pop())
        for block in proc.blocks():
            for instr in block:
                if (
                    instr.opcode is Opcode.CALL
                    and instr.callee not in reachable
                    and program.has_procedure(instr.callee)
                ):
                    reachable.add(instr.callee)
                    work.append(instr.callee)
    doomed = [name for name in program.names if name not in reachable]
    for name in doomed:
        program.remove(name)
    return len(doomed)


def inline_program(
    program: Program,
    edge_profile: EdgeProfile,
    config: Optional[InlineConfig] = None,
    tracer=None,
) -> Tuple[Program, InlineStats]:
    """Inline hot call sites of ``program``, hottest first, under budget.

    The input program is never modified; the returned program is a
    transformed copy (the very same object as a fresh ``program.copy()``
    when nothing qualified, so callers can test ``stats.sites_inlined`` to
    skip re-profiling).  ``edge_profile`` must describe a training run of
    ``program`` — its block counts rank the sites, and heat is propagated
    onto cloned blocks by integer scaling (``callee count * site count //
    callee entries``) so chained candidates in later rounds stay
    comparable without re-profiling.

    With a ``tracer``, every inlined site is recorded as an ``inline``
    decision (caller, block, index, callee, heat) and the final stop
    carries its reason, mirroring the enlargers' decision log.
    """
    config = config or InlineConfig()
    stats = InlineStats()
    work = program.copy()
    budget = int(work.instruction_count() * config.max_growth_ratio)
    #: call-instruction id -> chain of callee names it descends from
    lineage: Dict[int, Tuple[str, ...]] = {}
    heat: Dict[str, Dict[str, int]] = {
        proc.name: {
            label: edge_profile.block_count(proc.name, label)
            for label in proc.labels
        }
        for proc in work.procedures()
    }
    inlined_callees = set()

    def _note(action, **fields):
        if tracer is not None:
            tracer.decision("inline", action=action, **fields)

    while stats.sites_inlined < config.max_sites:
        sites = _candidate_sites(work, heat, lineage, config)
        if not sites:
            _note("stop", reason="no_candidates")
            break
        stats.sites_considered += len(sites)
        chosen = None
        for count, caller_name, label, index, instr, callee in sites:
            if (
                work.instruction_count() + callee.instruction_count() + 2
                <= budget
            ):
                chosen = (count, caller_name, label, index, instr, callee)
                break
        if chosen is None:
            _note("stop", reason="growth_budget", budget=budget)
            break
        count, caller_name, label, index, instr, callee = chosen
        caller = work.procedure(caller_name)
        before = caller.instruction_count()
        cont_label, label_map = _inline_site(
            caller, label, index, callee, lineage
        )
        # Propagate heat so later rounds rank chained candidates: the
        # continuation runs as often as the call completed, and each cloned
        # callee block inherits its share of the callee's profile scaled to
        # this site (integer math keeps the ranking deterministic).
        caller_heat = heat[caller_name]
        caller_heat[cont_label] = count
        entries = max(1, edge_profile.entry_count(callee.name))
        for lbl, clone_lbl in label_map.items():
            caller_heat[clone_lbl] = (
                edge_profile.block_count(callee.name, lbl) * count // entries
            )
        stats.sites_inlined += 1
        inlined_callees.add(callee.name)
        stats.instructions_added += caller.instruction_count() - before
        _note(
            "inline",
            caller=caller_name,
            block=label,
            index=index,
            callee=callee.name,
            count=count,
            grown_to=work.instruction_count(),
        )
    else:
        _note("stop", reason="max_sites", max_sites=config.max_sites)

    stats.procs_inlined = len(inlined_callees)
    if stats.sites_inlined and config.prune_uncalled:
        stats.procs_pruned = _prune_uncalled(work)
        if stats.procs_pruned:
            _note("prune", procs=stats.procs_pruned)
    return work, stats
