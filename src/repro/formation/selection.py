"""Trace selection: partitioning a procedure's blocks into traces.

Two selectors, sharing the same skeleton (Figure 2 of the paper):

* :func:`select_traces_mutual_most_likely` — the MultiFlow/IMPACT heuristic
  over edge profiles: grow a trace downward while the successor's most-likely
  predecessor is the current tail and vice versa.
* :func:`select_traces_path` — the paper's contribution: grow the trace by
  the *most-likely path successor*, the node whose appended trace has the
  highest exact path frequency.

Shared rules: seeds are taken in decreasing block-frequency order; traces may
not contain a block reached by a back edge except as the trace head (loop
headers only start traces); a block belongs to at most one trace; the
procedure entry block can only be a trace head.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Set, Tuple

from ..analysis.loops import loop_headers
from ..ir.cfg import Procedure
from ..profiling.edge_profile import EdgeProfile
from ..profiling.path_profile import PathProfile

#: A trace is an ordered list of block labels within one procedure.
Trace = List[str]


def _seed_order(
    proc: Procedure,
    ranked: Sequence[Tuple[str, int]],
    headers: Set[str],
) -> List[str]:
    """Profiled blocks by frequency, then never-executed blocks in layout
    order (they still need singleton traces).

    Loop headers win frequency ties: every block of a hot loop body runs
    equally often, and seeding from the header lets the trace cover the
    whole iteration — which is what makes the region a recognizable
    *superblock loop* for the enlargers.
    """
    counted = [(label, count) for label, count in ranked if count > 0]
    counted.sort(key=lambda kv: (-kv[1], kv[0] not in headers, kv[0]))
    ranked_labels = [label for label, _ in counted]
    ranked_set = set(ranked_labels)
    cold = [label for label in proc.labels if label not in ranked_set]
    return ranked_labels + cold


def _grow_trace(
    proc: Procedure,
    seed: str,
    taken: Set[str],
    headers: Set[str],
    pick_successor: Callable[[Trace], Optional[str]],
) -> Trace:
    """Grow a trace downward from ``seed`` using ``pick_successor``."""
    trace: Trace = [seed]
    taken.add(seed)
    while True:
        succ = pick_successor(trace)
        if succ is None:
            break
        if succ in taken:
            break
        if succ in headers:
            break  # reached by a back edge: may only head its own trace
        if succ == proc.entry_label:
            break  # the procedure entry must stay a region head
        if succ in trace:
            break  # safety net for irreducible shapes
        trace.append(succ)
        taken.add(succ)
    return trace


def select_traces_mutual_most_likely(
    proc: Procedure, profile: EdgeProfile
) -> List[Trace]:
    """Partition ``proc``'s blocks into traces with the mutual-most-likely
    heuristic over an edge profile [Lowney et al.]."""
    headers = loop_headers(proc)
    taken: Set[str] = set()

    def pick(trace: Trace) -> Optional[str]:
        tail = trace[-1]
        best = profile.most_likely_successor(proc.name, tail)
        if best is None or best[1] == 0:
            return None
        succ, _ = best
        if succ not in proc.successors(tail):
            return None  # stale profile entry (defensive)
        back = profile.most_likely_predecessor(proc.name, succ)
        if back is None or back[0] != tail:
            return None  # not mutually most likely
        return succ

    traces: List[Trace] = []
    for seed in _seed_order(proc, profile.blocks_by_count(proc.name), headers):
        if seed in taken:
            continue
        traces.append(_grow_trace(proc, seed, taken, headers, pick))
    return traces


def select_traces_path(
    proc: Procedure, profile: PathProfile
) -> List[Trace]:
    """Partition ``proc``'s blocks into traces using exact path frequencies
    (Figure 2's ``select_trace``).

    The trace is extended by the successor whose appended path ``t . s`` has
    the highest exact frequency; growth stops at the paper's conditions
    (successor in another trace, reached by a back edge) or when no extension
    was ever observed to execute.
    """
    headers = loop_headers(proc)
    taken: Set[str] = set()

    def pick(trace: Trace) -> Optional[str]:
        tail = trace[-1]
        succs = proc.successors(tail)
        if not succs:
            return None
        best = profile.most_likely_path_successor(proc.name, trace, succs)
        if best is None:
            return None
        return best[0]

    traces: List[Trace] = []
    for seed in _seed_order(proc, profile.blocks_by_count(proc.name), headers):
        if seed in taken:
            continue
        traces.append(_grow_trace(proc, seed, taken, headers, pick))
    return traces


def select_traces_basic_block(proc: Procedure) -> List[Trace]:
    """Degenerate selection: every block is its own trace (the BB baseline
    used for Table 1's cycle counts)."""
    return [[label] for label in proc.labels]
