"""Trace selection: partitioning a procedure's blocks into traces.

Two selectors, sharing the same skeleton (Figure 2 of the paper):

* :func:`select_traces_mutual_most_likely` — the MultiFlow/IMPACT heuristic
  over edge profiles: grow a trace downward while the successor's most-likely
  predecessor is the current tail and vice versa.
* :func:`select_traces_path` — the paper's contribution: grow the trace by
  the *most-likely path successor*, the node whose appended trace has the
  highest exact path frequency.

Shared rules: seeds are taken in decreasing block-frequency order; traces may
not contain a block reached by a back edge except as the trace head (loop
headers only start traces); a block belongs to at most one trace; the
procedure entry block can only be a trace head.

When a :class:`~repro.trace.Tracer` is supplied, every seed choice and
every grow step is recorded as a ``select`` decision — the chosen
successor with its frequency, the rejected alternatives, and (for stops)
the rule that ended the trace.  All tracer work is behind
``if tracer is not None``: an untraced run performs exactly the same
profile queries as before.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.loops import loop_headers
from ..ir.cfg import Procedure
from ..profiling.edge_profile import EdgeProfile
from ..profiling.path_profile import PathProfile

#: A trace is an ordered list of block labels within one procedure.
Trace = List[str]


def _seed_order(
    proc: Procedure,
    ranked: Sequence[Tuple[str, int]],
    headers: Set[str],
) -> List[str]:
    """Profiled blocks by frequency, then never-executed blocks in layout
    order (they still need singleton traces).

    Loop headers win frequency ties: every block of a hot loop body runs
    equally often, and seeding from the header lets the trace cover the
    whole iteration — which is what makes the region a recognizable
    *superblock loop* for the enlargers.
    """
    counted = [(label, count) for label, count in ranked if count > 0]
    counted.sort(key=lambda kv: (-kv[1], kv[0] not in headers, kv[0]))
    ranked_labels = [label for label, _ in counted]
    ranked_set = set(ranked_labels)
    cold = [label for label in proc.labels if label not in ranked_set]
    return ranked_labels + cold


def _grow_trace(
    proc: Procedure,
    seed: str,
    taken: Set[str],
    headers: Set[str],
    pick_successor: Callable[[Trace], Optional[str]],
    tracer=None,
    proposal: Optional[Dict] = None,
    selector: Optional[str] = None,
) -> Trace:
    """Grow a trace downward from ``seed`` using ``pick_successor``.

    With a tracer, ``pick_successor`` leaves its reasoning (candidate,
    frequency, alternatives, rejection reason) in ``proposal`` and each
    step is recorded here — after the shared stop rules have spoken, so
    the decision log reflects what actually happened to the trace.
    """
    trace: Trace = [seed]
    taken.add(seed)
    step = 0
    while True:
        if proposal is not None:
            proposal.clear()
        succ = pick_successor(trace)
        step += 1
        if succ is None:
            if tracer is not None:
                tracer.decision(
                    "select",
                    selector=selector,
                    proc=proc.name,
                    head=seed,
                    step=step,
                    action="stop",
                    reason=proposal.get("reason", "no_successor"),
                    **{
                        k: v
                        for k, v in proposal.items()
                        if k in ("candidate", "freq", "alternatives", "mutual_pred")
                    },
                )
            break
        stop_reason = None
        if succ in taken:
            stop_reason = "in_other_trace"
        elif succ in headers:
            stop_reason = "loop_header"  # reached by a back edge
        elif succ == proc.entry_label:
            stop_reason = "procedure_entry"
        elif succ in trace:
            stop_reason = "already_in_trace"  # irreducible-shape safety net
        if tracer is not None:
            fields = {
                k: v
                for k, v in proposal.items()
                if k in ("freq", "alternatives")
            }
            if stop_reason is None:
                tracer.decision(
                    "select",
                    selector=selector,
                    proc=proc.name,
                    head=seed,
                    step=step,
                    action="extend",
                    chosen=succ,
                    **fields,
                )
            else:
                tracer.decision(
                    "select",
                    selector=selector,
                    proc=proc.name,
                    head=seed,
                    step=step,
                    action="stop",
                    reason=stop_reason,
                    candidate=succ,
                    **fields,
                )
        if stop_reason is not None:
            break
        trace.append(succ)
        taken.add(succ)
    return trace


def _record_seed(tracer, selector, proc, seed, counts) -> None:
    tracer.decision(
        "select",
        selector=selector,
        proc=proc.name,
        head=seed,
        step=0,
        action="seed",
        freq=counts.get(seed, 0),
    )


def select_traces_mutual_most_likely(
    proc: Procedure, profile: EdgeProfile, tracer=None
) -> List[Trace]:
    """Partition ``proc``'s blocks into traces with the mutual-most-likely
    heuristic over an edge profile [Lowney et al.]."""
    headers = loop_headers(proc)
    taken: Set[str] = set()
    proposal: Optional[Dict] = {} if tracer is not None else None

    def pick(trace: Trace) -> Optional[str]:
        tail = trace[-1]
        best = profile.most_likely_successor(proc.name, tail)
        if best is None or best[1] == 0:
            if proposal is not None:
                proposal["reason"] = "no_profiled_successor"
                proposal["alternatives"] = [
                    list(kv)
                    for kv in profile.successors_by_count(proc.name, tail)
                ]
            return None
        succ, count = best
        if proposal is not None:
            proposal["freq"] = count
            proposal["alternatives"] = [
                list(kv)
                for kv in profile.successors_by_count(proc.name, tail)
                if kv[0] != succ
            ]
        if succ not in proc.successors(tail):
            if proposal is not None:
                proposal["reason"] = "stale_profile_edge"
                proposal["candidate"] = succ
            return None  # stale profile entry (defensive)
        back = profile.most_likely_predecessor(proc.name, succ)
        if back is None or back[0] != tail:
            if proposal is not None:
                proposal["reason"] = "not_mutually_most_likely"
                proposal["candidate"] = succ
                if back is not None:
                    proposal["mutual_pred"] = back[0]
            return None  # not mutually most likely
        return succ

    ranked = profile.blocks_by_count(proc.name)
    counts = dict(ranked) if tracer is not None else None
    traces: List[Trace] = []
    for seed in _seed_order(proc, ranked, headers):
        if seed in taken:
            continue
        if tracer is not None:
            _record_seed(tracer, "edge", proc, seed, counts)
        traces.append(
            _grow_trace(
                proc, seed, taken, headers, pick,
                tracer=tracer, proposal=proposal, selector="edge",
            )
        )
    return traces


def select_traces_path(
    proc: Procedure, profile: PathProfile, tracer=None
) -> List[Trace]:
    """Partition ``proc``'s blocks into traces using exact path frequencies
    (Figure 2's ``select_trace``).

    The trace is extended by the successor whose appended path ``t . s`` has
    the highest exact frequency; growth stops at the paper's conditions
    (successor in another trace, reached by a back edge) or when no extension
    was ever observed to execute.
    """
    headers = loop_headers(proc)
    taken: Set[str] = set()
    proposal: Optional[Dict] = {} if tracer is not None else None

    def pick(trace: Trace) -> Optional[str]:
        tail = trace[-1]
        succs = proc.successors(tail)
        if not succs:
            if proposal is not None:
                proposal["reason"] = "no_successors"
            return None
        best = profile.most_likely_path_successor(proc.name, trace, succs)
        if proposal is not None:
            freqs = profile.successor_frequencies(proc.name, trace, succs)
            chosen = best[0] if best is not None else None
            proposal["alternatives"] = sorted(
                ([label, freq] for label, freq in freqs.items()
                 if label != chosen),
                key=lambda kv: (-kv[1], kv[0]),
            )
            if best is None:
                proposal["reason"] = "no_observed_path"
            else:
                proposal["freq"] = best[1]
        if best is None:
            return None
        return best[0]

    ranked = profile.blocks_by_count(proc.name)
    counts = dict(ranked) if tracer is not None else None
    traces: List[Trace] = []
    for seed in _seed_order(proc, ranked, headers):
        if seed in taken:
            continue
        if tracer is not None:
            _record_seed(tracer, "path", proc, seed, counts)
        traces.append(
            _grow_trace(
                proc, seed, taken, headers, pick,
                tracer=tracer, proposal=proposal, selector="path",
            )
        )
    return traces


def select_traces_basic_block(proc: Procedure) -> List[Trace]:
    """Degenerate selection: every block is its own trace (the BB baseline
    used for Table 1's cycle counts)."""
    return [[label] for label in proc.labels]
