"""Classical (edge-profile) superblock enlargement.

Implements the three IMPACT-style enlarging optimizations of Section 2.1:

* **branch target expansion** — when a superblock's final branch is likely to
  jump to the head of another (non-loop) superblock, the contents of that
  superblock are appended;
* **loop unrolling** — a superblock loop with a high expected trip count gets
  ``factor - 1`` extra copies of its body, back edges re-chained so only the
  last copy returns to the original head;
* **loop peeling** — a superblock loop with a low expected trip count gets
  ``ceil(expected trips)`` body copies instead.  (We realize peeling through
  the same body-chaining transformation as unrolling; the duplicated-code
  shape — one straight-line run covering the expected iterations, exits to
  the original loop on deviation — is the same, which is precisely the
  unification the paper points out.)

All decisions are heuristic estimates knit from independent edge
frequencies; contrast with :mod:`repro.formation.enlarge_path`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..ir.cfg import Procedure
from ..profiling.edge_profile import EdgeProfile
from .duplication import OriginMap, duplicate_chain, retarget


@dataclass
class ClassicEnlargeConfig:
    """Tuning knobs for the classical enlarger."""

    #: Unroll factor: total number of body copies in an unrolled loop (the
    #: paper evaluates 4 and 16).
    unroll_factor: int = 4
    #: Minimum taken probability for the final branch before we expand or
    #: treat a superblock as a loop.
    likely_threshold: float = 0.60
    #: Expected trip count at or below which a loop is peeled rather than
    #: unrolled.
    peel_trip_threshold: float = 2.5
    #: Static instruction budget per superblock after enlargement.
    max_instructions: int = 256
    #: Maximum number of branch-target expansions per superblock.
    max_expansions: int = 8


def is_superblock_loop_edge(
    proc: Procedure,
    sb: List[str],
    profile: EdgeProfile,
    threshold: float,
    origin: Optional[OriginMap] = None,
) -> bool:
    """True when the superblock's last block likely jumps to its head.

    Duplicated blocks are translated through ``origin`` so the edge-profile
    query refers to the profiled (original) CFG labels.
    """
    origin = origin or {}
    tail, head = sb[-1], sb[0]
    if head not in proc.successors(tail):
        return False
    p = profile.branch_probability(
        proc.name, origin.get(tail, tail), origin.get(head, head)
    )
    return p >= threshold


def expected_trip_count(
    proc: Procedure,
    sb: List[str],
    profile: EdgeProfile,
    origin: Optional[OriginMap] = None,
) -> float:
    """Expected iterations per entry, estimated from the back-edge
    probability p as 1 / (1 - p)."""
    origin = origin or {}
    p = profile.branch_probability(
        proc.name,
        origin.get(sb[-1], sb[-1]),
        origin.get(sb[0], sb[0]),
    )
    if p >= 0.999:
        return 1000.0
    return 1.0 / (1.0 - p)


def _sb_instructions(proc: Procedure, sb: List[str]) -> int:
    return sum(len(proc.block(label)) for label in sb)


def _unroll(
    proc: Procedure,
    sb: List[str],
    copies: int,
    origin: OriginMap,
    max_instructions: int,
) -> None:
    """Append ``copies`` extra body copies, re-chaining the back edge."""
    body = list(sb)
    head = sb[0]
    body_size = _sb_instructions(proc, body)
    # Copy every body instance *before* rewiring: duplicating after the
    # original tail's back edge has been retargeted would propagate the
    # retargeted arm into later copies.
    budget = max_instructions - _sb_instructions(proc, sb)
    chains = [
        duplicate_chain(proc, body, origin)
        for _ in range(min(copies, max(0, budget // body_size)))
    ]
    for chain in chains:
        # Previous tail's back edge now continues into the new copy.
        retarget(proc.block(sb[-1]).instructions[-1], head, chain[0])
        sb.extend(chain)
    # The final copy's back edge still targets the original head, closing
    # the (now larger) loop.


def _expand_target(
    proc: Procedure,
    sb: List[str],
    target_sb: List[str],
    origin: OriginMap,
) -> None:
    """Append a copy of ``target_sb``'s contents to ``sb``."""
    chain = duplicate_chain(proc, target_sb, origin)
    retarget(proc.block(sb[-1]).instructions[-1], target_sb[0], chain[0])
    sb.extend(chain)


def enlarge_classic(
    proc: Procedure,
    superblocks: List[List[str]],
    profile: EdgeProfile,
    origin: OriginMap,
    config: Optional[ClassicEnlargeConfig] = None,
    loop_heads: Optional[Set[str]] = None,
    tracer=None,
) -> Dict[str, str]:
    """Run the classical enlargements over all superblocks of ``proc``.

    Superblocks are processed in decreasing head-frequency order; each is
    either unrolled/peeled (superblock loops) or branch-target expanded
    (non-loops).  Returns a map head label -> applied transformation name
    (used by tests and diagnostics).

    With a tracer, every peel/unroll choice and every expansion step (or
    refusal) becomes an ``enlarge`` decision carrying the estimates —
    expected trip count, branch probability, alternatives — the
    heuristic acted on.
    """
    config = config or ClassicEnlargeConfig()
    applied: Dict[str, str] = {}
    by_head = {sb[0]: sb for sb in superblocks}
    if loop_heads is None:
        loop_heads = {
            sb[0]
            for sb in superblocks
            if is_superblock_loop_edge(
                proc, sb, profile, config.likely_threshold, origin
            )
        }
    order = sorted(
        superblocks,
        key=lambda sb: (-profile.block_count(proc.name, origin.get(sb[0], sb[0])), sb[0]),
    )
    for sb in order:
        head = sb[0]
        if head in loop_heads:
            trips = expected_trip_count(proc, sb, profile, origin)
            if trips <= config.peel_trip_threshold:
                copies = max(1, math.ceil(trips)) - 1
                copies = min(copies, config.unroll_factor - 1)
                if tracer is not None:
                    tracer.decision(
                        "enlarge",
                        enlarger="classic",
                        proc=proc.name,
                        head=head,
                        action="peel" if copies > 0 else "peel_skip",
                        trips=round(trips, 6),
                        copies=copies,
                        threshold=config.peel_trip_threshold,
                    )
                if copies > 0:
                    _unroll(proc, sb, copies, origin, config.max_instructions)
                    applied[head] = "peel"
            else:
                if tracer is not None:
                    tracer.decision(
                        "enlarge",
                        enlarger="classic",
                        proc=proc.name,
                        head=head,
                        action="unroll",
                        trips=round(trips, 6),
                        copies=config.unroll_factor - 1,
                        threshold=config.peel_trip_threshold,
                    )
                _unroll(
                    proc,
                    sb,
                    config.unroll_factor - 1,
                    origin,
                    config.max_instructions,
                )
                applied[head] = "unroll"
            continue
        # Branch target expansion for non-loop superblocks.
        expansions = 0

        def _note(action, reason=None, **fields):
            if tracer is not None:
                record = {
                    "enlarger": "classic",
                    "proc": proc.name,
                    "head": head,
                    "step": expansions + 1,
                    "action": action,
                }
                if reason is not None:
                    record["reason"] = reason
                record.update(fields)
                tracer.decision("enlarge", **record)

        while True:
            if expansions >= config.max_expansions:
                _note("stop", "max_expansions")
                break
            tail = sb[-1]
            best = profile.most_likely_successor(
                proc.name, origin.get(tail, tail)
            )
            if best is None:
                _note("stop", "no_profiled_successor")
                break
            succ_origin, succ_count = best
            # Resolve to the actual successor label in the transformed CFG.
            candidates = [
                s
                for s in proc.successors(tail)
                if origin.get(s, s) == succ_origin
            ]
            if not candidates:
                _note("stop", "target_not_reachable", candidate=succ_origin)
                break
            succ = candidates[0]
            prob = profile.branch_probability(
                proc.name, origin.get(tail, tail), succ_origin
            )
            if prob < config.likely_threshold:
                _note(
                    "stop",
                    "below_likely_threshold",
                    candidate=succ_origin,
                    prob=round(prob, 6),
                    threshold=config.likely_threshold,
                )
                break
            target_sb = by_head.get(succ)
            if target_sb is None or target_sb is sb:
                _note(
                    "stop",
                    "self_target" if target_sb is sb else "target_not_a_head",
                    candidate=succ,
                )
                break
            if target_sb[0] in loop_heads:
                # Never expand into a superblock loop.
                _note("stop", "target_is_loop", candidate=succ)
                break
            if (
                _sb_instructions(proc, sb)
                + _sb_instructions(proc, target_sb)
                > config.max_instructions
            ):
                _note("stop", "instruction_budget", candidate=succ)
                break
            if tracer is not None:
                _note(
                    "expand",
                    chosen=succ,
                    freq=succ_count,
                    prob=round(prob, 6),
                    alternatives=[
                        list(kv)
                        for kv in profile.successors_by_count(
                            proc.name, origin.get(tail, tail)
                        )
                        if kv[0] != succ_origin
                    ],
                )
            _expand_target(proc, sb, target_sb, origin)
            applied.setdefault(head, "expand")
            expansions += 1
    return applied
