"""Figures 4-7 and the Section 4 miss-rate comparison.

Each ``figureN`` function regenerates the data series of the corresponding
figure in the paper; each ``format_figureN`` renders it as text.  Expected
shapes (paper vs. reproduction) are recorded in EXPERIMENTS.md.

* **Figure 4** — cycle counts of path-based superblock scheduling (P4)
  normalized to the edge-based approach (M4), ideal I-cache, all benchmarks.
* **Figure 5** — normalized cycle counts of P4 and P4e through the 32KB
  direct-mapped I-cache (SPEC benchmarks; the micros fit in cache).
* **Figure 6** — P4e (unroll limit 4) versus M16 (edge profiles, unroll 16)
  through the I-cache: is exploiting paths better than unrolling harder?
* **Figure 7** — dynamically weighted basic blocks executed per superblock
  entry versus superblock size in blocks, for M4, M16, P4e, P4.
* **Miss rates** — the gcc/go I-cache miss-rate comparison of Section 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..workloads.suite import MICRO_NAMES, SPEC_NAMES, SUITE_ORDER
from .cache import ExperimentCache
from .harness import SuiteResults, run_suite
from .render import format_bars, format_table


@dataclass
class NormalizedSeries:
    """Normalized cycle counts per workload per scheme."""

    baseline: str
    cached: bool
    #: workload -> scheme -> normalized cycles (baseline == 1.0)
    values: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: workload -> scheme -> raw cycle counts
    raw: Dict[str, Dict[str, int]] = field(default_factory=dict)


def _normalized(
    results: SuiteResults,
    workloads: Sequence[str],
    schemes: Sequence[str],
    baseline: str,
    cached: bool,
) -> NormalizedSeries:
    series = NormalizedSeries(baseline=baseline, cached=cached)
    for wname in workloads:
        base_outcome = results[(wname, baseline)]
        base = (
            base_outcome.cached_result.cycles
            if cached
            else base_outcome.result.cycles
        )
        series.values[wname] = {}
        series.raw[wname] = {}
        for sname in schemes:
            outcome = results[(wname, sname)]
            cycles = (
                outcome.cached_result.cycles
                if cached
                else outcome.result.cycles
            )
            series.values[wname][sname] = cycles / base
            series.raw[wname][sname] = cycles
    return series


# -- Figure 4 ---------------------------------------------------------------


def figure4(
    scale: float = 1.0,
    workload_names: Optional[Sequence[str]] = None,
    verbose: bool = False,
    jobs: int = 1,
    cache: Optional[ExperimentCache] = None,
    trace_cache: bool = True,
    metrics=None,
) -> NormalizedSeries:
    """P4 vs M4 cycle counts, ideal I-cache, all benchmarks."""
    names = list(workload_names) if workload_names else SUITE_ORDER
    results = run_suite(
        ["M4", "P4"],
        names,
        scale=scale,
        with_icache=False,
        verbose=verbose,
        jobs=jobs,
        cache=cache,
        trace_cache=trace_cache,
        metrics=metrics,
    )
    return _normalized(results, names, ["P4"], baseline="M4", cached=False)


def format_figure4(series: NormalizedSeries) -> str:
    return format_bars(
        series.values,
        "Figure 4: P4 cycles normalized to M4 (ideal I-cache; <1 = path wins)",
    )


# -- Figure 5 -----------------------------------------------------------------


def figure5(
    scale: float = 1.0,
    workload_names: Optional[Sequence[str]] = None,
    verbose: bool = False,
    jobs: int = 1,
    cache: Optional[ExperimentCache] = None,
    trace_cache: bool = True,
    metrics=None,
) -> NormalizedSeries:
    """P4 and P4e vs M4 through the 32KB direct-mapped I-cache."""
    names = list(workload_names) if workload_names else SPEC_NAMES
    results = run_suite(
        ["M4", "P4", "P4e"],
        names,
        scale=scale,
        with_icache=True,
        verbose=verbose,
        jobs=jobs,
        cache=cache,
        trace_cache=trace_cache,
        metrics=metrics,
    )
    return _normalized(
        results, names, ["P4", "P4e"], baseline="M4", cached=True
    )


def format_figure5(series: NormalizedSeries) -> str:
    return format_bars(
        series.values,
        "Figure 5: P4/P4e cycles normalized to M4 (32KB DM I-cache)",
    )


# -- Figure 6 -----------------------------------------------------------------


def figure6(
    scale: float = 1.0,
    workload_names: Optional[Sequence[str]] = None,
    verbose: bool = False,
    jobs: int = 1,
    cache: Optional[ExperimentCache] = None,
    trace_cache: bool = True,
    metrics=None,
) -> NormalizedSeries:
    """P4e (paths, unroll 4) vs M16 (edges, unroll 16), I-cache included."""
    names = list(workload_names) if workload_names else SPEC_NAMES
    results = run_suite(
        ["M4", "M16", "P4e"],
        names,
        scale=scale,
        with_icache=True,
        verbose=verbose,
        jobs=jobs,
        cache=cache,
        trace_cache=trace_cache,
        metrics=metrics,
    )
    return _normalized(
        results, names, ["P4e", "M16"], baseline="M4", cached=True
    )


def format_figure6(series: NormalizedSeries) -> str:
    return format_bars(
        series.values,
        "Figure 6: P4e and M16 cycles normalized to M4 (32KB DM I-cache)",
    )


# -- Figure 7 -----------------------------------------------------------------

FIGURE7_SCHEMES = ["M4", "M16", "P4e", "P4"]


@dataclass
class Figure7Data:
    """Per workload, per scheme: (avg blocks executed, avg size in blocks)."""

    #: workload -> scheme -> (average, maximum) in the paper's terms
    values: Dict[str, Dict[str, tuple]] = field(default_factory=dict)


def figure7(
    scale: float = 1.0,
    workload_names: Optional[Sequence[str]] = None,
    verbose: bool = False,
    jobs: int = 1,
    cache: Optional[ExperimentCache] = None,
    trace_cache: bool = True,
    metrics=None,
) -> Figure7Data:
    """Blocks executed per dynamic superblock vs superblock size."""
    names = list(workload_names) if workload_names else SUITE_ORDER
    results = run_suite(
        FIGURE7_SCHEMES,
        names,
        scale=scale,
        with_icache=False,
        verbose=verbose,
        jobs=jobs,
        cache=cache,
        trace_cache=trace_cache,
        metrics=metrics,
    )
    data = Figure7Data()
    for wname in names:
        data.values[wname] = {}
        for sname in FIGURE7_SCHEMES:
            sim = results[(wname, sname)].result
            data.values[wname][sname] = (
                sim.avg_blocks_per_entry,
                sim.avg_superblock_size,
            )
    return data


def format_figure7(data: Figure7Data) -> str:
    rows = []
    for wname, per_scheme in data.values.items():
        for sname in FIGURE7_SCHEMES:
            executed, size = per_scheme[sname]
            rows.append((wname, sname, f"{executed:.2f}", f"{size:.2f}"))
    return format_table(
        ["benchmark", "scheme", "blocks/entry", "size(blocks)"],
        rows,
        title=(
            "Figure 7: dynamic blocks executed per superblock entry (gray"
            " bar) vs superblock size (white bar)"
        ),
    )


# -- Section 4 miss rates ------------------------------------------------------


@dataclass
class MissRateRow:
    """I-cache miss rates of one workload under each scheme."""

    workload: str
    rates: Dict[str, float]


def missrates(
    scale: float = 1.0,
    workload_names: Sequence[str] = ("gcc", "go"),
    schemes: Sequence[str] = ("M4", "P4", "P4e"),
    verbose: bool = False,
    jobs: int = 1,
    cache: Optional[ExperimentCache] = None,
    trace_cache: bool = True,
    metrics=None,
) -> List[MissRateRow]:
    """The gcc/go miss-rate comparison of Section 4."""
    results = run_suite(
        list(schemes),
        list(workload_names),
        scale=scale,
        with_icache=True,
        verbose=verbose,
        jobs=jobs,
        cache=cache,
        trace_cache=trace_cache,
        metrics=metrics,
    )
    rows = []
    for wname in workload_names:
        rates = {
            sname: results[(wname, sname)].cached_result.icache_miss_rate
            for sname in schemes
        }
        rows.append(MissRateRow(workload=wname, rates=rates))
    return rows


def format_missrates(rows: List[MissRateRow]) -> str:
    schemes = list(rows[0].rates) if rows else []
    return format_table(
        ["benchmark"] + [f"{s} miss%" for s in schemes],
        [
            [row.workload] + [f"{row.rates[s] * 100:.2f}" for s in schemes]
            for row in rows
        ],
        title="Section 4: I-cache miss rates (32KB direct-mapped)",
    )
