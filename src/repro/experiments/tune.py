"""The ``tune`` experiment: search the list scheduler's priority-weight space.

:class:`~repro.scheduling.ScheduleWeights` exposes three priority terms
(critical-path height, slack, path weight).  This module runs a **seeded
multi-start search** over that space: candidate weight vectors are drawn
from a :class:`random.Random` seeded by ``--seed``, every candidate is
evaluated by compiling and simulating the suite under
``SchedConfig(weights=...)``, and the candidate with the fewest total
testing-input cycles wins.  The baseline (untuned) weights are always
candidate 0, so the report directly answers "did tuning help?".

Determinism is the point: the persisted JSON names the seed, sample count,
scale, schemes, and workloads, and :func:`replay_tune` re-runs the whole
search from the file's own parameters and compares byte-for-byte.  Every
evaluation flows through :func:`~repro.experiments.harness.run_suite`, so
a warm experiment cache replays candidates without recompiling (the
:class:`~repro.scheduling.SchedConfig` is part of each outcome's cache
key).
"""

from __future__ import annotations

import json
import random
from typing import Any, Dict, List, Optional, Sequence

from ..scheduling.config import SchedConfig
from ..scheduling.list_scheduler import ScheduleWeights
from ..scheduling.machine import (
    MachineModel,
    PAPER_MACHINE,
    REALISTIC_MACHINE,
)
from ..workloads.suite import workload_map
from .cache import ExperimentCache
from .harness import run_suite
from .render import format_table

#: Random candidates drawn per search (the baseline rides along as #0).
DEFAULT_SAMPLES = 12

#: Format version of the persisted search report.
TUNE_VERSION = 1

#: Sample ranges: height stays positive (a negative height inverts the
#: scheduler into pessimization), slack and path are secondary terms.
_HEIGHT_RANGE = (0.25, 2.0)
_SLACK_RANGE = (0.0, 1.0)
_PATH_RANGE = (0.0, 0.5)


def _draw(rng: random.Random) -> ScheduleWeights:
    """One candidate; rounded so the JSON round-trips exactly."""
    return ScheduleWeights(
        height=round(rng.uniform(*_HEIGHT_RANGE), 3),
        slack=round(rng.uniform(*_SLACK_RANGE), 3),
        path=round(rng.uniform(*_PATH_RANGE), 3),
    )


def tune_weights(
    scheme_names: Sequence[str] = ("P4",),
    scale: float = 1.0,
    workload_names: Optional[Sequence[str]] = None,
    samples: int = DEFAULT_SAMPLES,
    seed: int = 0,
    machine: MachineModel = PAPER_MACHINE,
    cache: Optional[ExperimentCache] = None,
    trace_cache: bool = True,
    jobs: int = 1,
    verbose: bool = False,
) -> Dict[str, Any]:
    """Run the seeded multi-start weight search; returns the JSON payload.

    The search is exhaustive over its candidate list (no adaptive steps),
    so the outcome depends only on the seeded draw and the deterministic
    pipeline — two runs with the same parameters produce identical
    payloads, cache or no cache.
    """
    names = (
        list(workload_names) if workload_names else list(workload_map())
    )
    schemes = list(scheme_names)
    rng = random.Random(seed)
    candidates: List[ScheduleWeights] = [ScheduleWeights()]
    candidates.extend(_draw(rng) for _ in range(samples))
    entries: List[Dict[str, Any]] = []
    for index, weights in enumerate(candidates):
        sched = SchedConfig(weights=weights)
        results = run_suite(
            schemes,
            workload_names=names,
            scale=scale,
            machine=machine,
            cache=cache,
            trace_cache=trace_cache,
            jobs=jobs,
            sched=sched,
        )
        cycles = sum(o.result.cycles for o in results.values())
        entries.append(
            {
                "index": index,
                "height": weights.height,
                "slack": weights.slack,
                "path": weights.path,
                "cycles": cycles,
            }
        )
        if verbose:
            tag = "baseline" if index == 0 else f"sample {index}"
            print(
                f"[tune] {tag}: h={weights.height} s={weights.slack}"
                f" p={weights.path} -> {cycles} cycles",
                flush=True,
            )
    best = min(entries, key=lambda e: (e["cycles"], e["index"]))
    baseline = entries[0]
    return {
        "version": TUNE_VERSION,
        "seed": seed,
        "samples": samples,
        "scale": scale,
        "machine": machine.name,
        "schemes": schemes,
        "workloads": names,
        "candidates": entries,
        "best": dict(best),
        "baseline_cycles": baseline["cycles"],
        "improvement": baseline["cycles"] - best["cycles"],
    }


def tune_json(payload: Dict[str, Any]) -> str:
    """Canonical byte encoding of a search report (sorted keys)."""
    return json.dumps(payload, indent=2, sort_keys=True)


def format_tune(payload: Dict[str, Any]) -> str:
    """Human-readable candidate table plus the verdict line."""
    best_index = payload["best"]["index"]
    table = format_table(
        ["candidate", "height", "slack", "path", "cycles", ""],
        [
            (
                "baseline" if e["index"] == 0 else f"#{e['index']}",
                f"{e['height']:.3f}",
                f"{e['slack']:.3f}",
                f"{e['path']:.3f}",
                e["cycles"],
                "<- best" if e["index"] == best_index else "",
            )
            for e in payload["candidates"]
        ],
        title=(
            f"Weight search: seed {payload['seed']},"
            f" {payload['samples']} samples,"
            f" schemes {','.join(payload['schemes'])},"
            f" scale {payload['scale']}"
        ),
    )
    saved = payload["improvement"]
    if saved > 0:
        verdict = (
            f"best candidate #{best_index} saves {saved} cycles"
            f" ({saved / payload['baseline_cycles'] * 100:.3f}%)"
            f" over the untuned scheduler"
        )
    else:
        verdict = "the untuned weights are already the best candidate"
    return f"{table}\n{verdict}"


#: Machines resolvable by name when replaying a persisted search.
_MACHINES: Dict[str, MachineModel] = {
    PAPER_MACHINE.name: PAPER_MACHINE,
    REALISTIC_MACHINE.name: REALISTIC_MACHINE,
}


def replay_tune(
    path: str,
    cache: Optional[ExperimentCache] = None,
    trace_cache: bool = True,
    jobs: int = 1,
    verbose: bool = False,
) -> bool:
    """Re-run a persisted search from its own parameters; ``True`` when the
    fresh payload is byte-identical to the file."""
    with open(path) as fh:
        saved = fh.read()
    payload = json.loads(saved)
    machine = _MACHINES.get(payload["machine"])
    if machine is None:
        raise ValueError(
            f"{path}: unknown machine {payload['machine']!r}"
        )
    fresh = tune_weights(
        scheme_names=payload["schemes"],
        scale=payload["scale"],
        workload_names=payload["workloads"],
        samples=payload["samples"],
        seed=payload["seed"],
        machine=machine,
        cache=cache,
        trace_cache=trace_cache,
        jobs=jobs,
        verbose=verbose,
    )
    return tune_json(fresh) == tune_json(json.loads(saved))
