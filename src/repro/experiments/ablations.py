"""Secondary experiments: claims the paper makes in passing.

* :func:`latency_sensitivity` — Section 3.2: *"We have also generated
  results with more realistic instruction latencies, and we found that the
  benefit of path-profile-based scheduling increased."*
* :func:`forward_vs_general` — Section 2.2: general paths cross back edges
  and capture multi-iteration behaviour; forward (Ball–Larus) paths cannot.
  We form superblocks from each profile kind and compare.
* :func:`static_prediction` — the intellectual ancestor of this paper
  (Young & Smith's static correlated branch prediction): how often does the
  profile's preferred successor match the actual dynamic successor?  Path
  profiles condition the prediction on the preceding block history; edge
  profiles cannot.
* :func:`depth_sweep` — Section 3.1 fixes the profiling depth at 15
  branches; how much path information (and schedule quality) do shallower
  depths give up?  Each workload's training run is recorded **once** and
  the trace replayed through the batch path profiler at every depth — the
  interpreter never re-executes per depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..formation import FormationConfig, PathEnlargeConfig, form_superblocks, scheme
from ..interp.interpreter import ExecutionObserver, run_program
from ..pipeline import run_scheme
from ..profiling.collector import (
    TracedRun,
    collect_profiles,
    profiles_from_trace_multi,
    record_trace,
)
from ..scheduling.machine import MachineModel, PAPER_MACHINE, REALISTIC_MACHINE
from ..workloads.base import Workload
from ..workloads.suite import workload_map
from .cache import ExperimentCache, trace_key
from .render import format_table

#: The reduced sweep used by the ``depthsweep`` experiment and the parity
#: suite (the paper's fixed depth, 15, is the last point).
DEFAULT_SWEEP_DEPTHS = (1, 3, 7, 15)


# -- latency sensitivity -----------------------------------------------------


@dataclass
class LatencySensitivityRow:
    """P4/M4 cycle ratios under unit and realistic latencies."""

    workload: str
    unit_ratio: float
    realistic_ratio: float

    @property
    def benefit_increased(self) -> bool:
        """True when realistic latencies widen the path advantage."""
        return self.realistic_ratio <= self.unit_ratio


def latency_sensitivity(
    scale: float = 1.0,
    workload_names: Sequence[str] = ("alt", "corr", "eqn", "ijpeg", "m88k"),
    verbose: bool = False,
) -> List[LatencySensitivityRow]:
    """P4-vs-M4 under the unit-latency and realistic-latency machines."""
    table = workload_map()
    rows: List[LatencySensitivityRow] = []
    for name in workload_names:
        workload = table[name]
        if verbose:
            print(f"[latency] {name} ...", flush=True)
        program = workload.program()
        train = workload.train_tape(scale)
        test = workload.test_tape(scale)
        profiles = collect_profiles(program, input_tape=train)
        # The interpreter reference is machine- and scheme-independent:
        # one run checks all four pipeline outcomes below.
        reference = run_program(program, input_tape=test)
        ratios = {}
        for machine in (PAPER_MACHINE, REALISTIC_MACHINE):
            cycles = {}
            for scheme_name in ("M4", "P4"):
                outcome = run_scheme(
                    program,
                    scheme_name,
                    train,
                    test,
                    machine=machine,
                    profiles=profiles,
                    reference=reference,
                )
                cycles[scheme_name] = outcome.result.cycles
            ratios[machine.name] = cycles["P4"] / cycles["M4"]
        rows.append(
            LatencySensitivityRow(
                workload=name,
                unit_ratio=ratios[PAPER_MACHINE.name],
                realistic_ratio=ratios[REALISTIC_MACHINE.name],
            )
        )
    return rows


def format_latency_sensitivity(rows: List[LatencySensitivityRow]) -> str:
    return format_table(
        ["benchmark", "P4/M4 (unit)", "P4/M4 (realistic)", "benefit up?"],
        [
            (
                r.workload,
                f"{r.unit_ratio:.3f}",
                f"{r.realistic_ratio:.3f}",
                "yes" if r.benefit_increased else "no",
            )
            for r in rows
        ],
        title="Latency sensitivity: path benefit under realistic latencies",
    )


# -- forward vs general path profiles ------------------------------------------


@dataclass
class ForwardVsGeneralRow:
    """Cycles of P4 formation driven by general vs forward path profiles."""

    workload: str
    general_cycles: int
    forward_cycles: int

    @property
    def ratio(self) -> float:
        """forward / general (>1 = general paths win)."""
        if self.general_cycles == 0:
            return 0.0
        return self.forward_cycles / self.general_cycles


def forward_vs_general(
    scale: float = 1.0,
    workload_names: Sequence[str] = ("alt", "ph", "corr", "com"),
    verbose: bool = False,
) -> List[ForwardVsGeneralRow]:
    """Form P4 superblocks from general vs forward (acyclic) profiles.

    Forward paths end at back edges, so they cannot describe traces that
    cover more than one loop iteration; the unified enlarger loses exactly
    the unrolling/alternation information the paper highlights.
    """
    table = workload_map()
    rows: List[ForwardVsGeneralRow] = []
    for name in workload_names:
        workload = table[name]
        if verbose:
            print(f"[fwd-vs-gen] {name} ...", flush=True)
        program = workload.program()
        train = workload.train_tape(scale)
        test = workload.test_tape(scale)
        profiles = collect_profiles(
            program, input_tape=train, include_forward=True
        )
        reference = run_program(program, input_tape=test)
        cycles = {}
        for kind, path_profile in (
            ("general", profiles.path),
            ("forward", profiles.forward),
        ):
            from ..scheduling.compactor import compact_program
            from ..simulate.vliw_sim import simulate

            formation = form_superblocks(
                program,
                scheme("P4"),
                edge_profile=profiles.edge,
                path_profile=path_profile,
            )
            compiled = compact_program(formation)
            result = simulate(compiled, input_tape=test)
            if result.output != reference.output:
                raise AssertionError(
                    f"{name}/{kind}: scheduled output diverged"
                )
            cycles[kind] = result.cycles
        rows.append(
            ForwardVsGeneralRow(
                workload=name,
                general_cycles=cycles["general"],
                forward_cycles=cycles["forward"],
            )
        )
    return rows


def format_forward_vs_general(rows: List[ForwardVsGeneralRow]) -> str:
    return format_table(
        ["benchmark", "general cycles", "forward cycles", "fwd/gen"],
        [
            (r.workload, r.general_cycles, r.forward_cycles, f"{r.ratio:.3f}")
            for r in rows
        ],
        title="P4 formation from general vs forward path profiles",
    )


# -- profiling-depth sweep ----------------------------------------------------


@dataclass
class DepthSweepRow:
    """Path-profile statistics and P4 schedule quality at one depth."""

    workload: str
    depth: int
    #: distinct recorded paths across all procedures at this depth
    distinct_paths: int
    #: cycles of P4 formation driven by this depth's path profile
    cycles: int


def fetch_traced_run(
    workload: Workload,
    scale: float,
    cache: Optional[ExperimentCache] = None,
) -> TracedRun:
    """The workload's recorded training run: cache replay when possible,
    record (and store) otherwise."""
    program = workload.program()
    train = workload.train_tape(scale)
    traced = None
    key = None
    if cache is not None:
        key = trace_key(program, train)
        traced = cache.get(key)
    if traced is None:
        traced = record_trace(program, input_tape=train)
        if cache is not None:
            cache.put(key, traced)
    return traced


def depth_sweep(
    scale: float = 1.0,
    depths: Sequence[int] = DEFAULT_SWEEP_DEPTHS,
    workload_names: Sequence[str] = ("alt", "corr", "wc", "eqn"),
    verbose: bool = False,
    cache: Optional[ExperimentCache] = None,
) -> List[DepthSweepRow]:
    """P4 formation quality as a function of path-profiling depth.

    Record-once/replay-many in action: the training input executes once
    per workload (or zero times, on a warm trace cache) and the batch path
    profiler replays the trace at every depth.
    """
    table = workload_map()
    rows: List[DepthSweepRow] = []
    for name in workload_names:
        workload = table[name]
        if verbose:
            print(f"[depth] {name} ...", flush=True)
        program = workload.program()
        train = workload.train_tape(scale)
        test = workload.test_tape(scale)
        traced = fetch_traced_run(workload, scale, cache=cache)
        reference = run_program(program, input_tape=test)
        # One pass over the trace builds every depth's bundle at once.
        bundles = profiles_from_trace_multi(program, traced, depths)
        for depth in depths:
            bundle = bundles[depth]
            outcome = run_scheme(
                program,
                "P4",
                train,
                test,
                profiles=bundle,
                reference=reference,
            )
            rows.append(
                DepthSweepRow(
                    workload=name,
                    depth=depth,
                    distinct_paths=sum(
                        len(paths) for paths in bundle.path.paths.values()
                    ),
                    cycles=outcome.result.cycles,
                )
            )
    return rows


def format_depth_sweep(rows: List[DepthSweepRow]) -> str:
    return format_table(
        ["benchmark", "depth", "distinct paths", "P4 cycles"],
        [
            (r.workload, r.depth, r.distinct_paths, r.cycles)
            for r in rows
        ],
        title=(
            "Depth sweep: P4 from one recorded trace replayed at each"
            " profiling depth"
        ),
    )


# -- static branch prediction accuracy -------------------------------------------


class _PredictionChecker(ExecutionObserver):
    """Replays execution, scoring edge- and path-based successor guesses."""

    def __init__(self, program, profiles, depth: int) -> None:
        self.edge = profiles.edge
        self.path = profiles.path
        self.depth = depth
        self._program = program
        self._history: Dict[int, Tuple[str, List[str]]] = {}
        self.edge_correct = 0
        self.path_correct = 0
        self.total = 0
        self._branch_blocks = {
            proc.name: {
                b.label: b.successors()
                for b in proc.blocks()
                if b.ends_in_branch
            }
            for proc in program.procedures()
        }

    def block_executed(self, proc_name: str, frame_id: int, label: str) -> None:
        prev = self._history.get(frame_id)
        if prev is not None and prev[0] == proc_name:
            window = prev[1]
            last = window[-1]
            succs = self._branch_blocks.get(proc_name, {}).get(last)
            if succs and len(succs) > 1:
                self.total += 1
                edge_guess = self.edge.most_likely_successor(proc_name, last)
                if edge_guess is not None and edge_guess[0] == label:
                    self.edge_correct += 1
                path_guess = self.path.most_likely_path_successor(
                    proc_name, window, succs
                )
                guess = (
                    path_guess[0]
                    if path_guess is not None
                    else (edge_guess[0] if edge_guess else None)
                )
                if guess == label:
                    self.path_correct += 1
            window = window + [label]
            if len(window) > self.depth:
                window = window[-self.depth:]
            self._history[frame_id] = (proc_name, window)
        else:
            self._history[frame_id] = (proc_name, [label])

    def exit_procedure(self, proc_name: str, frame_id: int) -> None:
        self._history.pop(frame_id, None)


@dataclass
class PredictionRow:
    """Static prediction accuracy on one workload's testing input."""

    workload: str
    branches: int
    edge_accuracy: float
    path_accuracy: float


def static_prediction(
    scale: float = 1.0,
    workload_names: Sequence[str] = ("alt", "ph", "corr", "wc", "eqn"),
    history: int = 24,
    verbose: bool = False,
) -> List[PredictionRow]:
    """Score profile-based successor predictions on the testing run.

    The edge predictor always picks the branch's most frequent arm; the
    path predictor conditions on the last ``history`` executed blocks
    (24 blocks spans several iterations of a small loop, comparable to the
    15-branch profiling depth).
    Train and test inputs differ, as in the paper.
    """
    table = workload_map()
    rows: List[PredictionRow] = []
    for name in workload_names:
        workload = table[name]
        if verbose:
            print(f"[prediction] {name} ...", flush=True)
        program = workload.program()
        profiles = collect_profiles(
            program, input_tape=workload.train_tape(scale)
        )
        checker = _PredictionChecker(program, profiles, depth=history)
        run_program(
            program, input_tape=workload.test_tape(scale), observer=checker
        )
        total = max(1, checker.total)
        rows.append(
            PredictionRow(
                workload=name,
                branches=checker.total,
                edge_accuracy=checker.edge_correct / total,
                path_accuracy=checker.path_correct / total,
            )
        )
    return rows


def format_static_prediction(rows: List[PredictionRow]) -> str:
    return format_table(
        ["benchmark", "branches", "edge acc%", "path acc%"],
        [
            (
                r.workload,
                r.branches,
                f"{r.edge_accuracy * 100:.1f}",
                f"{r.path_accuracy * 100:.1f}",
            )
            for r in rows
        ],
        title=(
            "Static successor prediction: edge profile vs path profile"
            " (history-conditioned)"
        ),
    )
