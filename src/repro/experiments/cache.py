"""Content-addressed result cache for the experiment engine.

``python -m repro.experiments all`` regenerates every table and figure, and
several figures share (workload, scheme) outcomes: Figure 4's ``M4``/``P4``
pairs reappear in Figure 7, Figure 5's I-cache runs cover the miss-rate
table, and so on.  The :class:`ExperimentCache` makes each outcome a
content-addressed artifact: keys are SHA-256 digests over everything that
determines the result — the program's printed IR, the full formation
config, the training and testing tapes, the machine model, the I-cache
geometry, and the interpreter/simulator budgets — so an outcome is computed
once and replayed everywhere, across figures *and* across invocations.

Two layers back the same keys:

* an **in-process memo** (plain dict), which also preserves object sharing
  within one ``experiments all`` run, and
* an **on-disk pickle store** under ``~/.cache/repro-experiments`` (override
  with ``$REPRO_CACHE_DIR`` or ``--cache-dir``), written atomically so
  concurrent runs never observe torn entries.  Entries are sharded into
  256 two-hex-char prefix subdirectories so the many concurrent readers
  and writers of one shared cache (parallel workers, experiment-service
  clients) never contend on a single directory; entries from the old flat
  layout are migrated lazily, one atomic rename per first read.

Because an I-cache outcome is a strict superset of the corresponding
ideal-cache outcome (the simulator always produces the ideal ``result``
alongside ``cached_result``), a miss on an ideal-cache key falls back to
the matching I-cache entry with ``cached_result`` stripped — Figure 7 reuses
Figure 5's work even though they simulate "different" cache models.

Keys cover experiment *inputs* plus an automatic digest of the compiler
source that produced the artifact: :func:`outcome_key` folds in a hash of
the formation/scheduling/regalloc/layout/simulation modules,
:func:`profile_key` a hash of the profiling-facing modules, and
:func:`trace_key`/:func:`reference_key` a hash of the interpreter-facing
subset only (a scheduler edit must not invalidate recorded traces).
Editing compiler code therefore invalidates exactly the entries it could
have changed — no manual bump needed.  :data:`CACHE_FORMAT` survives as a
manual nuke for format changes the digests cannot see (e.g. a new pickle
layout for cached artifacts).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from .. import __version__
from ..ir.cfg import Program
from ..ir.printer import format_program

#: Bump to invalidate every existing cache entry (e.g. after a compiler or
#: simulator behaviour change).
CACHE_FORMAT = 1

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """Resolve the on-disk cache location.

    Precedence: the :data:`CACHE_DIR_ENV` override, then
    ``$XDG_CACHE_HOME/repro-experiments`` (the Base Directory spec says a
    relative ``XDG_CACHE_HOME`` must be ignored), then
    ``~/.cache/repro-experiments``.
    """
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg and Path(xdg).is_absolute():
        return Path(xdg) / "repro-experiments"
    return Path.home() / ".cache" / "repro-experiments"


# -- source digests -----------------------------------------------------------

#: Default root for source digests: the ``repro`` package directory.
_SOURCE_ROOT = Path(__file__).resolve().parent.parent

#: Package-relative files/directories whose source determines a full
#: pipeline outcome.  The frontend is deliberately absent: a frontend
#: change alters the printed IR and thus :func:`program_fingerprint`.
COMPILER_SOURCES: Tuple[str, ...] = (
    "analysis",
    "formation",
    "interp",
    "ir",
    "jit",
    "layout",
    "pipeline.py",
    "profiling",
    "regalloc",
    "scheduling",
    "simulate",
)

#: Subset that determines a :class:`ProfileBundle` (training-run replay).
PROFILE_SOURCES: Tuple[str, ...] = ("interp", "ir", "jit", "profiling")

#: Interpreter-facing subset: what a recorded trace or reference run can
#: depend on.  Scheduler/regalloc edits must *not* invalidate these.
INTERP_SOURCES: Tuple[str, ...] = ("interp", "ir", "jit")

_SOURCE_DIGESTS: Dict[Tuple[Tuple[str, ...], str], str] = {}


def source_digest(
    parts: Iterable[str], root: Optional[os.PathLike] = None
) -> str:
    """Digest the ``*.py`` source under ``root`` for each relative part.

    Parts may name single files or directories (walked recursively in
    sorted order); each file contributes its root-relative path plus its
    bytes, so renames and edits both change the digest.  Results are
    memoized per (parts, root) for the life of the process — key
    construction happens per (workload, scheme) pair and must not re-read
    ~70 files each time.
    """
    base = Path(root) if root is not None else _SOURCE_ROOT
    memo_key = (tuple(parts), str(base))
    cached = _SOURCE_DIGESTS.get(memo_key)
    if cached is not None:
        return cached
    hasher = hashlib.sha256()
    for part in memo_key[0]:
        path = base / part
        if path.is_dir():
            files = sorted(path.rglob("*.py"))
        elif path.is_file():
            files = [path]
        else:
            files = []
        for file in files:
            hasher.update(str(file.relative_to(base)).encode("utf-8"))
            hasher.update(b"\x1f")
            hasher.update(file.read_bytes())
            hasher.update(b"\x1e")
    digest = hasher.hexdigest()
    _SOURCE_DIGESTS[memo_key] = digest
    return digest


def compiler_digest() -> str:
    """Digest of every module that can change a pipeline outcome."""
    return source_digest(COMPILER_SOURCES)


def profile_digest() -> str:
    """Digest of the modules that can change a collected profile."""
    return source_digest(PROFILE_SOURCES)


def interpreter_digest() -> str:
    """Digest of the interpreter-facing modules only (traces, references)."""
    return source_digest(INTERP_SOURCES)


# -- key construction ---------------------------------------------------------

#: Bound on the fingerprint memo below; must comfortably exceed the number
#: of distinct live programs in one ``experiments all`` run (14 workloads)
#: while keeping a fuzzing run (thousands of throwaway programs) bounded.
FINGERPRINT_MEMO_LIMIT = 256

#: id(program) -> (program, fingerprint), LRU-bounded.  The program
#: reference keeps the id stable for the life of the memo entry; the bound
#: keeps a long fuzzing run from pinning every program ever fingerprinted.
_FINGERPRINTS: "OrderedDict[int, tuple]" = OrderedDict()


def program_fingerprint(program: Program) -> str:
    """Digest of the program's printed IR (canonical per compiled program)."""
    cached = _FINGERPRINTS.get(id(program))
    if cached is not None and cached[0] is program:
        _FINGERPRINTS.move_to_end(id(program))
        return cached[1]
    digest = hashlib.sha256(
        format_program(program).encode("utf-8")
    ).hexdigest()
    _FINGERPRINTS[id(program)] = (program, digest)
    _FINGERPRINTS.move_to_end(id(program))
    while len(_FINGERPRINTS) > FINGERPRINT_MEMO_LIMIT:
        _FINGERPRINTS.popitem(last=False)
    return digest


def _digest(*parts: Any) -> str:
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(repr(part).encode("utf-8"))
        hasher.update(b"\x1f")
    return hasher.hexdigest()


def outcome_key(
    program: Program,
    config: Any,
    train_tape: Sequence[int],
    test_tape: Sequence[int],
    machine: Any,
    with_icache: bool,
    icache_config: Any,
    step_limit: int = 50_000_000,
    cycle_limit: int = 100_000_000,
    sched: Any = None,
) -> str:
    """Cache key for one full (program, scheme, inputs) pipeline outcome.

    ``config`` is the full :class:`~repro.formation.FormationConfig` (its
    dataclass repr covers every enlargement knob), never just the scheme
    name — so changing a knob changes the key.  ``sched`` is the optional
    :class:`~repro.scheduling.SchedConfig` (tuned scheduler weights,
    software pipelining); its frozen-dataclass repr is stable, so every
    distinct scheduler configuration gets its own key.
    """
    return _digest(
        "outcome",
        CACHE_FORMAT,
        __version__,
        compiler_digest(),
        program_fingerprint(program),
        config,
        tuple(train_tape),
        tuple(test_tape),
        machine,
        bool(with_icache),
        icache_config,
        step_limit,
        cycle_limit,
        sched,
    )


def profile_key(
    program: Program,
    train_tape: Sequence[int],
    depth: int,
    include_forward: bool = False,
    step_limit: int = 50_000_000,
) -> str:
    """Cache key for a training-run :class:`ProfileBundle`."""
    return _digest(
        "profile",
        CACHE_FORMAT,
        __version__,
        profile_digest(),
        program_fingerprint(program),
        tuple(train_tape),
        depth,
        include_forward,
        step_limit,
    )


def trace_key(
    program: Program,
    train_tape: Sequence[int],
    args: Sequence[int] = (),
    step_limit: int = 50_000_000,
) -> str:
    """Cache key for a recorded training-run
    :class:`~repro.profiling.collector.TracedRun`.

    Unlike :func:`profile_key`, the trace key is depth-independent: one
    recorded trace replays into profiles at *every* depth and for every
    profiler kind, so depth sweeps and forward-profile ablations hit the
    same entry.  Its source digest covers the interpreter-facing modules
    only, so scheduler and profiler edits keep recorded traces valid.
    """
    return _digest(
        "trace",
        CACHE_FORMAT,
        __version__,
        interpreter_digest(),
        program_fingerprint(program),
        tuple(train_tape),
        tuple(args),
        step_limit,
    )


def reference_key(
    program: Program,
    test_tape: Sequence[int],
    step_limit: int = 50_000_000,
) -> str:
    """Cache key for a reference-interpreter run on the testing tape."""
    return _digest(
        "reference",
        CACHE_FORMAT,
        __version__,
        interpreter_digest(),
        program_fingerprint(program),
        tuple(test_tape),
        step_limit,
    )


# -- the cache ----------------------------------------------------------------


@dataclass
class CacheStats:
    """Hit/miss counters, surfaced to the user after each experiment."""

    hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    #: flat-layout entries moved into their shard directory on first read
    migrations: int = 0

    @property
    def lookups(self) -> int:
        """Total number of cache probes."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes answered from the cache."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def merge(self, other: "CacheStats") -> None:
        """Fold another process's counts into this one (e.g. per-request
        stats shipped back from the experiment service).  Counters are
        plain integer sums, so merged totals are exact regardless of how
        concurrently the underlying probes ran."""
        self.hits += other.hits
        self.disk_hits += other.disk_hits
        self.misses += other.misses
        self.stores += other.stores
        self.migrations += other.migrations

    def summary(self) -> str:
        """One-line human-readable account of the cache's work."""
        text = (
            f"{self.hits} hits ({self.disk_hits} from disk), "
            f"{self.misses} misses, {self.stores} stores, "
            f"{self.hit_rate * 100:.1f}% hit rate"
        )
        if self.migrations:
            text += f", {self.migrations} flat entries migrated"
        return text


class ExperimentCache:
    """Two-layer (memo + disk) pickle cache for experiment artifacts.

    Args:
        path: cache directory; ``None`` resolves via ``$REPRO_CACHE_DIR``
            then the per-user default.  Created lazily on first store.
        memory_only: skip the disk layer entirely (useful in tests and as
            a cheap intra-run memo).
    """

    def __init__(
        self,
        path: Optional[os.PathLike] = None,
        memory_only: bool = False,
    ) -> None:
        self.path = Path(path) if path is not None else default_cache_dir()
        self.memory_only = memory_only
        self.stats = CacheStats()
        self._memo: Dict[str, Any] = {}

    def _entry_path(self, key: str) -> Path:
        """Sharded location: 256 two-hex-char prefix subdirectories, so
        concurrent workers and clients never contend on (or enumerate) a
        single flat directory."""
        return self.path / key[:2] / f"{key}.pkl"

    def _flat_path(self, key: str) -> Path:
        """Where the pre-sharding flat layout stored this key."""
        return self.path / f"{key}.pkl"

    @staticmethod
    def _discard(entry: Path) -> None:
        try:
            entry.unlink()
        except OSError:
            pass

    def _load_disk(self, key: str) -> Optional[Any]:
        """Read ``key`` from disk, or ``None``.

        Probes the sharded location first, then the legacy flat layout;
        a flat hit is lazily migrated into its shard directory (atomic
        ``os.replace``, so a concurrent reader sees the entry at exactly
        one of the two locations, never torn).  Corrupt entries (torn
        writes from killed runs, format drift) are deleted and count as
        absent.
        """
        entry = self._entry_path(key)
        try:
            with open(entry, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            pass
        except (OSError, pickle.UnpicklingError, EOFError, ValueError):
            self._discard(entry)
            return None
        flat = self._flat_path(key)
        try:
            with open(flat, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            # A concurrent reader may have migrated the entry between our
            # two probes (``os.replace`` makes the flat path vanish at the
            # instant the sharded one appears), so check the shard once
            # more before declaring a miss.
            try:
                with open(entry, "rb") as handle:
                    return pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError, ValueError):
                return None
        except (OSError, pickle.UnpicklingError, EOFError, ValueError):
            self._discard(flat)
            return None
        try:
            entry.parent.mkdir(parents=True, exist_ok=True)
            os.replace(flat, entry)
        except OSError:
            # Migration is an optimization; the value is already in hand.
            pass
        else:
            self.stats.migrations += 1
        return value

    def get(self, key: str) -> Optional[Any]:
        """Fetch a cached artifact, or ``None`` on a miss.

        Corrupt disk entries (torn writes from killed runs, format drift)
        count as misses and are deleted.
        """
        value = self._memo.get(key)
        if value is not None:
            self.stats.hits += 1
            return value
        if not self.memory_only:
            value = self._load_disk(key)
            if value is not None:
                self._memo[key] = value
                self.stats.hits += 1
                self.stats.disk_hits += 1
                return value
        self.stats.misses += 1
        return None

    def put(self, key: str, value: Any) -> None:
        """Store an artifact under ``key`` (atomic on the disk layer)."""
        self._memo[key] = value
        self.stats.stores += 1
        if self.memory_only:
            return
        entry = self._entry_path(key)
        handle = None
        try:
            entry.parent.mkdir(parents=True, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                mode="wb", dir=entry.parent, suffix=".tmp", delete=False
            )
            with handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(handle.name, entry)
        except OSError:
            # An unwritable cache never fails the experiment; the memo
            # layer above still has the value.
            if handle is not None:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass

    def memoize(self, key: str, value: Any) -> None:
        """Record ``value`` in the in-process memo only (no disk write, no
        store accounting) — used for derived artifacts like I-cache
        downgrades that already exist on disk in richer form."""
        self._memo[key] = value

    def get_outcome(
        self,
        program: Program,
        config: Any,
        train_tape: Sequence[int],
        test_tape: Sequence[int],
        machine: Any,
        with_icache: bool,
        icache_config: Any,
        step_limit: int = 50_000_000,
        cycle_limit: int = 100_000_000,
        sched: Any = None,
    ) -> Optional[Any]:
        """Outcome lookup with the I-cache superset fallback.

        An ideal-cache miss retries the corresponding I-cache key: the
        finite-cache run contains the identical ideal ``result``, so the
        entry is served with ``cached_result`` cleared.
        """
        key = outcome_key(
            program,
            config,
            train_tape,
            test_tape,
            machine,
            with_icache,
            icache_config,
            step_limit,
            cycle_limit,
            sched,
        )
        value = self.get(key)
        if value is not None or with_icache:
            return value
        superset_key = outcome_key(
            program,
            config,
            train_tape,
            test_tape,
            machine,
            True,
            icache_config,
            step_limit,
            cycle_limit,
            sched,
        )
        superset = self._memo.get(superset_key)
        if superset is None and not self.memory_only:
            superset = self._load_disk(superset_key)
        if superset is None:
            return None
        value = dataclasses.replace(superset, cached_result=None)
        self.memoize(key, value)
        # The exact-key probe above already counted a miss; take it back,
        # the fallback answered it.
        self.stats.misses -= 1
        self.stats.hits += 1
        return value
