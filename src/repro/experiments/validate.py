"""End-to-end differential validation of the whole compiler.

:func:`validate_suite` runs every requested (workload, scheme) pair
through :func:`~repro.experiments.harness.run_suite` with all stage
checkpoints enabled (:meth:`~repro.validation.ValidationConfig.full`),
then performs an explicit post-hoc differential comparison of each
outcome: the VLIW-simulated output and return value of the scheduled
code against the scheme-independent reference-interpreter run.

The post-hoc pass is deliberately redundant with ``run_scheme``'s inline
``check_output`` for freshly computed pairs — its point is *cached*
outcomes: a :class:`~repro.experiments.cache.ExperimentCache` replay
skips the pipeline entirely, but the stored outcome still carries both
the simulation result and the reference run, so the oracle re-checks it
here without recomputation.

Exposed on the command line as ``python -m repro.experiments validate``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..validation import ValidationConfig
from .cache import ExperimentCache
from .harness import run_suite

#: Every named formation scheme (see :func:`repro.formation.scheme`).
ALL_SCHEMES = ("BB", "M4", "M16", "P4", "P4e", "P4i", "P4k")


@dataclass
class ValidationRow:
    """Differential verdict for one (workload, scheme) pair."""

    workload: str
    scheme: str
    cycles: int
    output_words: int
    #: simulated output == reference output (order and values)
    output_matches: bool
    #: simulated return value == reference return value
    return_matches: bool

    @property
    def ok(self) -> bool:
        return self.output_matches and self.return_matches


def validate_suite(
    schemes: Sequence[str] = ALL_SCHEMES,
    workload_names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    verbose: bool = False,
    jobs: int = 1,
    cache: Optional[ExperimentCache] = None,
    trace_cache: bool = True,
    sched=None,
) -> List[ValidationRow]:
    """Validate every (workload, scheme) pair differentially.

    Freshly computed pairs additionally run the full set of stage
    checkpoints inside the pipeline (a violation raises
    :class:`~repro.validation.ValidationError` and aborts the suite);
    cached pairs are re-checked by the post-hoc oracle only.  ``sched``
    (a :class:`~repro.scheduling.SchedConfig`) validates the tuned /
    pipelined scheduler configurations under the same checkpoints —
    ``validate --pipeline`` uses it to put every modulo-scheduled loop
    through the expansion legality check and the differential oracle.
    """
    results = run_suite(
        schemes,
        workload_names=workload_names,
        scale=scale,
        verbose=verbose,
        jobs=jobs,
        cache=cache,
        trace_cache=trace_cache,
        validation=ValidationConfig.full(),
        sched=sched,
    )
    rows: List[ValidationRow] = []
    for (wname, sname), outcome in results.items():
        reference = outcome.reference
        if reference is None:
            raise RuntimeError(
                f"{wname}/{sname}: outcome carries no reference run;"
                " cannot validate differentially"
            )
        rows.append(
            ValidationRow(
                workload=wname,
                scheme=sname,
                cycles=outcome.result.cycles,
                output_words=len(outcome.result.output),
                output_matches=outcome.result.output == reference.output,
                return_matches=(
                    outcome.result.return_value == reference.return_value
                ),
            )
        )
    return rows


def format_validation(rows: Sequence[ValidationRow]) -> str:
    """Render the differential table, one row per (workload, scheme)."""
    header = (
        f"{'workload':<14} {'scheme':<7} {'cycles':>10}"
        f" {'output':>7}  verdict"
    )
    lines = [header, "-" * len(header)]
    bad = 0
    for row in rows:
        if row.ok:
            verdict = "ok"
        else:
            bad += 1
            parts = []
            if not row.output_matches:
                parts.append("OUTPUT MISMATCH")
            if not row.return_matches:
                parts.append("RETURN MISMATCH")
            verdict = ", ".join(parts)
        lines.append(
            f"{row.workload:<14} {row.scheme:<7} {row.cycles:>10}"
            f" {row.output_words:>7}  {verdict}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"{len(rows)} pair(s) validated, {bad} mismatch(es)"
        + ("" if bad else " — scheduled code matches the interpreter")
    )
    return "\n".join(lines)
