"""Plain-text rendering of experiment tables and bar charts."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Align a table of stringifiable cells into fixed-width columns."""
    text_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_bars(
    series: Dict[str, Dict[str, float]],
    title: str,
    width: int = 40,
    reference: float = 1.0,
) -> str:
    """Horizontal bar chart: outer keys are rows, inner keys are series.

    Values are plotted relative to ``max(values, reference)`` so normalized
    charts keep 1.0 visible.
    """
    peak = reference
    for per_row in series.values():
        for value in per_row.values():
            peak = max(peak, value)
    lines = [title]
    for row, per_row in series.items():
        for label, value in per_row.items():
            bar = "#" * max(1, int(round(width * value / peak)))
            lines.append(f"{row:>8s} {label:<5s} {value:6.3f} |{bar}")
        lines.append("")
    return "\n".join(lines)
