"""Interprocedural formation study: P4 vs inlining (P4i) vs k-iteration
unroll hints (P4k).

Not part of ``python -m repro.experiments all`` — that artifact's output
is kept byte-stable — so this table must be asked for by name::

    python -m repro.experiments interproc --scale 0.25

``P4i`` runs the demand-driven profile-guided inliner ahead of formation
(hot call chains become single-procedure superblock fodder); ``P4k``
feeds cross-iteration run lengths from a k-iteration path profile into
the unified enlarger, letting hinted loops unroll past the flat
profile's depth.  Both reduce to plain P4 on workloads without inlinable
sites / long uniform loop runs, so the interesting rows are the deltas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..workloads import SUITE_ORDER
from .cache import ExperimentCache
from .harness import run_suite
from .render import format_table

#: Schemes compared, in column order; P4 is the baseline.
INTERPROC_SCHEMES = ("P4", "P4i", "P4k")


@dataclass
class InterprocRow:
    """One workload's cycle counts under each interprocedural scheme."""

    name: str
    cycles: List[int]  # aligned with INTERPROC_SCHEMES

    @property
    def baseline(self) -> int:
        return self.cycles[0]

    @property
    def best(self) -> int:
        return min(self.cycles)


def interproc(
    scale: float = 1.0,
    workload_names: Optional[Sequence[str]] = None,
    verbose: bool = False,
    jobs: int = 1,
    cache: Optional[ExperimentCache] = None,
    trace_cache: bool = True,
    metrics=None,
) -> List[InterprocRow]:
    """Simulated cycles for P4/P4i/P4k on every workload."""
    names = list(workload_names) if workload_names else list(SUITE_ORDER)
    results = run_suite(
        list(INTERPROC_SCHEMES),
        names,
        scale=scale,
        verbose=verbose,
        jobs=jobs,
        cache=cache,
        trace_cache=trace_cache,
        metrics=metrics,
    )
    return [
        InterprocRow(
            name=name,
            cycles=[
                results[(name, sname)].result.cycles
                for sname in INTERPROC_SCHEMES
            ],
        )
        for name in names
    ]


def format_interproc(rows: List[InterprocRow]) -> str:
    """Render the comparison with a per-row best-delta column and a
    weighted (total-cycle) summary row."""
    body = []
    totals = [0] * len(INTERPROC_SCHEMES)
    for row in rows:
        for i, cycles in enumerate(row.cycles):
            totals[i] += cycles
        delta = (row.baseline - row.best) / row.baseline * 100.0
        body.append(
            (row.name, *row.cycles, f"{delta:+.2f}%" if delta else "-")
        )
    best_total = min(totals)
    total_delta = (totals[0] - best_total) / totals[0] * 100.0
    body.append(
        ("TOTAL", *totals, f"{total_delta:+.2f}%" if total_delta else "-")
    )
    return format_table(
        ["benchmark", *INTERPROC_SCHEMES, "best vs P4"],
        body,
        title=(
            "Interprocedural formation: simulated cycles"
            " (P4i = profile-guided inlining, P4k = k-iteration unrolling)"
        ),
    )
