"""The ``gapcheck`` experiment: how far is the list scheduler from optimal?

For every superblock the compiler schedules, the branch-and-bound oracle
(:mod:`repro.scheduling.oracle`) computes the true optimal schedule length
on the same dependence graph and machine model.  The difference — weighted
by how often the testing run actually entered each superblock (from the
tracer's exit-cycle histograms) — is the *scheduler quality gap*: an upper
bound on the cycles a smarter list scheduler could recover.

The headline number is the **weighted gap fraction**::

    sum(entries * (list_len - oracle_len)) / sum(entries * list_len)

over all superblocks whose oracle search completed (``optimal``) or at
least produced a certified-achievable bound (``budget``).  Superblocks
above the oracle's op budget are reported as ``skipped`` with a zero gap,
so the fraction is a *lower* bound on the true gap — never an overclaim.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..interp.interpreter import run_program
from ..pipeline import run_scheme
from ..profiling.collector import collect_profiles
from ..scheduling.machine import MachineModel, PAPER_MACHINE
from ..scheduling.oracle import (
    DEFAULT_MAX_OPS,
    DEFAULT_NODE_BUDGET,
    oracle_schedule_length,
)
from ..trace.tracer import Tracer
from ..workloads.suite import workload_map
from .render import format_table


@dataclass
class GapRow:
    """List-vs-oracle schedule quality of one superblock."""

    workload: str
    scheme: str
    proc: str
    head: str
    #: instruction count of the (renamed, allocated) superblock code
    ops: int
    #: dynamic entries during the testing-input simulation
    entries: int
    list_cycles: int
    #: oracle schedule length (== ``list_cycles`` when ``skipped``)
    oracle_cycles: int
    #: ``"optimal"`` / ``"budget"`` / ``"skipped"``
    status: str
    #: branch-and-bound nodes expanded
    nodes: int

    @property
    def gap(self) -> int:
        """Static cycles the list schedule gives up on one traversal."""
        return self.list_cycles - self.oracle_cycles

    @property
    def weighted_gap(self) -> int:
        """Gap scaled by how often the testing run entered this block."""
        return self.entries * self.gap


@dataclass
class GapSummary:
    """Suite-level aggregation of :class:`GapRow` records."""

    rows: List[GapRow]

    @property
    def weighted_gap(self) -> int:
        return sum(r.weighted_gap for r in self.rows)

    @property
    def weighted_list_cycles(self) -> int:
        return sum(r.entries * r.list_cycles for r in self.rows)

    @property
    def gap_fraction(self) -> float:
        """Weighted gap over weighted list cycles (0.0 = optimal)."""
        denom = self.weighted_list_cycles
        return self.weighted_gap / denom if denom else 0.0

    def count(self, status: str) -> int:
        return sum(1 for r in self.rows if r.status == status)


def gap_check(
    scheme_names: Sequence[str] = ("P4",),
    scale: float = 1.0,
    workload_names: Optional[Sequence[str]] = None,
    machine: MachineModel = PAPER_MACHINE,
    max_ops: int = DEFAULT_MAX_OPS,
    node_budget: int = DEFAULT_NODE_BUDGET,
    verbose: bool = False,
) -> GapSummary:
    """Measure the list scheduler's gap from optimal across the suite.

    Each workload is compiled and simulated once per scheme with a tracer
    attached; the tracer's exit histograms supply the per-superblock entry
    counts that weight each gap.  One training run and one interpreter
    reference are shared across all schemes of a workload, as everywhere
    else in the experiment layer.
    """
    table = workload_map()
    names = list(workload_names) if workload_names else list(table)
    rows: List[GapRow] = []
    for wname in names:
        workload = table[wname]
        if verbose:
            print(f"[gapcheck] {wname} ...", flush=True)
        program = workload.program()
        train = workload.train_tape(scale)
        test = workload.test_tape(scale)
        profiles = collect_profiles(program, input_tape=train)
        reference = run_program(program, input_tape=test)
        for sname in scheme_names:
            tracer = Tracer()
            with tracer.context(workload=wname, scheme=sname):
                outcome = run_scheme(
                    program,
                    sname,
                    train,
                    test,
                    machine=machine,
                    profiles=profiles,
                    reference=reference,
                    tracer=tracer,
                )
            for proc_name, proc in sorted(outcome.compiled.procedures.items()):
                for head, schedule in sorted(proc.schedules.items()):
                    entries = sum(
                        tracer.histogram(proc_name, head).values()
                    )
                    result = oracle_schedule_length(
                        schedule.code,
                        schedule.machine,
                        max_ops=max_ops,
                        node_budget=node_budget,
                        upper_bound=schedule.length,
                    )
                    rows.append(
                        GapRow(
                            workload=wname,
                            scheme=sname,
                            proc=proc_name,
                            head=head,
                            ops=len(schedule.code.instructions),
                            entries=entries,
                            list_cycles=schedule.length,
                            oracle_cycles=result.length,
                            status=result.status,
                            nodes=result.nodes,
                        )
                    )
    return GapSummary(rows=rows)


def format_gap_check(summary: GapSummary, top: int = 20) -> str:
    """The per-superblock table (worst weighted gaps first) plus totals."""
    ranked = sorted(
        summary.rows, key=lambda r: (-r.weighted_gap, r.workload, r.head)
    )
    shown = [r for r in ranked if r.weighted_gap > 0][:top]
    lines = [
        format_table(
            [
                "benchmark",
                "scheme",
                "superblock",
                "ops",
                "entries",
                "list",
                "oracle",
                "gap",
                "status",
            ],
            [
                (
                    r.workload,
                    r.scheme,
                    f"{r.proc}/{r.head}",
                    r.ops,
                    r.entries,
                    r.list_cycles,
                    r.oracle_cycles,
                    r.gap,
                    r.status,
                )
                for r in shown
            ],
            title="Scheduler gap from optimal (worst weighted gaps)",
        )
    ]
    if not shown:
        lines.append("(no superblock with a positive weighted gap)")
    lines.append(
        f"superblocks: {len(summary.rows)}"
        f"  optimal: {summary.count('optimal')}"
        f"  budget: {summary.count('budget')}"
        f"  skipped: {summary.count('skipped')}"
    )
    lines.append(
        f"weighted gap: {summary.weighted_gap}"
        f" / {summary.weighted_list_cycles} cycles"
        f" = {summary.gap_fraction * 100:.3f}%"
    )
    return "\n".join(lines)


def gap_check_json(summary: GapSummary) -> str:
    """Stable JSON encoding of the summary (the CI artifact)."""
    payload = {
        "rows": [
            {
                "workload": r.workload,
                "scheme": r.scheme,
                "proc": r.proc,
                "head": r.head,
                "ops": r.ops,
                "entries": r.entries,
                "list_cycles": r.list_cycles,
                "oracle_cycles": r.oracle_cycles,
                "gap": r.gap,
                "status": r.status,
                "nodes": r.nodes,
            }
            for r in summary.rows
        ],
        "totals": {
            "superblocks": len(summary.rows),
            "optimal": summary.count("optimal"),
            "budget": summary.count("budget"),
            "skipped": summary.count("skipped"),
            "weighted_gap": summary.weighted_gap,
            "weighted_list_cycles": summary.weighted_list_cycles,
            "gap_fraction": summary.gap_fraction,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
