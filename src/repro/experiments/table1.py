"""Table 1: benchmarks, data sets, and dynamic statistics.

The paper's Table 1 reports, per benchmark: binary size, and dynamic branch,
cycle, and instruction counts of the *basic-block scheduled* version on the
testing data (ideal I-cache).  Branch counts come from the branch
instrumentation (here: the reference interpreter); cycle and operation
counts come from the compiled simulator of the BB-scheduled program.

The rows are served by :func:`~repro.experiments.harness.run_suite`, so
Table 1 shares its BB outcomes (and each workload's testing-input reference
run) with every other experiment through the cache and the worker pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..workloads.suite import all_workloads
from .cache import ExperimentCache
from .harness import run_suite
from .render import format_table


@dataclass
class Table1Row:
    """One benchmark's statistics."""

    name: str
    category: str
    description: str
    #: static code size of the BB-scheduled binary, in bytes
    size_bytes: int
    #: dynamic conditional/multiway branches (testing input)
    branches: int
    #: cycles of the BB-scheduled version (ideal I-cache)
    cycles: int
    #: dynamic operations executed by the BB-scheduled version
    instructions: int


def table1(
    scale: float = 1.0,
    workload_names: Optional[Sequence[str]] = None,
    verbose: bool = False,
    jobs: int = 1,
    cache: Optional[ExperimentCache] = None,
    trace_cache: bool = True,
    metrics=None,
) -> List[Table1Row]:
    """Regenerate Table 1's rows at the given input scale."""
    workloads = [
        w
        for w in all_workloads()
        if not workload_names or w.name in workload_names
    ]
    results = run_suite(
        ["BB"],
        [w.name for w in workloads],
        scale=scale,
        verbose=verbose,
        jobs=jobs,
        cache=cache,
        trace_cache=trace_cache,
        metrics=metrics,
    )
    rows: List[Table1Row] = []
    for workload in workloads:
        outcome = results[(workload.name, "BB")]
        rows.append(
            Table1Row(
                name=workload.name,
                category=workload.category,
                description=workload.description,
                size_bytes=outcome.layout.code_bytes,
                branches=outcome.reference.branches,
                cycles=outcome.result.cycles,
                instructions=outcome.result.operations,
            )
        )
    return rows


def format_table1(rows: List[Table1Row]) -> str:
    """Render Table 1 in the paper's column order."""
    return format_table(
        ["benchmark", "group", "size(B)", "branches", "cycles", "instrs"],
        [
            (r.name, r.category, r.size_bytes, r.branches, r.cycles, r.instructions)
            for r in rows
        ],
        title="Table 1: benchmark statistics (BB-scheduled, testing input)",
    )
