"""Table 1: benchmarks, data sets, and dynamic statistics.

The paper's Table 1 reports, per benchmark: binary size, and dynamic branch,
cycle, and instruction counts of the *basic-block scheduled* version on the
testing data (ideal I-cache).  Branch counts come from the branch
instrumentation (here: the reference interpreter); cycle and operation
counts come from the compiled simulator of the BB-scheduled program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..interp.interpreter import run_program
from ..pipeline import run_scheme
from ..workloads.suite import all_workloads
from .render import format_table


@dataclass
class Table1Row:
    """One benchmark's statistics."""

    name: str
    category: str
    description: str
    #: static code size of the BB-scheduled binary, in bytes
    size_bytes: int
    #: dynamic conditional/multiway branches (testing input)
    branches: int
    #: cycles of the BB-scheduled version (ideal I-cache)
    cycles: int
    #: dynamic operations executed by the BB-scheduled version
    instructions: int


def table1(
    scale: float = 1.0,
    workload_names: Optional[Sequence[str]] = None,
    verbose: bool = False,
) -> List[Table1Row]:
    """Regenerate Table 1's rows at the given input scale."""
    rows: List[Table1Row] = []
    for workload in all_workloads():
        if workload_names and workload.name not in workload_names:
            continue
        if verbose:
            print(f"[table1] {workload.name} ...", flush=True)
        program = workload.program()
        test = workload.test_tape(scale)
        reference = run_program(program, input_tape=test)
        outcome = run_scheme(
            program,
            "BB",
            workload.train_tape(scale),
            test,
        )
        rows.append(
            Table1Row(
                name=workload.name,
                category=workload.category,
                description=workload.description,
                size_bytes=outcome.layout.code_bytes,
                branches=reference.branches,
                cycles=outcome.result.cycles,
                instructions=outcome.result.operations,
            )
        )
    return rows


def format_table1(rows: List[Table1Row]) -> str:
    """Render Table 1 in the paper's column order."""
    return format_table(
        ["benchmark", "group", "size(B)", "branches", "cycles", "instrs"],
        [
            (r.name, r.category, r.size_bytes, r.branches, r.cycles, r.instructions)
            for r in rows
        ],
        title="Table 1: benchmark statistics (BB-scheduled, testing input)",
    )
