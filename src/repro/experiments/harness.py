"""Shared experiment machinery: run workloads under several schemes.

One training run is shared by all schemes of a workload (as in the paper,
where one profiling pass feeds both the edge- and path-based compilers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..pipeline import SchemeOutcome, run_scheme
from ..profiling.collector import ProfileBundle, collect_profiles
from ..scheduling.machine import MachineModel, PAPER_MACHINE
from ..simulate.icache import ICacheConfig
from ..workloads.base import Workload
from ..workloads.suite import all_workloads, workload_map

#: (workload name, scheme name) -> outcome
SuiteResults = Dict[Tuple[str, str], SchemeOutcome]


def run_workload(
    workload: Workload,
    schemes: Sequence[str],
    scale: float = 1.0,
    with_icache: bool = False,
    machine: MachineModel = PAPER_MACHINE,
    icache_config: Optional[ICacheConfig] = None,
) -> Dict[str, SchemeOutcome]:
    """Run one workload under each scheme, sharing the training profile."""
    program = workload.program()
    train = workload.train_tape(scale)
    test = workload.test_tape(scale)
    profiles = collect_profiles(program, input_tape=train)
    outcomes: Dict[str, SchemeOutcome] = {}
    for name in schemes:
        outcomes[name] = run_scheme(
            program,
            name,
            train,
            test,
            machine=machine,
            with_icache=with_icache,
            icache_config=icache_config,
            profiles=profiles,
        )
    return outcomes


def run_suite(
    schemes: Sequence[str],
    workload_names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    with_icache: bool = False,
    machine: MachineModel = PAPER_MACHINE,
    icache_config: Optional[ICacheConfig] = None,
    verbose: bool = False,
) -> SuiteResults:
    """Run a set of workloads under a set of schemes.

    Args:
        schemes: scheme names (e.g. ``["M4", "P4"]``).
        workload_names: subset of the suite; default = all 14.
        scale: input-size scale factor (1.0 = the default sizes).
        with_icache: also simulate through the finite I-cache.
        machine: target machine model.
        icache_config: cache geometry override.
        verbose: print progress lines.

    Returns:
        Map from (workload, scheme) to the full outcome.
    """
    table = workload_map()
    names = list(workload_names) if workload_names else list(table)
    results: SuiteResults = {}
    for wname in names:
        workload = table[wname]
        if verbose:
            print(f"[suite] {wname} ...", flush=True)
        outcomes = run_workload(
            workload,
            schemes,
            scale=scale,
            with_icache=with_icache,
            machine=machine,
            icache_config=icache_config,
        )
        for sname, outcome in outcomes.items():
            results[(wname, sname)] = outcome
    return results


def normalized_cycles(
    results: SuiteResults,
    workload: str,
    scheme: str,
    baseline: str,
    cached: bool = False,
) -> float:
    """Cycle count of ``scheme`` divided by ``baseline`` for one workload."""
    ours = results[(workload, scheme)]
    base = results[(workload, baseline)]
    if cached:
        return ours.cached_result.cycles / base.cached_result.cycles
    return ours.result.cycles / base.result.cycles
