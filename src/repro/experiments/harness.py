"""Shared experiment machinery: run workloads under several schemes.

One training run is shared by all schemes of a workload (as in the paper,
where one profiling pass feeds both the edge- and path-based compilers),
and one reference-interpreter run on the testing input checks all of them
(the reference is scheme-independent).

:func:`run_suite` is the engine behind every table and figure.  It layers
four accelerators over the serial pipeline, all result-transparent:

* ``cache=`` replays previously computed (workload, scheme) outcomes — and
  training profiles, testing references, and recorded execution traces —
  from an :class:`~repro.experiments.cache.ExperimentCache`;
* training runs are **recorded once** as compact execution traces and
  replayed through the batch profilers (see :mod:`repro.profiling`); a
  cached trace means a profile miss never re-executes the interpreter;
* ``jobs=`` fans the remaining pairs out over worker processes (see
  :mod:`repro.experiments.parallel`); ``jobs=0`` means one per CPU, and
  batches below :data:`~repro.experiments.parallel.MIN_PARALLEL_TASKS`
  fall back to the serial engine (pool startup would cost more than it
  saves);
* pre-decoded interpreter/simulator fast paths (always on) do the rest.

Results are merged deterministically in (workload, scheme) request order,
so every combination of ``jobs`` and ``cache`` produces an identical
:data:`SuiteResults` mapping.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, List, Optional, Sequence, Tuple

from ..formation import scheme
from ..interp.interpreter import ExecutionResult, run_program
from ..jit import JIT_STATS, record_jit_metrics
from ..metrics import MetricsSink, timed
from ..pipeline import SchemeOutcome, run_scheme
from ..profiling.collector import (
    ProfileBundle,
    TracedRun,
    collect_profiles,
    profiles_from_trace,
    record_trace,
)
from ..profiling.path_profile import DEFAULT_DEPTH
from ..scheduling.machine import MachineModel, PAPER_MACHINE
from ..simulate.icache import ICacheConfig
from ..trace.tracer import Tracer, tspan
from ..workloads.base import Workload
from ..workloads.suite import all_workloads, workload_map
from .cache import (
    ExperimentCache,
    outcome_key,
    profile_key,
    reference_key,
    trace_key,
)
from .parallel import (
    log_serial_fallback,
    resolve_jobs,
    run_pairs_parallel,
    should_parallelize,
)

#: (workload name, scheme name) -> outcome
SuiteResults = Dict[Tuple[str, str], SchemeOutcome]


def run_workload(
    workload: Workload,
    schemes: Sequence[str],
    scale: float = 1.0,
    with_icache: bool = False,
    machine: MachineModel = PAPER_MACHINE,
    icache_config: Optional[ICacheConfig] = None,
    profiles: Optional[ProfileBundle] = None,
    reference: Optional[ExecutionResult] = None,
    validation=None,
) -> Dict[str, SchemeOutcome]:
    """Run one workload under each scheme, sharing the training profile and
    the testing-input reference run across schemes."""
    program = workload.program()
    train = workload.train_tape(scale)
    test = workload.test_tape(scale)
    if profiles is None:
        profiles = collect_profiles(program, input_tape=train)
    if reference is None:
        reference = run_program(program, input_tape=test)
    outcomes: Dict[str, SchemeOutcome] = {}
    for name in schemes:
        outcomes[name] = run_scheme(
            program,
            name,
            train,
            test,
            machine=machine,
            with_icache=with_icache,
            icache_config=icache_config,
            profiles=profiles,
            reference=reference,
            validation=validation,
        )
    return outcomes


def run_suite(
    schemes: Sequence[str],
    workload_names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    with_icache: bool = False,
    machine: MachineModel = PAPER_MACHINE,
    icache_config: Optional[ICacheConfig] = None,
    verbose: bool = False,
    jobs: int = 1,
    cache: Optional[ExperimentCache] = None,
    trace_cache: bool = True,
    min_parallel_tasks: Optional[int] = None,
    validation=None,
    metrics: Optional[MetricsSink] = None,
    tracer: Optional[Tracer] = None,
    sched=None,
) -> SuiteResults:
    """Run a set of workloads under a set of schemes.

    Args:
        schemes: scheme names (e.g. ``["M4", "P4"]``).
        workload_names: subset of the suite; default = all 14.
        scale: input-size scale factor (1.0 = the default sizes).
        with_icache: also simulate through the finite I-cache.
        machine: target machine model.
        icache_config: cache geometry override.
        verbose: print progress lines.
        jobs: worker processes; 1 = in-process serial, 0/None = one per
            CPU.  Parallel results are bit-identical to serial ones.
        cache: replay outcomes/profiles/references/traces from this cache
            and store whatever had to be computed.
        trace_cache: also store (and replay) recorded execution traces in
            ``cache``, so a profile miss at a new depth never re-executes
            the interpreter.  Ignored when ``cache`` is ``None``.
        min_parallel_tasks: override the serial-fallback threshold
            (:data:`~repro.experiments.parallel.MIN_PARALLEL_TASKS`); pass
            ``0`` to force the pool for any task count.
        validation: a :class:`~repro.validation.ValidationConfig` running
            stage checkpoints inside every *computed* pipeline (cached
            outcomes were checked when first computed).
        metrics: a :class:`~repro.metrics.MetricsSink` recording stage
            timings, counters, and cache hit/miss disposition events.
            Parallel workers collect into per-process sinks that are
            merged back here, so counter totals are identical to a
            serial run's.
        tracer: a :class:`~repro.trace.Tracer` recording formation
            decisions, provenance, timing spans, and exit-cycle
            histograms inside every *computed* pipeline.  Parallel
            workers collect into per-task tracers merged back in request
            order, so the decision and span-name streams are identical
            to a serial run's (only wall-clock timestamps and pids
            differ).  Cached outcomes contribute no trace records.
        sched: optional :class:`~repro.scheduling.SchedConfig` (tuned
            list-scheduler weights, software pipelining) applied to every
            computed pipeline and folded into each outcome's cache key.

    Returns:
        Map from (workload, scheme) to the full outcome.
    """
    table = workload_map()
    names = list(workload_names) if workload_names else list(table)
    scheme_names = list(schemes)
    jobs = resolve_jobs(jobs) if not jobs or jobs < 1 else jobs

    configs = {sname: scheme(sname) for sname in scheme_names}
    tapes: Dict[str, Tuple[List[int], List[int]]] = {
        wname: (
            table[wname].train_tape(scale),
            table[wname].test_tape(scale),
        )
        for wname in names
    }

    # -- probe the cache -----------------------------------------------------
    hits: Dict[Tuple[str, str], SchemeOutcome] = {}
    pending: Dict[str, List[str]] = {}
    for wname in names:
        train, test = tapes[wname]
        if metrics is None:
            program = table[wname].program()
        else:
            with metrics.stage("setup.program", workload=wname):
                program = table[wname].program()
        for sname in scheme_names:
            outcome = None
            if cache is not None:
                before_disk = cache.stats.disk_hits
                outcome = cache.get_outcome(
                    program,
                    configs[sname],
                    train,
                    test,
                    machine,
                    with_icache,
                    icache_config,
                    sched=sched,
                )
                if metrics is not None:
                    if outcome is None:
                        disp = "miss"
                    elif cache.stats.disk_hits > before_disk:
                        disp = "disk"
                    else:
                        disp = "memo"
                    metrics.add(f"cache.outcome.{disp}")
                    metrics.event(
                        "cache",
                        workload=wname,
                        scheme=sname,
                        disposition=disp,
                    )
            if outcome is not None:
                hits[(wname, sname)] = outcome
            else:
                pending.setdefault(wname, []).append(sname)

    # -- compute what the cache could not answer -----------------------------
    computed: Dict[Tuple[str, str], SchemeOutcome] = {}
    profiles_by: Dict[str, ProfileBundle] = {}
    references_by: Dict[str, ExecutionResult] = {}
    traces_by: Dict[str, TracedRun] = {}
    if pending:
        cached_profiles: set = set()
        if cache is not None:
            for wname in pending:
                train, test = tapes[wname]
                program = table[wname].program()
                bundle = cache.get(
                    profile_key(program, train, DEFAULT_DEPTH)
                )
                # k-iteration schemes consume the recorded trace itself
                # (its cache key is depth- and k-independent), so probe it
                # even when the profile bundle hit.
                wants_trace = any(
                    configs[sname].kiter is not None
                    for sname in pending[wname]
                )
                if bundle is not None:
                    profiles_by[wname] = bundle
                    cached_profiles.add(wname)
                    if trace_cache and wants_trace:
                        traced = cache.get(trace_key(program, train))
                        if traced is not None:
                            traces_by[wname] = traced
                elif trace_cache:
                    # A recorded trace replays into the bundle without
                    # re-executing the interpreter; the derived bundle is
                    # still stored under its profile key afterwards.
                    traced = cache.get(trace_key(program, train))
                    if traced is not None:
                        traces_by[wname] = traced
                        if metrics is None and tracer is None:
                            profiles_by[wname] = profiles_from_trace(
                                program, traced
                            )
                        else:
                            mctx = (
                                nullcontext()
                                if metrics is None
                                else metrics.context(workload=wname)
                            )
                            tctx = (
                                nullcontext()
                                if tracer is None
                                else tracer.context(workload=wname)
                            )
                            with mctx, tctx, tspan(
                                tracer, "profile.replay"
                            ):
                                profiles_by[wname] = timed(
                                    metrics,
                                    "profile.replay",
                                    profiles_from_trace,
                                    program,
                                    traced,
                                )
                reference = cache.get(reference_key(program, test))
                if reference is not None:
                    references_by[wname] = reference
        cached_references = set(references_by)
        cached_traces = set(traces_by)

        task_count = sum(len(wanted) for wanted in pending.values())
        if jobs > 1 and not should_parallelize(
            task_count, jobs, min_parallel_tasks
        ):
            log_serial_fallback(task_count, jobs, verbose, min_parallel_tasks)
            jobs = 1
        if metrics is not None:
            # Which execution engine this suite actually used, so metric
            # dumps can tell a threshold-triggered serial fallback apart
            # from an explicit --jobs 1 run.
            engine = "parallel" if jobs > 1 else "serial"
            metrics.add(f"suite.engine.{engine}")
            metrics.event(
                "suite.engine",
                engine=engine,
                tasks=task_count,
                jobs=jobs,
            )

        if jobs > 1:
            computed = run_pairs_parallel(
                pending,
                scale,
                with_icache,
                machine,
                icache_config,
                jobs,
                profiles_by,
                references_by,
                verbose=verbose,
                traces_by_workload=traces_by,
                validation=validation,
                metrics=metrics,
                tracer=tracer,
                sched=sched,
            )
        else:
            for wname, wanted in pending.items():
                workload = table[wname]
                train, test = tapes[wname]
                program = workload.program()
                if verbose:
                    print(f"[suite] {wname} ...", flush=True)
                wctx = (
                    nullcontext()
                    if metrics is None
                    else metrics.context(workload=wname)
                )
                wtctx = (
                    nullcontext()
                    if tracer is None
                    else tracer.context(workload=wname)
                )
                jit_before = (
                    None if metrics is None else JIT_STATS.snapshot()
                )
                with wctx, wtctx:
                    profiles = profiles_by.get(wname)
                    if profiles is None:
                        traced = traces_by.get(wname)
                        if traced is None:
                            with tspan(tracer, "profile.record"):
                                traced = timed(
                                    metrics,
                                    "profile.record",
                                    record_trace,
                                    program,
                                    input_tape=train,
                                )
                            traces_by[wname] = traced
                            if metrics is not None:
                                metrics.add(
                                    "profile.trace_blocks",
                                    traced.trace.num_blocks,
                                )
                        with tspan(tracer, "profile.replay"):
                            profiles = timed(
                                metrics,
                                "profile.replay",
                                profiles_from_trace,
                                program,
                                traced,
                            )
                        profiles_by[wname] = profiles
                    reference = references_by.get(wname)
                    if reference is None:
                        with tspan(tracer, "reference"):
                            reference = timed(
                                metrics,
                                "reference",
                                run_program,
                                program,
                                input_tape=test,
                            )
                        references_by[wname] = reference
                    if metrics is not None:
                        record_jit_metrics(metrics, jit_before)
                for sname in wanted:
                    sctx = (
                        nullcontext()
                        if metrics is None
                        else metrics.context(workload=wname, scheme=sname)
                    )
                    stctx = (
                        nullcontext()
                        if tracer is None
                        else tracer.context(workload=wname, scheme=sname)
                    )
                    with sctx, stctx:
                        computed[(wname, sname)] = run_scheme(
                            program,
                            sname,
                            train,
                            test,
                            machine=machine,
                            with_icache=with_icache,
                            icache_config=icache_config,
                            profiles=profiles,
                            traced=traces_by.get(wname),
                            reference=reference,
                            validation=validation,
                            metrics=metrics,
                            tracer=tracer,
                            sched=sched,
                        )

        if cache is not None:
            for wname in pending:
                train, test = tapes[wname]
                program = table[wname].program()
                if wname not in cached_profiles and wname in profiles_by:
                    cache.put(
                        profile_key(program, train, DEFAULT_DEPTH),
                        profiles_by[wname],
                    )
                if (
                    trace_cache
                    and wname not in cached_traces
                    and wname in traces_by
                ):
                    cache.put(
                        trace_key(program, train), traces_by[wname]
                    )
                if (
                    wname not in cached_references
                    and wname in references_by
                ):
                    cache.put(
                        reference_key(program, test), references_by[wname]
                    )
            for (wname, sname), outcome in computed.items():
                train, test = tapes[wname]
                cache.put(
                    outcome_key(
                        table[wname].program(),
                        configs[sname],
                        train,
                        test,
                        machine,
                        with_icache,
                        icache_config,
                        sched=sched,
                    ),
                    outcome,
                )

    # -- deterministic merge -------------------------------------------------
    results: SuiteResults = {}
    for wname in names:
        for sname in scheme_names:
            pair = (wname, sname)
            results[pair] = computed[pair] if pair in computed else hits[pair]
    return results


def normalized_cycles(
    results: SuiteResults,
    workload: str,
    scheme: str,
    baseline: str,
    cached: bool = False,
) -> float:
    """Cycle count of ``scheme`` divided by ``baseline`` for one workload."""
    ours = results[(workload, scheme)]
    base = results[(workload, baseline)]
    if cached:
        return ours.cached_result.cycles / base.cached_result.cycles
    return ours.result.cycles / base.result.cycles
