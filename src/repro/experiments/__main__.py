"""Command-line entry point for regenerating the paper's tables and figures.

Usage::

    python -m repro.experiments table1
    python -m repro.experiments figure4 --scale 0.5
    python -m repro.experiments all --scale 0.25 --jobs 4

Validation commands (see :mod:`repro.validation`):

* ``validate`` — run every (workload, scheme) pair with all stage
  checkpoints on and differentially compare the simulated output of the
  scheduled code against the reference interpreter (cached outcomes are
  re-checked too).  Exits nonzero on any mismatch.
* ``fuzz --seeds N`` — differential fuzzing: N seeded random MiniC
  programs through the whole compiler under several schemes, failures
  delta-debugged to minimal reproducers.  Exits nonzero on any failure.

Performance flags:

* ``--jobs N`` — run (workload, scheme) pipelines over N worker processes
  (``0``, the default, means one per CPU; ``1`` forces the serial engine).
* ``--no-cache`` — recompute everything, ignoring the on-disk result cache.
* ``--cache-dir PATH`` — cache location (default ``$REPRO_CACHE_DIR`` or
  ``~/.cache/repro-experiments``).
* ``--trace-cache`` / ``--no-trace-cache`` — record each training run once
  as a compact execution trace, cache it, and replay it through the batch
  profilers whenever a profile (at any depth) is needed (default on).

All of them are result-transparent: the rendered tables and figures are
byte-identical whatever their setting.
"""

from __future__ import annotations

import argparse
import os
import sys

from . import (
    ExperimentCache,
    depth_sweep,
    figure4,
    format_depth_sweep,
    format_forward_vs_general,
    format_latency_sensitivity,
    format_static_prediction,
    forward_vs_general,
    latency_sensitivity,
    static_prediction,
    figure5,
    figure6,
    figure7,
    format_figure4,
    format_figure5,
    format_figure6,
    format_figure7,
    format_interproc,
    format_missrates,
    format_table1,
    interproc,
    missrates,
    table1,
)

# Suite-backed experiments accept jobs/cache/traces/metrics; most ablations
# are small single-purpose loops and ignore them, but the depth sweep
# replays cached traces.
EXPERIMENTS = {
    "table1": lambda scale, verbose, jobs, cache, traces, metrics: (
        format_table1(
            table1(
                scale=scale,
                verbose=verbose,
                jobs=jobs,
                cache=cache,
                trace_cache=traces,
                metrics=metrics,
            )
        )
    ),
    "figure4": lambda scale, verbose, jobs, cache, traces, metrics: (
        format_figure4(
            figure4(
                scale=scale,
                verbose=verbose,
                jobs=jobs,
                cache=cache,
                trace_cache=traces,
                metrics=metrics,
            )
        )
    ),
    "figure5": lambda scale, verbose, jobs, cache, traces, metrics: (
        format_figure5(
            figure5(
                scale=scale,
                verbose=verbose,
                jobs=jobs,
                cache=cache,
                trace_cache=traces,
                metrics=metrics,
            )
        )
    ),
    "figure6": lambda scale, verbose, jobs, cache, traces, metrics: (
        format_figure6(
            figure6(
                scale=scale,
                verbose=verbose,
                jobs=jobs,
                cache=cache,
                trace_cache=traces,
                metrics=metrics,
            )
        )
    ),
    "figure7": lambda scale, verbose, jobs, cache, traces, metrics: (
        format_figure7(
            figure7(
                scale=scale,
                verbose=verbose,
                jobs=jobs,
                cache=cache,
                trace_cache=traces,
                metrics=metrics,
            )
        )
    ),
    "missrates": lambda scale, verbose, jobs, cache, traces, metrics: (
        format_missrates(
            missrates(
                scale=scale,
                verbose=verbose,
                jobs=jobs,
                cache=cache,
                trace_cache=traces,
                metrics=metrics,
            )
        )
    ),
    "interproc": lambda scale, verbose, jobs, cache, traces, metrics: (
        format_interproc(
            interproc(
                scale=scale,
                verbose=verbose,
                jobs=jobs,
                cache=cache,
                trace_cache=traces,
                metrics=metrics,
            )
        )
    ),
    "depthsweep": lambda scale, verbose, jobs, cache, traces, metrics: (
        format_depth_sweep(
            depth_sweep(
                scale=scale, verbose=verbose, cache=cache if traces else None
            )
        )
    ),
    "latency": lambda scale, verbose, jobs, cache, traces, metrics: (
        format_latency_sensitivity(
            latency_sensitivity(scale=scale, verbose=verbose)
        )
    ),
    "forwardpaths": lambda scale, verbose, jobs, cache, traces, metrics: (
        format_forward_vs_general(
            forward_vs_general(scale=scale, verbose=verbose)
        )
    ),
    "prediction": lambda scale, verbose, jobs, cache, traces, metrics: (
        format_static_prediction(
            static_prediction(scale=scale, verbose=verbose)
        )
    ),
}


def run_report(args) -> int:
    """The ``report`` subcommand: render a metrics JSONL file, run the
    bench tripwire (history noise bands when a history file has enough
    runs, the committed single-baseline check otherwise), and/or render
    the static trend dashboard."""
    import json

    from ..metrics import (
        HistoryStore,
        MetricsSink,
        check_bench_regression,
        check_history,
        fingerprint_id,
        format_bench_check,
        format_history_check,
        format_report,
        machine_fingerprint,
        summarize,
    )

    status = 0
    if args.path:
        # Unknown (future) schema versions warn once inside read_jsonl.
        sink = MetricsSink.read_jsonl(args.path)
        summary = summarize(sink)
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(format_report(summary))
    current = None
    if args.check_bench:
        with open(args.check_bench) as fh:
            current = json.load(fh)
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        if args.path:
            print()
        failures = []
        fallback_metrics = None
        if args.history:
            store = HistoryStore(args.history)
            # Band on this machine's runs only: timings from other
            # machines (an updated CI runner image, a laptop sharing the
            # file) describe different hardware and would widen or skew
            # the noise estimate.  --all-machines pools everything.
            fingerprint = (
                None
                if args.all_machines
                else fingerprint_id(machine_fingerprint())
            )
            checks = check_history(current, store, fingerprint=fingerprint)
            print(format_history_check(checks))
            failures += [
                f"{check.metric}: {check.current:.4f} outside history band"
                f" [{check.low:.4f}, {check.high:.4f}]"
                f" (median {check.median:.4f} over {check.runs} runs)"
                for check in checks
                if check.failed
            ]
            # Metrics the history cannot band yet fall back to the legacy
            # single-baseline +-threshold check below.
            fallback_metrics = [
                check.metric
                for check in checks
                if check.status == "insufficient"
            ]
            print()
        if fallback_metrics is None:
            print(
                format_bench_check(current, baseline, threshold=args.threshold)
            )
            failures += check_bench_regression(
                current, baseline, threshold=args.threshold
            )
        elif fallback_metrics:
            print(
                format_bench_check(
                    current,
                    baseline,
                    threshold=args.threshold,
                    metrics=fallback_metrics,
                )
            )
            failures += check_bench_regression(
                current,
                baseline,
                threshold=args.threshold,
                metrics=fallback_metrics,
            )
        for failure in failures:
            print(f"[tripwire] {failure}", file=sys.stderr)
        if failures:
            status = 1
    if args.html:
        if not args.history:
            print(
                "report: --html needs --history FILE (the dashboard plots"
                " the bench history store)",
                file=sys.stderr,
            )
            return 2
        from ..metrics.dashboard import render_dashboard

        artifacts = {}
        for label, href in args.link or []:
            artifacts[label] = href
        index = render_dashboard(
            HistoryStore(args.history),
            args.html,
            current=current,
            artifacts=artifacts or None,
        )
        print(f"[report] dashboard -> {index}", file=sys.stderr)
    if not args.path and not args.check_bench and not args.html:
        print(
            "report: nothing to do (give a METRICS.jsonl path,"
            " --check-bench, and/or --html)",
            file=sys.stderr,
        )
        status = 2
    return status


def run_history(argv) -> int:
    """The ``history`` verb: append/list/show/check the bench history."""
    import argparse
    import json

    from ..metrics import (
        HistoryStore,
        check_history,
        default_history_path,
        fingerprint_id,
        format_history_check,
        format_history_list,
        format_history_show,
        machine_fingerprint,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments history",
        description="Longitudinal bench history: append perf reports,"
        " list/show recorded runs, and check a fresh report against"
        " per-metric median/MAD noise bands.",
    )
    parser.add_argument(
        "action",
        choices=["append", "list", "show", "check"],
        help="append REPORT.json; list runs; show --metric M; check"
        " REPORT.json against the noise bands",
    )
    parser.add_argument(
        "report",
        nargs="?",
        default=None,
        help="append/check: the perf-smoke (or service-smoke) report JSON",
    )
    parser.add_argument(
        "--history",
        default=None,
        metavar="FILE",
        help="history JSONL file (default: $REPRO_HISTORY_FILE or"
        " BENCH_history.jsonl)",
    )
    parser.add_argument(
        "--source",
        default="perf_smoke",
        help="record source tag (append) / filter (list/show/check);"
        " 'all' disables the filter (default perf_smoke)",
    )
    parser.add_argument(
        "--sha",
        default=None,
        help="append: git sha to record (default: the checked-out HEAD)",
    )
    parser.add_argument(
        "--keep",
        type=int,
        default=None,
        metavar="N",
        help="append: prune the history to the newest N records after"
        " appending (what CI uses to bound the artifact)",
    )
    parser.add_argument(
        "--metric",
        default=None,
        help="show: dotted metric path (e.g. jit.speedup_on_vs_off)",
    )
    parser.add_argument(
        "--last",
        type=int,
        default=None,
        metavar="N",
        help="show: only the newest N runs",
    )
    parser.add_argument(
        "--all-machines",
        action="store_true",
        help="check: band over every machine's recorded runs instead of"
        " only this machine's fingerprint",
    )
    args = parser.parse_args(argv)
    source = None if args.source == "all" else args.source
    store = HistoryStore(args.history or default_history_path())

    if args.action == "append":
        if not args.report:
            parser.error("append needs a REPORT.json path")
        with open(args.report) as fh:
            report = json.load(fh)
        record = store.append(
            report, source=args.source, sha=args.sha, keep=args.keep
        )
        total = len(store.records())
        print(
            f"[history] appended {record['source']} run"
            f" {record['sha'][:12]} (machine {record['fingerprint_id']})"
            f" -> {store.path} ({total} record(s))"
        )
        return 0
    if args.action == "list":
        records = store.records(source=source)
        if not records:
            print(f"history: no records in {store.path}")
            return 0
        print(format_history_list(records))
        if store.skipped_lines:
            print(
                f"[history] skipped {store.skipped_lines} malformed"
                " line(s)",
                file=sys.stderr,
            )
        return 0
    if args.action == "show":
        if not args.metric:
            parser.error("show needs --metric")
        print(
            format_history_show(
                store, args.metric, source=source, last=args.last
            )
        )
        return 0
    # check
    if not args.report:
        parser.error("check needs a REPORT.json path")
    with open(args.report) as fh:
        current = json.load(fh)
    # Only this machine's runs enter the band unless --all-machines:
    # other machines' timings describe different hardware.
    fingerprint = (
        None if args.all_machines else fingerprint_id(machine_fingerprint())
    )
    checks = check_history(
        current, store, source=source, fingerprint=fingerprint
    )
    print(format_history_check(checks))
    failures = [check for check in checks if check.failed]
    insufficient = [
        check for check in checks if check.status == "insufficient"
    ]
    for check in failures:
        print(
            f"[tripwire] {check.metric}: {check.current:.4f} outside"
            f" history band [{check.low:.4f}, {check.high:.4f}]",
            file=sys.stderr,
        )
    if insufficient:
        print(
            f"[history] {len(insufficient)} metric(s) with <3 recorded"
            " runs; use 'report --check-bench' for the baseline fallback",
            file=sys.stderr,
        )
    return 1 if failures else 0


def main(argv=None) -> int:
    raw = list(sys.argv[1:] if argv is None else argv)
    # "history" has its own verb grammar (append/list/show/check) that the
    # flat experiment parser cannot express; dispatch it before argparse.
    if raw and raw[0] == "history":
        return run_history(raw[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS)
        + ["all", "validate", "fuzz", "report", "history", "gapcheck", "tune"],
        help="which table/figure to regenerate, a validation command,"
        " 'report' to render collected metrics / run the bench tripwire,"
        " 'history' to append/list/show/check the bench history store,"
        " 'gapcheck' to measure the list scheduler's gap from the exact"
        " oracle, or 'tune' to search the scheduler priority weights",
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="report: metrics JSONL file to render",
    )
    parser.add_argument(
        "--schemes",
        default=None,
        help="comma-separated scheme names for validate/fuzz (defaults:"
        " all seven — BB,M4,M16,P4,P4e,P4i,P4k — for validate, BB,M4,P4"
        " for fuzz)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=100,
        help="fuzz: how many seeds to run (default 100)",
    )
    parser.add_argument(
        "--start",
        type=int,
        default=0,
        help="fuzz: first seed (default 0)",
    )
    parser.add_argument(
        "--no-reduce",
        action="store_true",
        help="fuzz: skip delta-debugging failing programs",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="input-size scale factor (smaller = faster)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="worker processes for suite experiments (0 = one per CPU,"
        " 1 = serial)",
    )
    parser.add_argument(
        "--parallel-threshold",
        type=int,
        default=None,
        metavar="N",
        help="minimum (workload, scheme) task count before --jobs uses a"
        " worker pool; smaller batches fall back to the serial engine"
        " (default 16; also: REPRO_PARALLEL_THRESHOLD; 0 always pools)",
    )
    parser.add_argument(
        "--no-jit",
        action="store_true",
        help="run the reference interpreter/simulator loops instead of"
        " the template JIT (also: REPRO_JIT=0)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or"
        " ~/.cache/repro-experiments)",
    )
    parser.add_argument(
        "--trace-cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="store recorded execution traces in the result cache and"
        " replay them instead of re-running the interpreter (default on;"
        " --no-trace-cache disables)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="collect pipeline stage metrics during the experiments and"
        " write them to FILE as JSONL (render with the report command)",
    )
    parser.add_argument(
        "--profile-out",
        default=None,
        metavar="FILE",
        help="attach the sampling profiler to this run and write a"
        " folded-stacks profile to FILE (feed it to flamegraph.pl or"
        " speedscope; off by default — results are byte-identical"
        " either way)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="report: print the machine-readable summary instead of text",
    )
    parser.add_argument(
        "--check-bench",
        default=None,
        metavar="FILE",
        help="report: compare a fresh perf-smoke report FILE against the"
        " baseline; exit 1 on a tripwire regression",
    )
    parser.add_argument(
        "--baseline",
        default="BENCH_pipeline.json",
        help="report: baseline perf-smoke report"
        " (default BENCH_pipeline.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="report: tripwire regression threshold as a fraction"
        " (default 0.25)",
    )
    parser.add_argument(
        "--history",
        default=None,
        metavar="FILE",
        help="report: bench history JSONL; --check-bench then uses"
        " per-metric median/MAD noise bands for every metric with >=3"
        " recorded runs (the baseline check remains the fallback), and"
        " --html plots it",
    )
    parser.add_argument(
        "--all-machines",
        action="store_true",
        help="report: band --check-bench over every machine's recorded"
        " runs instead of only this machine's fingerprint",
    )
    parser.add_argument(
        "--html",
        default=None,
        metavar="DIR",
        help="report: render the static trend dashboard (sparklines +"
        " band status per tripwire metric) into DIR (needs --history)",
    )
    parser.add_argument(
        "--link",
        action="append",
        nargs=2,
        default=None,
        metavar=("LABEL", "HREF"),
        help="report --html: add an artifact link to the dashboard"
        " (e.g. --link flamegraph profile.folded); repeatable",
    )
    parser.add_argument(
        "--workloads",
        default=None,
        help="comma-separated workload subset for validate/gapcheck/tune"
        " (default: all 14)",
    )
    parser.add_argument(
        "--machine",
        choices=["paper", "realistic"],
        default="paper",
        help="gapcheck/tune: machine model (default paper)",
    )
    parser.add_argument(
        "--oracle-ops",
        type=int,
        default=None,
        metavar="N",
        help="gapcheck: skip superblocks larger than N instructions"
        " (default 48)",
    )
    parser.add_argument(
        "--oracle-nodes",
        type=int,
        default=None,
        metavar="N",
        help="gapcheck: branch-and-bound node budget per superblock"
        " (default 200000)",
    )
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="gapcheck: also write the full per-superblock report as JSON",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="tune: random seed for the candidate draw (default 0)",
    )
    parser.add_argument(
        "--samples",
        type=int,
        default=None,
        metavar="N",
        help="tune: random candidates beyond the baseline (default 12)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="tune: persist the search report as JSON",
    )
    parser.add_argument(
        "--replay",
        default=None,
        metavar="FILE",
        help="tune: re-run a persisted search from its own parameters and"
        " verify the fresh report is byte-identical",
    )
    parser.add_argument(
        "--pipeline",
        action="store_true",
        help="validate: compile with software pipelining enabled, so every"
        " modulo-scheduled loop runs the expansion legality check and the"
        " differential output oracle",
    )
    args = parser.parse_args(argv)

    # Both knobs travel through the environment so worker processes (and
    # every experiment function, without re-threading parameters) see them.
    if args.parallel_threshold is not None:
        from .parallel import PARALLEL_THRESHOLD_ENV

        os.environ[PARALLEL_THRESHOLD_ENV] = str(args.parallel_threshold)
    if args.no_jit:
        from ..jit import JIT_ENV_VAR, set_jit_enabled

        os.environ[JIT_ENV_VAR] = "0"
        set_jit_enabled(False)

    if args.experiment == "report":
        if args.threshold is None:
            from ..metrics import DEFAULT_REGRESSION_THRESHOLD

            args.threshold = DEFAULT_REGRESSION_THRESHOLD
        return run_report(args)
    if args.path is not None:
        parser.error("a metrics path only makes sense with 'report'")

    cache = None if args.no_cache else ExperimentCache(path=args.cache_dir)
    workloads = args.workloads.split(",") if args.workloads else None
    if args.experiment == "gapcheck":
        from ..scheduling.machine import PAPER_MACHINE, REALISTIC_MACHINE
        from ..scheduling.oracle import DEFAULT_MAX_OPS, DEFAULT_NODE_BUDGET
        from . import format_gap_check, gap_check, gap_check_json

        summary = gap_check(
            scheme_names=(
                args.schemes.split(",") if args.schemes else ("P4",)
            ),
            scale=args.scale,
            workload_names=workloads,
            machine=(
                REALISTIC_MACHINE
                if args.machine == "realistic"
                else PAPER_MACHINE
            ),
            max_ops=(
                args.oracle_ops
                if args.oracle_ops is not None
                else DEFAULT_MAX_OPS
            ),
            node_budget=(
                args.oracle_nodes
                if args.oracle_nodes is not None
                else DEFAULT_NODE_BUDGET
            ),
            verbose=not args.quiet,
        )
        print(format_gap_check(summary))
        if args.json_out:
            with open(args.json_out, "w") as fh:
                fh.write(gap_check_json(summary))
            if not args.quiet:
                print(f"[gapcheck] report -> {args.json_out}", file=sys.stderr)
        return 0
    if args.experiment == "tune":
        from ..scheduling.machine import PAPER_MACHINE, REALISTIC_MACHINE
        from . import (
            DEFAULT_SAMPLES,
            format_tune,
            replay_tune,
            tune_json,
            tune_weights,
        )

        if args.replay:
            ok = replay_tune(
                args.replay,
                cache=cache,
                trace_cache=args.trace_cache,
                jobs=args.jobs,
                verbose=not args.quiet,
            )
            print(
                f"[tune] replay of {args.replay}:"
                f" {'byte-identical' if ok else 'MISMATCH'}"
            )
            return 0 if ok else 1
        payload = tune_weights(
            scheme_names=(
                args.schemes.split(",") if args.schemes else ("P4",)
            ),
            scale=args.scale,
            workload_names=workloads,
            samples=(
                args.samples if args.samples is not None else DEFAULT_SAMPLES
            ),
            seed=args.seed,
            machine=(
                REALISTIC_MACHINE
                if args.machine == "realistic"
                else PAPER_MACHINE
            ),
            cache=cache,
            trace_cache=args.trace_cache,
            jobs=args.jobs,
            verbose=not args.quiet,
        )
        print(format_tune(payload))
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(tune_json(payload))
            if not args.quiet:
                print(f"[tune] report -> {args.out}", file=sys.stderr)
        if cache is not None and not args.quiet:
            print(f"[cache] {cache.stats.summary()}", file=sys.stderr)
        return 0
    if args.experiment == "validate":
        from ..scheduling.config import SchedConfig
        from . import ALL_SCHEMES, format_validation, validate_suite

        schemes = (
            args.schemes.split(",") if args.schemes else list(ALL_SCHEMES)
        )
        rows = validate_suite(
            schemes,
            scale=args.scale,
            workload_names=workloads,
            verbose=not args.quiet,
            jobs=args.jobs,
            cache=cache,
            trace_cache=args.trace_cache,
            sched=SchedConfig(pipeline=True) if args.pipeline else None,
        )
        print(format_validation(rows))
        if cache is not None and not args.quiet:
            print(f"[cache] {cache.stats.summary()}", file=sys.stderr)
        return 0 if all(row.ok for row in rows) else 1
    if args.experiment == "fuzz":
        from ..validation.fuzz import (
            DEFAULT_SCHEMES,
            format_fuzz_report,
            run_fuzz,
        )

        schemes = (
            args.schemes.split(",") if args.schemes else list(DEFAULT_SCHEMES)
        )
        report = run_fuzz(
            args.seeds,
            start=args.start,
            schemes=schemes,
            reduce=not args.no_reduce,
            verbose=not args.quiet,
        )
        print(format_fuzz_report(report))
        return 0 if report.ok else 1
    if args.experiment == "all":
        # "all" is the canonical paper-regeneration artifact; its output is
        # kept stable so engine changes can be diffed against it.  The
        # depth-sweep demo and the interprocedural study are newer than
        # that baseline and must be asked for by name.
        names = sorted(
            name
            for name in EXPERIMENTS
            if name not in ("depthsweep", "interproc")
        )
    else:
        names = [args.experiment]
    metrics = None
    if args.metrics_out:
        from ..metrics import MetricsSink

        metrics = MetricsSink()
    profiler = None
    if args.profile_out:
        from ..metrics import SamplingProfiler

        profiler = SamplingProfiler().start()
    try:
        for name in names:
            print(
                EXPERIMENTS[name](
                    args.scale,
                    not args.quiet,
                    args.jobs,
                    cache,
                    args.trace_cache,
                    metrics,
                )
            )
            print()
    finally:
        if profiler is not None:
            profiler.stop()
            stacks = profiler.write_folded(args.profile_out)
            if not args.quiet:
                print(
                    f"[profile] {profiler.samples} sample(s),"
                    f" {stacks} stack(s) -> {args.profile_out}"
                    " (render with flamegraph.pl or speedscope)",
                    file=sys.stderr,
                )
    if metrics is not None:
        lines = metrics.write_jsonl(args.metrics_out)
        if not args.quiet:
            print(
                f"[metrics] {lines} event(s) ->"
                f" {args.metrics_out} (render with:"
                f" python -m repro.experiments report {args.metrics_out})",
                file=sys.stderr,
            )
    if cache is not None and not args.quiet:
        print(f"[cache] {cache.stats.summary()}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
