"""Command-line entry point for regenerating the paper's tables and figures.

Usage::

    python -m repro.experiments table1
    python -m repro.experiments figure4 --scale 0.5
    python -m repro.experiments all --scale 0.25 --jobs 4

Validation commands (see :mod:`repro.validation`):

* ``validate`` — run every (workload, scheme) pair with all stage
  checkpoints on and differentially compare the simulated output of the
  scheduled code against the reference interpreter (cached outcomes are
  re-checked too).  Exits nonzero on any mismatch.
* ``fuzz --seeds N`` — differential fuzzing: N seeded random MiniC
  programs through the whole compiler under several schemes, failures
  delta-debugged to minimal reproducers.  Exits nonzero on any failure.

Performance flags:

* ``--jobs N`` — run (workload, scheme) pipelines over N worker processes
  (``0``, the default, means one per CPU; ``1`` forces the serial engine).
* ``--no-cache`` — recompute everything, ignoring the on-disk result cache.
* ``--cache-dir PATH`` — cache location (default ``$REPRO_CACHE_DIR`` or
  ``~/.cache/repro-experiments``).
* ``--trace-cache`` / ``--no-trace-cache`` — record each training run once
  as a compact execution trace, cache it, and replay it through the batch
  profilers whenever a profile (at any depth) is needed (default on).

All of them are result-transparent: the rendered tables and figures are
byte-identical whatever their setting.
"""

from __future__ import annotations

import argparse
import sys

from . import (
    ExperimentCache,
    depth_sweep,
    figure4,
    format_depth_sweep,
    format_forward_vs_general,
    format_latency_sensitivity,
    format_static_prediction,
    forward_vs_general,
    latency_sensitivity,
    static_prediction,
    figure5,
    figure6,
    figure7,
    format_figure4,
    format_figure5,
    format_figure6,
    format_figure7,
    format_missrates,
    format_table1,
    missrates,
    table1,
)

# Suite-backed experiments accept jobs/cache/traces; most ablations are
# small single-purpose loops and ignore them, but the depth sweep replays
# cached traces.
EXPERIMENTS = {
    "table1": lambda scale, verbose, jobs, cache, traces: format_table1(
        table1(
            scale=scale,
            verbose=verbose,
            jobs=jobs,
            cache=cache,
            trace_cache=traces,
        )
    ),
    "figure4": lambda scale, verbose, jobs, cache, traces: format_figure4(
        figure4(
            scale=scale,
            verbose=verbose,
            jobs=jobs,
            cache=cache,
            trace_cache=traces,
        )
    ),
    "figure5": lambda scale, verbose, jobs, cache, traces: format_figure5(
        figure5(
            scale=scale,
            verbose=verbose,
            jobs=jobs,
            cache=cache,
            trace_cache=traces,
        )
    ),
    "figure6": lambda scale, verbose, jobs, cache, traces: format_figure6(
        figure6(
            scale=scale,
            verbose=verbose,
            jobs=jobs,
            cache=cache,
            trace_cache=traces,
        )
    ),
    "figure7": lambda scale, verbose, jobs, cache, traces: format_figure7(
        figure7(
            scale=scale,
            verbose=verbose,
            jobs=jobs,
            cache=cache,
            trace_cache=traces,
        )
    ),
    "missrates": lambda scale, verbose, jobs, cache, traces: format_missrates(
        missrates(
            scale=scale,
            verbose=verbose,
            jobs=jobs,
            cache=cache,
            trace_cache=traces,
        )
    ),
    "depthsweep": lambda scale, verbose, jobs, cache, traces: (
        format_depth_sweep(
            depth_sweep(
                scale=scale, verbose=verbose, cache=cache if traces else None
            )
        )
    ),
    "latency": lambda scale, verbose, jobs, cache, traces: (
        format_latency_sensitivity(
            latency_sensitivity(scale=scale, verbose=verbose)
        )
    ),
    "forwardpaths": lambda scale, verbose, jobs, cache, traces: (
        format_forward_vs_general(
            forward_vs_general(scale=scale, verbose=verbose)
        )
    ),
    "prediction": lambda scale, verbose, jobs, cache, traces: (
        format_static_prediction(
            static_prediction(scale=scale, verbose=verbose)
        )
    ),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "validate", "fuzz"],
        help="which table/figure to regenerate, or a validation command",
    )
    parser.add_argument(
        "--schemes",
        default=None,
        help="comma-separated scheme names for validate/fuzz (defaults:"
        " all five for validate, BB,M4,P4 for fuzz)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=100,
        help="fuzz: how many seeds to run (default 100)",
    )
    parser.add_argument(
        "--start",
        type=int,
        default=0,
        help="fuzz: first seed (default 0)",
    )
    parser.add_argument(
        "--no-reduce",
        action="store_true",
        help="fuzz: skip delta-debugging failing programs",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="input-size scale factor (smaller = faster)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="worker processes for suite experiments (0 = one per CPU,"
        " 1 = serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or"
        " ~/.cache/repro-experiments)",
    )
    parser.add_argument(
        "--trace-cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="store recorded execution traces in the result cache and"
        " replay them instead of re-running the interpreter (default on;"
        " --no-trace-cache disables)",
    )
    args = parser.parse_args(argv)

    cache = None if args.no_cache else ExperimentCache(path=args.cache_dir)
    if args.experiment == "validate":
        from . import ALL_SCHEMES, format_validation, validate_suite

        schemes = (
            args.schemes.split(",") if args.schemes else list(ALL_SCHEMES)
        )
        rows = validate_suite(
            schemes,
            scale=args.scale,
            verbose=not args.quiet,
            jobs=args.jobs,
            cache=cache,
            trace_cache=args.trace_cache,
        )
        print(format_validation(rows))
        if cache is not None and not args.quiet:
            print(f"[cache] {cache.stats.summary()}", file=sys.stderr)
        return 0 if all(row.ok for row in rows) else 1
    if args.experiment == "fuzz":
        from ..validation.fuzz import (
            DEFAULT_SCHEMES,
            format_fuzz_report,
            run_fuzz,
        )

        schemes = (
            args.schemes.split(",") if args.schemes else list(DEFAULT_SCHEMES)
        )
        report = run_fuzz(
            args.seeds,
            start=args.start,
            schemes=schemes,
            reduce=not args.no_reduce,
            verbose=not args.quiet,
        )
        print(format_fuzz_report(report))
        return 0 if report.ok else 1
    if args.experiment == "all":
        # "all" is the canonical paper-regeneration artifact; its output is
        # kept stable so engine changes can be diffed against it.  The
        # depth-sweep demo is newer than that baseline and must be asked
        # for by name.
        names = sorted(name for name in EXPERIMENTS if name != "depthsweep")
    else:
        names = [args.experiment]
    for name in names:
        print(
            EXPERIMENTS[name](
                args.scale, not args.quiet, args.jobs, cache, args.trace_cache
            )
        )
        print()
    if cache is not None and not args.quiet:
        print(f"[cache] {cache.stats.summary()}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
