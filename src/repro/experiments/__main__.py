"""Command-line entry point for regenerating the paper's tables and figures.

Usage::

    python -m repro.experiments table1
    python -m repro.experiments figure4 --scale 0.5
    python -m repro.experiments all --scale 0.25
"""

from __future__ import annotations

import argparse
import sys

from . import (
    figure4,
    format_forward_vs_general,
    format_latency_sensitivity,
    format_static_prediction,
    forward_vs_general,
    latency_sensitivity,
    static_prediction,
    figure5,
    figure6,
    figure7,
    format_figure4,
    format_figure5,
    format_figure6,
    format_figure7,
    format_missrates,
    format_table1,
    missrates,
    table1,
)

EXPERIMENTS = {
    "table1": lambda scale, verbose: format_table1(
        table1(scale=scale, verbose=verbose)
    ),
    "figure4": lambda scale, verbose: format_figure4(
        figure4(scale=scale, verbose=verbose)
    ),
    "figure5": lambda scale, verbose: format_figure5(
        figure5(scale=scale, verbose=verbose)
    ),
    "figure6": lambda scale, verbose: format_figure6(
        figure6(scale=scale, verbose=verbose)
    ),
    "figure7": lambda scale, verbose: format_figure7(
        figure7(scale=scale, verbose=verbose)
    ),
    "missrates": lambda scale, verbose: format_missrates(
        missrates(scale=scale, verbose=verbose)
    ),
    "latency": lambda scale, verbose: format_latency_sensitivity(
        latency_sensitivity(scale=scale, verbose=verbose)
    ),
    "forwardpaths": lambda scale, verbose: format_forward_vs_general(
        forward_vs_general(scale=scale, verbose=verbose)
    ),
    "prediction": lambda scale, verbose: format_static_prediction(
        static_prediction(scale=scale, verbose=verbose)
    ),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="input-size scale factor (smaller = faster)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(EXPERIMENTS[name](args.scale, not args.quiet))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
