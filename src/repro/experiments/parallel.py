"""Process-pool execution of experiment suites.

The suite's unit of work is one (workload, scheme) pipeline run; workloads
are independent and, past profiling, so are the schemes of one workload.
:func:`run_pairs_parallel` fans those pairs out over a
:class:`~concurrent.futures.ProcessPoolExecutor` in two overlapped stages:

1. **Profile stage** — one task per workload runs the training input under
   the profilers and the testing input under the reference interpreter.
   This preserves the paper's discipline (and the serial engine's): one
   training run feeds *all* schemes of a workload.
2. **Scheme stage** — as each profile lands, one task per pending scheme
   replays the compile→simulate pipeline with the shared
   :class:`~repro.profiling.collector.ProfileBundle` and reference result.

Workers rebuild programs from the workload registry by name (programs are
memoized per worker process), so only profiles, references, and outcomes
cross the process boundary.  Results are merged into the caller-supplied
order, making the parallel engine's output deterministic and bit-identical
to the serial one's regardless of completion order.
"""

from __future__ import annotations

import sys
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import nullcontext
from typing import Dict, List, Optional, Sequence, Tuple

from ..formation import scheme
from ..interp.interpreter import ExecutionResult, run_program
from ..jit import JIT_STATS, record_jit_metrics
from ..metrics import MetricsSink, timed
from ..pipeline import SchemeOutcome, run_scheme
from ..trace.tracer import Tracer, tspan
from ..profiling.collector import (
    ProfileBundle,
    TracedRun,
    profiles_from_trace,
    record_trace,
)
from ..scheduling.machine import MachineModel
from ..service.pool import warm_worker
from ..workloads.base import Workload
from ..workloads.suite import workload_map

#: Per-worker-process workload registry (programs memoize on the instances).
_WORKLOADS: Dict[str, Workload] = {}

#: Below this many (workload, scheme) tasks, pool startup and pickling cost
#: more than they save: BENCH_pipeline.json measured 0.59x vs serial for a
#: 15-task slice at scale 0.25 under a 2-worker pool.  :func:`run_suite`
#: falls back to the serial engine under the threshold (and logs it).
MIN_PARALLEL_TASKS = 16

#: Environment override for the threshold (``--parallel-threshold`` sets
#: it, so the value also reaches worker processes); ``0`` forces the pool
#: for any task count.
PARALLEL_THRESHOLD_ENV = "REPRO_PARALLEL_THRESHOLD"


def default_min_parallel_tasks() -> int:
    """The serial-fallback threshold: env override or the baked default."""
    import os

    raw = os.environ.get(PARALLEL_THRESHOLD_ENV)
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return MIN_PARALLEL_TASKS


def should_parallelize(
    task_count: int, jobs: int, min_tasks: Optional[int] = None
) -> bool:
    """True when a ``task_count``-task batch is worth a worker pool."""
    if jobs <= 1:
        return False
    threshold = default_min_parallel_tasks() if min_tasks is None else min_tasks
    return task_count >= threshold


def log_serial_fallback(
    task_count: int,
    jobs: int,
    verbose: bool = False,
    min_tasks: Optional[int] = None,
) -> None:
    """Tell the user (on stderr, never polluting table output) that a
    small batch is running serially.  Silent unless ``verbose``: scripted
    consumers (``--json`` pipelines) get clean streams by default."""
    if not verbose:
        return
    threshold = default_min_parallel_tasks() if min_tasks is None else min_tasks
    print(
        f"[parallel] {task_count} task(s) <"
        f" {threshold}-task threshold:"
        f" running serially instead of on {jobs} workers",
        file=sys.stderr,
        flush=True,
    )


def _workload(name: str) -> Workload:
    workload = _WORKLOADS.get(name)
    if workload is None:
        workload = _WORKLOADS[name] = workload_map()[name]
    return workload


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means one per CPU."""
    import os

    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _profile_task(
    wname: str,
    scale: float,
    with_metrics: bool = False,
    with_tracer: bool = False,
) -> Tuple[
    str,
    TracedRun,
    ProfileBundle,
    ExecutionResult,
    Optional[MetricsSink],
    Optional[Tracer],
]:
    """Stage 1: record the training trace, replay it into profiles, and run
    the testing-input reference for one workload.

    The trace ships back alongside the bundle so the parent process can
    persist it in the experiment cache for later replays (depth sweeps,
    forward-profile ablations) without re-executing the interpreter.  When
    ``with_metrics`` (``with_tracer``) is set a fresh per-task sink
    (tracer) records the same stages the serial engine would, for the
    parent to merge in request order.
    """
    sink = MetricsSink() if with_metrics else None
    tracer = Tracer() if with_tracer else None
    workload = _workload(wname)
    program = workload.program()
    ctx = nullcontext() if sink is None else sink.context(workload=wname)
    tctx = nullcontext() if tracer is None else tracer.context(workload=wname)
    jit_before = None if sink is None else JIT_STATS.snapshot()
    with ctx, tctx:
        with tspan(tracer, "profile.record"):
            traced = timed(
                sink,
                "profile.record",
                record_trace,
                program,
                input_tape=workload.train_tape(scale),
            )
        if sink is not None:
            sink.add("profile.trace_blocks", traced.trace.num_blocks)
        with tspan(tracer, "profile.replay"):
            profiles = timed(
                sink, "profile.replay", profiles_from_trace, program, traced
            )
        with tspan(tracer, "reference"):
            reference = timed(
                sink,
                "reference",
                run_program,
                program,
                input_tape=workload.test_tape(scale),
            )
        if sink is not None:
            record_jit_metrics(sink, jit_before)
    return wname, traced, profiles, reference, sink, tracer


def _scheme_task(
    wname: str,
    scheme_name: str,
    scale: float,
    with_icache: bool,
    machine: MachineModel,
    icache_config,
    profiles: ProfileBundle,
    reference: ExecutionResult,
    validation=None,
    with_metrics: bool = False,
    with_tracer: bool = False,
    sched=None,
    traced: Optional[TracedRun] = None,
) -> Tuple[
    Tuple[str, str], SchemeOutcome, Optional[MetricsSink], Optional[Tracer]
]:
    """Stage 2: the full pipeline for one (workload, scheme) pair.

    ``traced`` ships the recorded training trace to schemes that replay it
    (k-iteration profiling); other schemes never pay its pickling cost —
    the caller only passes it where the scheme config asks for it.
    """
    sink = MetricsSink() if with_metrics else None
    tracer = Tracer() if with_tracer else None
    workload = _workload(wname)
    ctx = (
        nullcontext()
        if sink is None
        else sink.context(workload=wname, scheme=scheme_name)
    )
    tctx = (
        nullcontext()
        if tracer is None
        else tracer.context(workload=wname, scheme=scheme_name)
    )
    with ctx, tctx:
        outcome = run_scheme(
            workload.program(),
            scheme_name,
            workload.train_tape(scale),
            workload.test_tape(scale),
            machine=machine,
            with_icache=with_icache,
            icache_config=icache_config,
            profiles=profiles,
            traced=traced,
            reference=reference,
            validation=validation,
            metrics=sink,
            tracer=tracer,
            sched=sched,
        )
    return (wname, scheme_name), outcome, sink, tracer


def run_pairs_parallel(
    pending: Dict[str, List[str]],
    scale: float,
    with_icache: bool,
    machine: MachineModel,
    icache_config,
    jobs: int,
    profiles_by_workload: Dict[str, ProfileBundle],
    references_by_workload: Dict[str, ExecutionResult],
    verbose: bool = False,
    traces_by_workload: Optional[Dict[str, TracedRun]] = None,
    validation=None,
    metrics: Optional[MetricsSink] = None,
    tracer: Optional[Tracer] = None,
    sched=None,
) -> Dict[Tuple[str, str], SchemeOutcome]:
    """Compute ``pending`` (workload -> scheme names) outcomes in parallel.

    ``profiles_by_workload`` / ``references_by_workload`` seed the profile
    stage (e.g. from the cache) and are filled in for workloads profiled
    here, so callers can persist the new bundles; workloads traced here
    also land in ``traces_by_workload`` (when given) for the same reason.
    ``metrics`` (``tracer``) receives every worker's per-task sink
    (tracer), merged in request order (never completion order), so counter
    totals, event order, and decision/span streams match a serial run's.
    ``sched`` (a :class:`~repro.scheduling.SchedConfig`) ships to every
    scheme task unchanged.
    """
    with_metrics = metrics is not None
    with_tracer = tracer is not None
    computed: Dict[Tuple[str, str], SchemeOutcome] = {}
    profile_sinks: Dict[str, MetricsSink] = {}
    scheme_sinks: Dict[Tuple[str, str], MetricsSink] = {}
    profile_tracers: Dict[str, Tracer] = {}
    scheme_tracers: Dict[Tuple[str, str], Tracer] = {}
    # The pre-importing initializer moves the compiler import chain out of
    # each worker's first task (a no-op under fork, the real fix under
    # spawn/forkserver — see repro.service.pool).
    with ProcessPoolExecutor(max_workers=jobs, initializer=warm_worker) as pool:
        profile_futures = {}
        scheme_futures = []
        for wname, schemes in pending.items():
            if not schemes:
                continue
            if verbose:
                print(f"[suite] {wname} ...", flush=True)
            profiles = profiles_by_workload.get(wname)
            reference = references_by_workload.get(wname)
            if profiles is not None and reference is not None:
                traced = (
                    traces_by_workload.get(wname)
                    if traces_by_workload is not None
                    else None
                )
                for sname in schemes:
                    scheme_futures.append(
                        pool.submit(
                            _scheme_task,
                            wname,
                            sname,
                            scale,
                            with_icache,
                            machine,
                            icache_config,
                            profiles,
                            reference,
                            validation,
                            with_metrics,
                            with_tracer,
                            sched,
                            # Only trace-replaying schemes pay the trace's
                            # pickling cost.
                            traced
                            if scheme(sname).kiter is not None
                            else None,
                        )
                    )
            else:
                profile_futures[
                    pool.submit(
                        _profile_task, wname, scale, with_metrics, with_tracer
                    )
                ] = schemes

        # As profiles land, launch that workload's scheme tasks immediately
        # so the profile and scheme stages overlap across workloads.
        outstanding = set(profile_futures)
        while outstanding:
            done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
            for future in done:
                (
                    wname,
                    traced,
                    profiles,
                    reference,
                    sink,
                    task_tracer,
                ) = future.result()
                if traces_by_workload is not None:
                    traces_by_workload[wname] = traced
                profiles_by_workload[wname] = profiles
                references_by_workload[wname] = reference
                if sink is not None:
                    profile_sinks[wname] = sink
                if task_tracer is not None:
                    profile_tracers[wname] = task_tracer
                for sname in profile_futures[future]:
                    scheme_futures.append(
                        pool.submit(
                            _scheme_task,
                            wname,
                            sname,
                            scale,
                            with_icache,
                            machine,
                            icache_config,
                            profiles,
                            reference,
                            validation,
                            with_metrics,
                            with_tracer,
                            sched,
                            traced
                            if scheme(sname).kiter is not None
                            else None,
                        )
                    )

        for future in scheme_futures:
            pair, outcome, sink, task_tracer = future.result()
            computed[pair] = outcome
            if sink is not None:
                scheme_sinks[pair] = sink
            if task_tracer is not None:
                scheme_tracers[pair] = task_tracer

    if metrics is not None or tracer is not None:
        # Merge per-task sinks and tracers in the caller's request order so
        # the merged event/decision/span streams (and float stage totals)
        # are deterministic even though completion order is not.
        for wname, schemes in pending.items():
            if metrics is not None and wname in profile_sinks:
                metrics.merge(profile_sinks[wname])
            if tracer is not None and wname in profile_tracers:
                tracer.merge(profile_tracers[wname])
            for sname in schemes:
                if metrics is not None and (wname, sname) in scheme_sinks:
                    metrics.merge(scheme_sinks[(wname, sname)])
                if tracer is not None and (wname, sname) in scheme_tracers:
                    tracer.merge(scheme_tracers[(wname, sname)])

    # One bundle object per workload, as in the serial engine: replace each
    # unpickled copy with the canonical bundle shipped to (or received from)
    # the workers.
    for (wname, _), outcome in computed.items():
        bundle = profiles_by_workload.get(wname)
        if bundle is not None:
            outcome.profiles = bundle
            outcome.reference = references_by_workload.get(wname)
    return computed
