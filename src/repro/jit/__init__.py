"""Template JIT for the interpreter and the VLIW simulator.

Both execution engines spend their time in per-operation dispatch: the
interpreter walks flat decoded tuples, the simulator walks decoded bundle
rows, and every dynamic operation pays a kind test, several tuple indexes,
and a dict-keyed register file.  The JIT removes all of it by *generating
Python source* for each procedure — registers become locals, operation
bodies become straight-line statements, and control flow becomes real
``while``/``if`` statements reconstructed from the CFG — and ``exec``-ing
it once per program.

Layout:

- :mod:`repro.jit.structure` — generic reducible-CFG structurer shared by
  both code generators (RPO, dominators, natural loops, region tree).
- :mod:`repro.jit.interp_jit` — compiles each procedure of an IR
  :class:`~repro.ir.cfg.Program` into one generator function; a small
  driver threads an explicit stack of generators, so recursion never
  touches the Python stack.
- :mod:`repro.jit.vliw_jit` — compiles each procedure of a
  :class:`~repro.scheduling.compactor.CompiledProgram`, treating every
  superblock schedule as a node of a schedule-level CFG.

The JIT is on by default and must be bit-for-bit compatible with the
reference loops; ``--no-jit`` (or ``REPRO_JIT=0``) selects the reference
engines, and parity is enforced by the cross-engine matrix tests.
"""

from __future__ import annotations

import os
from typing import Optional

#: Environment toggle: ``REPRO_JIT=0`` disables the JIT process-wide
#: (inherited by parallel worker processes, which is exactly the point).
JIT_ENV_VAR = "REPRO_JIT"

_FALSY = {"0", "off", "false", "no"}

#: Session override installed by :func:`set_jit_enabled`; ``None`` defers
#: to the environment variable.
_override: Optional[bool] = None


def jit_enabled() -> bool:
    """Whether engines should JIT by default (env var unless overridden)."""
    if _override is not None:
        return _override
    return os.environ.get(JIT_ENV_VAR, "1").strip().lower() not in _FALSY


def set_jit_enabled(enabled: Optional[bool]) -> None:
    """Override the process-wide JIT default (``None`` restores the env)."""
    global _override
    _override = enabled


class JitStats:
    """Process-wide JIT counters, surfaced through the metrics sink.

    ``snapshot()``/``delta()`` let callers attribute compile time and
    code-cache traffic to individual pipeline stages.
    """

    __slots__ = (
        "compile_seconds",
        "procs_compiled",
        "code_cache_hits",
        "code_cache_misses",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.compile_seconds = 0.0
        self.procs_compiled = 0
        self.code_cache_hits = 0
        self.code_cache_misses = 0

    def snapshot(self) -> tuple:
        return (
            self.compile_seconds,
            self.procs_compiled,
            self.code_cache_hits,
            self.code_cache_misses,
        )

    def delta(self, before: tuple) -> dict:
        """Counter movement since ``before`` (a :meth:`snapshot`)."""
        now = self.snapshot()
        return {
            "compile_seconds": now[0] - before[0],
            "procs_compiled": now[1] - before[1],
            "code_cache_hits": now[2] - before[2],
            "code_cache_misses": now[3] - before[3],
        }


#: The process-wide counter instance both code generators update.
JIT_STATS = JitStats()


def record_jit_metrics(metrics, before: tuple) -> None:
    """Fold the JIT counter movement since ``before`` into ``metrics``."""
    if metrics is None:
        return
    moved = JIT_STATS.delta(before)
    if moved["procs_compiled"] or moved["compile_seconds"]:
        metrics.add("jit.compile_seconds", moved["compile_seconds"])
        metrics.add("jit.procs_compiled", moved["procs_compiled"])
    if moved["code_cache_hits"]:
        metrics.add("jit.code_cache_hits", moved["code_cache_hits"])
    if moved["code_cache_misses"]:
        metrics.add("jit.code_cache_misses", moved["code_cache_misses"])
