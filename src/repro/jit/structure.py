"""Reducible-CFG structurer shared by both template code generators.

The JIT emits real Python control flow instead of a dispatch loop: each
natural loop becomes a ``while True:`` whose body starts with the header's
code, and everything else becomes a guarded if-ladder inside its region.
This module computes the region tree that makes the emission valid:

- reverse postorder and dominators (iterative, Cooper–Harvey–Kennedy),
- back edges and natural loop bodies,
- a region tree whose units (blocks, or whole nested loops contracted to
  their header) are ordered by header RPO — an order every non-back edge
  respects, so forward transfers always move *down* the ladder,
- per-node context the emitters need to classify each CFG edge as
  ``continue`` (innermost back edge), ``break`` (exit toward an outer
  region, cascading one level at a time), or plain fallthrough.

Graphs the scheme cannot express — a retreating edge whose target does not
dominate its source, or overlapping (not properly nested) loop bodies —
return ``None``; callers fall back to a flat dispatch ladder that handles
any shape, just slower.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

Node = Hashable
#: ("b", node) for a plain block, ("l", header, sub_items) for a loop.
Item = Tuple


@dataclass
class Structure:
    """Region tree plus the per-node lookups the emitters use."""

    order: List[Node]
    items: List[Item]
    #: innermost enclosing loop header (headers map to themselves)
    loop_of: Dict[Node, Optional[Node]]
    #: enclosing loop headers, innermost first (headers include themselves)
    headers: Dict[Node, List[Node]]
    #: nesting depth of the region holding this node's unit
    region_depth: Dict[Node, int]
    #: headers reached by a break-cascade (outer back edges): their loops
    #: need a trailing ``if _L == idx: continue`` re-entry check
    needs_reentry: Set[Node] = field(default_factory=set)
    #: total number of CFG edges into each node
    pred_edges: Dict[Node, int] = field(default_factory=dict)


def _rpo(entry: Node, succs: Dict[Node, Sequence[Node]]) -> List[Node]:
    """Reverse postorder over the nodes reachable from ``entry``."""
    post: List[Node] = []
    visited: Set[Node] = {entry}
    # Iterative DFS with an explicit (node, next-successor-index) stack.
    stack: List[Tuple[Node, int]] = [(entry, 0)]
    while stack:
        node, i = stack[-1]
        out = succs.get(node, ())
        if i < len(out):
            stack[-1] = (node, i + 1)
            nxt = out[i]
            if nxt not in visited:
                visited.add(nxt)
                stack.append((nxt, 0))
        else:
            stack.pop()
            post.append(node)
    post.reverse()
    return post


def structure_cfg(
    entry: Node, succs: Dict[Node, Sequence[Node]]
) -> Optional[Structure]:
    """Build the region tree for a reducible CFG, or ``None`` if it isn't."""
    order = _rpo(entry, succs)
    index = {node: i for i, node in enumerate(order)}
    preds: Dict[Node, List[Node]] = {node: [] for node in order}
    pred_edges: Dict[Node, int] = {node: 0 for node in order}
    for node in order:
        for nxt in succs.get(node, ()):
            if nxt in index:
                preds[nxt].append(node)
                pred_edges[nxt] += 1

    # -- dominators (iterative intersection over RPO) ------------------------
    idom: Dict[Node, Optional[Node]] = {node: None for node in order}
    idom[entry] = entry

    def intersect(a: Node, b: Node) -> Node:
        while a is not b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in order[1:]:
            new: Optional[Node] = None
            for p in preds[node]:
                if idom[p] is None:
                    continue
                new = p if new is None else intersect(new, p)
            if new is not None and idom[node] is not new:
                idom[node] = new
                changed = True

    def dominates(a: Node, b: Node) -> bool:
        while True:
            if b is a:
                return True
            nxt = idom[b]
            if nxt is b or nxt is None:
                return False
            b = nxt

    # -- back edges and natural loop bodies ----------------------------------
    body_of: Dict[Node, Set[Node]] = {}
    for node in order:
        for nxt in succs.get(node, ()):
            if nxt not in index or index[nxt] > index[node]:
                continue
            # Retreating edge: must be a true back edge or we bail out.
            if not dominates(nxt, node):
                return None
            body = body_of.setdefault(nxt, {nxt})
            work = [node]
            while work:
                m = work.pop()
                if m in body:
                    continue
                body.add(m)
                work.extend(preds[m])

    # -- loop nesting ---------------------------------------------------------
    # Innermost loop per node; verify bodies are properly nested as we go.
    loops_by_size = sorted(
        body_of, key=lambda h: (len(body_of[h]), index[h])
    )
    loop_of: Dict[Node, Optional[Node]] = {node: None for node in order}
    for header in reversed(loops_by_size):  # largest body first
        for member in body_of[header]:
            loop_of[member] = header  # smaller bodies overwrite later
    for header in loops_by_size:
        loop_of[header] = header

    #: header -> innermost strictly-enclosing header (or None)
    parent_of: Dict[Node, Optional[Node]] = {}
    for header in loops_by_size:
        enclosing = [
            h
            for h in loops_by_size
            if h is not header and header in body_of[h]
        ]
        enclosing.sort(key=lambda h: len(body_of[h]))
        # Proper nesting: each enclosing body must contain the previous one.
        prev = body_of[header]
        for h in enclosing:
            if not prev <= body_of[h]:
                return None
            prev = body_of[h]
        parent_of[header] = enclosing[0] if enclosing else None

    headers: Dict[Node, List[Node]] = {}
    for node in order:
        chain: List[Node] = []
        cur = loop_of[node]
        while cur is not None:
            chain.append(cur)
            cur = parent_of[cur]
        headers[node] = chain

    region_depth = {
        node: len(headers[node]) - (1 if node in body_of else 0)
        for node in order
    }

    # -- region tree ----------------------------------------------------------
    def build(region_header: Optional[Node]) -> List[Item]:
        items: List[Item] = []
        for node in order:
            if node in body_of:
                unit_parent = parent_of[node]
            else:
                unit_parent = loop_of[node]
            if unit_parent is not region_header:
                continue
            if node in body_of:
                items.append(("l", node, build(node)))
            else:
                items.append(("b", node))
        return items

    # ``build`` scans the full order per region; fine for the small CFGs
    # the JIT compiles (procedures and schedule graphs, not whole programs).
    items = build(None)

    # -- re-entry checks: outer back edges arriving via break cascades --------
    needs_reentry: Set[Node] = set()
    for node in order:
        chain = headers[node]
        for nxt in succs.get(node, ()):
            if nxt in chain and nxt is not chain[0]:
                needs_reentry.add(nxt)

    return Structure(
        order=order,
        items=items,
        loop_of=loop_of,
        headers=headers,
        region_depth=region_depth,
        needs_reentry=needs_reentry,
        pred_edges=pred_edges,
    )
