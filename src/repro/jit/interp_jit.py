"""Template JIT for the reference interpreter.

Each procedure compiles to one Python *generator* function: registers are
locals (``r3 = r1 + r2``), basic blocks are straight-line statement runs,
and the CFG becomes structured ``while``/``if`` code via
:mod:`repro.jit.structure` — natural loops turn into ``while True:`` with
the header emitted unconditionally at the top, back edges into bare
``continue``, and single-predecessor blocks are inlined into their
predecessor's branch arm so hot paths run with no dispatch at all.

Procedure calls suspend the generator::

    rD, _ic, _br, _bl, _cl = yield (_p2, (r4, r5), _ic, _br, _bl, _cl)

and a small driver threads an explicit stack of generators, so recursion
depth is bounded by memory, not the Python stack, exactly like the
reference loop's frame list.  Returns yield a ``(None, value, ...)``
marker (cheaper than ``StopIteration`` unwinding on every call).

Bookkeeping parity with :meth:`Interpreter._run_fast` is bit-for-bit for
every run that completes: instruction/branch/block/call counters are
hoisted to one constant increment per block, ``per_procedure`` uses a
base-shift (``_t0``) that subtracts callee instructions at each call
site, and the traced variant interns labels in first-execution order so
the resulting :class:`~repro.interp.trace.ExecutionTrace` compares equal
to the reference recorder's.  The step limit is enforced at loop headers,
call sites, and returns — every cycle and every termination passes one —
so a run fails with ``StepLimitExceeded`` iff the reference fails (the
raise can land a few instructions later inside a block, which is
unobservable outside the failing run itself).
"""

from __future__ import annotations

import time
from array import array
from typing import Dict, List, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

from ..interp.interpreter import (
    ExecutionResult,
    InterpreterError,
    StepLimitExceeded,
)
from ..interp.ops import MachineFault, _div, _mod
from ..interp.trace import TRACE_TYPECODE, ExecutionTrace
from ..ir.cfg import BasicBlock, Procedure, Program
from ..ir.instructions import Instruction, Opcode
from . import JIT_STATS
from .structure import Structure, structure_cfg

#: Deepest if/else nesting the inliner may create (CPython's parser caps
#: statement nesting around 100; stay far below it).
_MAX_INLINE_DEPTH = 12

_CMP_OPS = {
    Opcode.CMPEQ: "==",
    Opcode.CMPNE: "!=",
    Opcode.CMPLT: "<",
    Opcode.CMPLE: "<=",
    Opcode.CMPGT: ">",
    Opcode.CMPGE: ">=",
}

_ARITH_OPS = {
    Opcode.ADD: "+",
    Opcode.SUB: "-",
    Opcode.MUL: "*",
    Opcode.AND: "&",
    Opcode.OR: "|",
    Opcode.XOR: "^",
}

_TERMINATORS = (Opcode.BR, Opcode.JMP, Opcode.MBR, Opcode.RET)


def _trim_block(block: BasicBlock) -> List[Instruction]:
    """Instructions that can actually execute: everything after the first
    control transfer is dead (the reference loop never reaches it)."""
    out: List[Instruction] = []
    for instr in block.instructions:
        out.append(instr)
        if instr.opcode in _TERMINATORS:
            break
    return out


def _successor_labels(instrs: List[Instruction]) -> List[str]:
    """Dynamic successor labels (with multiplicity) of a trimmed block."""
    if not instrs:
        return []
    last = instrs[-1]
    if last.opcode is Opcode.BR:
        return [last.targets[0], last.targets[1]]
    if last.opcode is Opcode.JMP:
        return [last.targets[0]]
    if last.opcode is Opcode.MBR:
        return list(last.targets)
    return []


class _ProcEmitter:
    """Generates the source of one procedure's JIT function."""

    def __init__(self, program: Program, proc: Procedure, traced: bool) -> None:
        self.program = program
        self.proc = proc
        self.traced = traced
        self.lines: List[str] = []
        self.ns: Dict[str, object] = {
            "_div": _div,
            "_mod": _mod,
            "InterpreterError": InterpreterError,
            "StepLimitExceeded": StepLimitExceeded,
            "MachineFault": MachineFault,
        }
        self.blocks = list(proc.blocks())
        self.block_index = {b.label: i for i, b in enumerate(self.blocks)}
        self.by_label = {b.label: b for b in self.blocks}
        self.trimmed = {b.label: _trim_block(b) for b in self.blocks}
        self.succs = {
            label: [
                t for t in _successor_labels(instrs) if t in self.by_label
            ]
            for label, instrs in self.trimmed.items()
        }
        self.structure: Optional[Structure] = structure_cfg(
            proc.entry_label, self.succs
        )
        #: dispatch index per unit label (assigned in emission order)
        self.dispatch: Dict[str, int] = {}
        self.inlined: set = set()
        self._callees: Dict[str, str] = {}

    # -- small helpers -------------------------------------------------------

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def callee_const(self, name: str) -> str:
        const = self._callees.get(name)
        if const is None:
            const = f"_p{len(self._callees)}"
            self._callees[name] = const
            self.ns[const] = self.program.procedure(name)
        return const

    def dispatch_index(self, label: str) -> int:
        idx = self.dispatch.get(label)
        if idx is None:
            idx = self.dispatch[label] = len(self.dispatch)
        return idx

    def limit_check(self, indent: int) -> None:
        self.emit(indent, "if _ic > _limit:")
        self.emit(
            indent + 1,
            "raise StepLimitExceeded("
            "'exceeded %d dynamic instructions' % _limit)",
        )

    # -- per-instruction bodies ----------------------------------------------

    def emit_instr(self, indent: int, instr: Instruction) -> None:
        op = instr.opcode
        arith = _ARITH_OPS.get(op)
        if arith is not None:
            a, b = instr.srcs
            self.emit(indent, f"r{instr.dest} = r{a} {arith} r{b}")
            return
        cmp = _CMP_OPS.get(op)
        if cmp is not None:
            a, b = instr.srcs
            self.emit(
                indent, f"r{instr.dest} = 1 if r{a} {cmp} r{b} else 0"
            )
            return
        if op is Opcode.LI:
            self.emit(indent, f"r{instr.dest} = {instr.imm!r}")
        elif op is Opcode.MOV:
            self.emit(indent, f"r{instr.dest} = r{instr.srcs[0]}")
        elif op in (Opcode.LOAD, Opcode.LOAD_S):
            self.emit(indent, f"r{instr.dest} = _mg(r{instr.srcs[0]}, 0)")
        elif op is Opcode.STORE:
            self.emit(
                indent, f"_mem[r{instr.srcs[0]}] = r{instr.srcs[1]}"
            )
        elif op is Opcode.SPILL_LD:
            self.emit(indent, f"r{instr.dest} = _spg({instr.imm!r}, 0)")
        elif op is Opcode.SPILL_ST:
            self.emit(indent, f"_sp[{instr.imm!r}] = r{instr.srcs[0]}")
        elif op is Opcode.READ:
            self.emit(indent, "if _tp < _tlen:")
            self.emit(indent + 1, f"r{instr.dest} = _tape[_tp]")
            self.emit(indent + 1, "_tp += 1")
            self.emit(indent, "else:")
            self.emit(indent + 1, f"r{instr.dest} = -1")
        elif op is Opcode.PRINT:
            self.emit(indent, f"_oa(r{instr.srcs[0]})")
        elif op is Opcode.SHL:
            a, b = instr.srcs
            self.emit(indent, f"r{instr.dest} = r{a} << (r{b} & 63)")
        elif op is Opcode.SHR:
            a, b = instr.srcs
            self.emit(indent, f"r{instr.dest} = r{a} >> (r{b} & 63)")
        elif op is Opcode.DIV:
            a, b = instr.srcs
            self.emit(indent, f"r{instr.dest} = _div(r{a}, r{b})")
        elif op is Opcode.MOD:
            a, b = instr.srcs
            self.emit(indent, f"r{instr.dest} = _mod(r{a}, r{b})")
        elif op is Opcode.NEG:
            self.emit(indent, f"r{instr.dest} = -r{instr.srcs[0]}")
        elif op is Opcode.NOT:
            self.emit(
                indent,
                f"r{instr.dest} = 1 if r{instr.srcs[0]} == 0 else 0",
            )
        elif op is Opcode.NOP:
            pass
        elif op is Opcode.CALL:
            dest = f"r{instr.dest}" if instr.dest is not None else "_rv"
            argv = ", ".join(f"r{s}" for s in instr.srcs)
            argv = f"({argv},)" if instr.srcs else "()"
            const = self.callee_const(instr.callee)
            self.limit_check(indent)
            self.emit(indent, "_cl += 1")
            self.emit(indent, "_tpc[0] = _tp")
            self.emit(indent, "_pre = _ic")
            self.emit(
                indent,
                f"{dest}, _ic, _br, _bl, _cl = yield"
                f" ({const}, {argv}, _ic, _br, _bl, _cl)",
            )
            self.emit(indent, "_t0 += _ic - _pre")
            self.emit(indent, "_tp = _tpc[0]")
        else:  # pragma: no cover - exhaustive over non-terminator opcodes
            raise InterpreterError(f"jit cannot compile {op}")

    # -- transfers -----------------------------------------------------------

    def emit_transfer(
        self, indent: int, src: str, target: str, flat: bool, depth: int
    ) -> None:
        """Emit the control transfer for edge ``src -> target``.

        ``depth`` counts if/else nesting added by inlining at this site.
        """
        if not flat:
            st = self.structure
            if (
                target not in self.inlined
                and self.inlinable(src, target, depth)
            ):
                self.inlined.add(target)
                self.emit_block_code(indent, target, flat, depth)
                return
            chain = st.headers[src]
            if chain and target == chain[0]:
                self.emit(indent, "continue")
                return
            idx = self.dispatch_index(target)
            if target in chain:
                self.emit(indent, f"_L = {idx}")
                self.emit(indent, "break")
            elif st.region_depth[target] == len(chain):
                self.emit(indent, f"_L = {idx}")
            else:
                self.emit(indent, f"_L = {idx}")
                self.emit(indent, "break")
        else:
            idx = self.dispatch_index(target)
            self.emit(indent, f"_L = {idx}")
            self.emit(indent, "continue")

    def inlinable(self, src: str, target: str, depth: int) -> bool:
        """Whether ``target`` can be inlined at its sole transfer site in
        ``src``: one incoming edge, not a loop header, and the same
        innermost loop (so ``continue``/``break`` keep their meaning)."""
        st = self.structure
        return (
            depth < _MAX_INLINE_DEPTH
            and target != self.proc.entry_label
            and target in st.region_depth
            and st.pred_edges.get(target) == 1
            and st.loop_of[target] is not target
            and st.loop_of[target] is st.loop_of[src]
        )

    # -- block bodies --------------------------------------------------------

    def emit_block_code(
        self, indent: int, label: str, flat: bool, depth: int = 0
    ) -> None:
        """Counter prologue, straight-line body, and terminator transfer."""
        instrs = self.trimmed[label]
        bidx = self.block_index[label]
        self.emit(indent, f"_ic += {len(instrs)}")
        self.emit(indent, "_bl += 1")
        if self.traced:
            self.emit(indent, f"_l = _lc[{bidx}]")
            self.emit(indent, "if _l < 0:")
            self.emit(indent + 1, f"_l = _lc[{bidx}] = _itn({label!r})")
            self.emit(indent, "_tba(_l)")
        term = instrs[-1] if instrs else None
        body = instrs[:-1] if (
            term is not None and term.opcode in _TERMINATORS
        ) else instrs
        for instr in body:
            self.emit_instr(indent, instr)
        if term is None or term.opcode not in _TERMINATORS:
            msg = (
                f"fell off the end of block {label}"
                f" in {self.proc.name}"
            )
            self.emit(indent, f"raise InterpreterError({msg!r})")
            return
        op = term.opcode
        if op is Opcode.RET:
            value = f"r{term.srcs[0]}" if term.srcs else "0"
            self.limit_check(indent)
            name = self.proc.name
            self.emit(
                indent,
                f"_pp[{name!r}] = _pp.get({name!r}, 0) + _ic - _t0",
            )
            self.emit(indent, "_tpc[0] = _tp")
            self.emit(
                indent,
                f"yield (None, {value}, _ic, _br, _bl, _cl)",
            )
            self.emit(indent, "return")
        elif op is Opcode.JMP:
            self.emit_transfer(
                indent, label, term.targets[0], flat, depth
            )
        elif op is Opcode.BR:
            self.emit(indent, "_br += 1")
            t1, t2 = term.targets[0], term.targets[1]
            cond = f"r{term.srcs[0]}"
            if not flat and self.plain_fallthrough(label, t1, t2, depth):
                i1 = self.dispatch_index(t1)
                i2 = self.dispatch_index(t2)
                self.emit(indent, f"_L = {i1} if {cond} else {i2}")
            else:
                self.emit(indent, f"if {cond}:")
                self.emit_transfer(indent + 1, label, t1, flat, depth + 1)
                self.emit(indent, "else:")
                self.emit_transfer(indent + 1, label, t2, flat, depth + 1)
        else:  # MBR
            self.emit(indent, "_br += 1")
            targets = list(term.targets)
            sel = f"r{term.srcs[0]}"
            if len(targets) == 1:
                self.emit_transfer(indent, label, targets[0], flat, depth)
            else:
                self.emit(indent, f"_s = {sel}")
                for i, t in enumerate(targets[:-1]):
                    kw = "if" if i == 0 else "elif"
                    self.emit(indent, f"{kw} _s == {i}:")
                    self.emit_transfer(indent + 1, label, t, flat, depth + 1)
                self.emit(indent, "else:")
                self.emit_transfer(
                    indent + 1, label, targets[-1], flat, depth + 1
                )

    def plain_fallthrough(
        self, src: str, t1: str, t2: str, depth: int
    ) -> bool:
        """Both BR arms are plain ladder fallthroughs (collapsible to one
        conditional expression)."""
        st = self.structure
        for t in (t1, t2):
            if t not in self.inlined and self.inlinable(src, t, depth):
                return False
            chain = st.headers[src]
            if t in chain or st.region_depth.get(t) != len(chain):
                return False
        return True

    # -- regions -------------------------------------------------------------

    def emit_region_items(self, indent: int, items) -> None:
        for item in items:
            if item[0] == "b":
                label = item[1]
                if label in self.inlined:
                    continue
                idx = self.dispatch_index(label)
                self.emit(indent, f"if _L == {idx}:")
                self.emit_block_code(indent + 1, label, flat=False)
            else:
                header, sub = item[1], item[2]
                idx = self.dispatch_index(header)
                self.emit(indent, f"if _L == {idx}:")
                self.emit(indent + 1, "while True:")
                self.limit_check(indent + 2)
                self.emit_block_code(indent + 2, header, flat=False)
                self.emit_region_items(indent + 2, sub)
                if header in self.structure.needs_reentry:
                    self.emit(indent + 2, f"if _L == {idx}:")
                    self.emit(indent + 3, "continue")
                self.emit(indent + 2, "break")

    # -- whole function ------------------------------------------------------

    def generate(self) -> str:
        proc = self.proc
        fname = "_jit_fn"
        if self.traced:
            self.emit(
                0,
                f"def {fname}(_argv, _rt, _tb, _lc, _itn,"
                " _ic, _br, _bl, _cl):",
            )
        else:
            self.emit(0, f"def {fname}(_argv, _rt, _ic, _br, _bl, _cl):")
        self.emit(1, "_tape, _tpc, _mem, _out, _pp, _limit = _rt")
        ops_used = {
            i.opcode
            for instrs in self.trimmed.values()
            for i in instrs
        }
        if ops_used & {Opcode.LOAD, Opcode.LOAD_S}:
            self.emit(1, "_mg = _mem.get")
        if Opcode.PRINT in ops_used:
            self.emit(1, "_oa = _out.append")
        self.emit(1, "_tlen = len(_tape)")
        self.emit(1, "_tp = _tpc[0]")
        self.emit(1, "_t0 = _ic")
        if Opcode.SPILL_LD in ops_used or Opcode.SPILL_ST in ops_used:
            self.emit(1, "_sp = {}")
            if Opcode.SPILL_LD in ops_used:
                self.emit(1, "_spg = _sp.get")
        if self.traced:
            self.emit(1, "_tba = _tb.append")
        params = proc.params
        if len(params) == 1:
            self.emit(1, f"r{params[0]}, = _argv")
        elif params:
            unpack = ", ".join(f"r{p}" for p in params)
            self.emit(1, f"{unpack} = _argv")
        self.emit(1, "if 0:")
        self.emit(2, "yield")  # generator even without calls/returns
        entry = proc.entry_label
        if self.structure is not None:
            self.emit(1, f"_L = {self.dispatch_index(entry)}")
            self.emit_region_items(1, self.structure.items)
            # All transfers resolve within the tree; reaching the end of
            # the top-level ladder is impossible for well-formed emission.
            self.emit(1, "raise InterpreterError('jit dispatch fell out')")
        else:
            # Flat fallback ladder for irreducible graphs.
            reachable = [
                b.label
                for b in self.blocks
            ]
            self.emit(1, f"_L = {self.dispatch_index(entry)}")
            self.emit(1, "while True:")
            self.limit_check(2)
            for i, label in enumerate(reachable):
                idx = self.dispatch_index(label)
                kw = "if" if i == 0 else "elif"
                self.emit(2, f"{kw} _L == {idx}:")
                self.emit_block_code(3, label, flat=True)
            self.emit(2, "else:")
            self.emit(3, "raise InterpreterError('jit dispatch fell out')")
        return "\n".join(self.lines) + "\n"


def compile_procedure(program: Program, proc: Procedure, traced: bool):
    """Compile one procedure; returns ``(function, source)``."""
    emitter = _ProcEmitter(program, proc, traced)
    source = emitter.generate()
    variant = "traced" if traced else "plain"
    code = compile(
        source, f"<jit:{variant}:{proc.name}>", "exec"
    )
    ns = emitter.ns
    exec(code, ns)  # noqa: S102 - the whole point of a template JIT
    return ns["_jit_fn"], source


_CODE_CACHE: "WeakKeyDictionary[Program, Dict]" = WeakKeyDictionary()


def compiled_functions(program: Program, traced: bool) -> Dict[str, object]:
    """Per-procedure JIT functions for ``program`` (cached per variant)."""
    entry = _CODE_CACHE.get(program)
    if entry is None:
        entry = _CODE_CACHE[program] = {"sources": {}}
    variant = "traced" if traced else "plain"
    fns = entry.get(variant)
    if fns is not None:
        JIT_STATS.code_cache_hits += 1
        return fns
    JIT_STATS.code_cache_misses += 1
    t0 = time.perf_counter()
    fns = {}
    for proc in program.procedures():
        fn, source = compile_procedure(program, proc, traced)
        fns[proc.name] = fn
        entry["sources"][(variant, proc.name)] = source
        JIT_STATS.procs_compiled += 1
    entry[variant] = fns
    JIT_STATS.compile_seconds += time.perf_counter() - t0
    return fns


def jit_sources(program: Program) -> Dict[Tuple[str, str], str]:
    """Generated sources compiled so far for ``program`` (debug dumps)."""
    entry = _CODE_CACHE.get(program)
    return dict(entry["sources"]) if entry else {}


def _check_args(proc: Procedure, argv: Sequence[int]) -> None:
    if len(argv) != len(proc.params):
        raise InterpreterError(
            f"{proc.name} expects {len(proc.params)} args,"
            f" got {len(argv)}"
        )


def run_jit(
    program: Program,
    input_tape: Sequence[int] = (),
    args: Sequence[int] = (),
    step_limit: int = 50_000_000,
) -> ExecutionResult:
    """JIT-execute ``program``; bit-identical to ``Interpreter.run``."""
    fns = compiled_functions(program, traced=False)
    tape = list(input_tape)
    tpc = [0]
    memory: Dict[int, int] = {}
    output: List[int] = []
    pp: Dict[str, int] = {}
    rt = (tape, tpc, memory, output, pp, step_limit)

    entry = program.procedure(program.entry)
    argv = tuple(args)
    _check_args(entry, argv)
    stack: List[Tuple[object, str]] = [
        (fns[entry.name](argv, rt, 0, 0, 0, 0), entry.name)
    ]
    send = None
    return_value = 0
    ic = br = bl = cl = 0
    while stack:
        req = stack[-1][0].send(send)
        if req[0] is None:
            stack.pop()
            if stack:
                send = req[1:]
            else:
                return_value = req[1]
                ic, br, bl, cl = req[2], req[3], req[4], req[5]
        else:
            callee, cargv = req[0], req[1]
            # The caller's bookkeeping round ends here: mirror the
            # reference loop's per_procedure insertion order.
            caller = stack[-1][1]
            if caller not in pp:
                pp[caller] = 0
            _check_args(callee, cargv)
            stack.append(
                (
                    fns[callee.name](
                        cargv, rt, req[2], req[3], req[4], req[5]
                    ),
                    callee.name,
                )
            )
            send = None
    return ExecutionResult(
        output=output,
        return_value=return_value,
        instructions=ic,
        branches=br,
        blocks=bl,
        calls=cl,
        per_procedure=pp,
    )


def run_traced_jit(
    program: Program,
    input_tape: Sequence[int] = (),
    args: Sequence[int] = (),
    step_limit: int = 50_000_000,
) -> Tuple[ExecutionResult, ExecutionTrace]:
    """JIT-execute while recording the compact block trace."""
    fns = compiled_functions(program, traced=True)
    tape = list(input_tape)
    tpc = [0]
    memory: Dict[int, int] = {}
    output: List[int] = []
    pp: Dict[str, int] = {}
    rt = (tape, tpc, memory, output, pp, step_limit)

    nblocks = {
        proc.name: len(list(proc.blocks()))
        for proc in program.procedures()
    }
    proc_ids: Dict[str, int] = {}
    label_maps: List[Dict[str, int]] = []
    label_lists: List[List[str]] = []
    lcaches: List[List[int]] = []
    interns: List[object] = []
    frames_rec: List[Tuple[int, array]] = []

    def make_intern(tmap: Dict[str, int], tlist: List[str]):
        def intern(label: str) -> int:
            lid = tmap.get(label)
            if lid is None:
                lid = tmap[label] = len(tlist)
                tlist.append(label)
            return lid

        return intern

    def open_state(proc: Procedure):
        pidx = proc_ids.get(proc.name)
        if pidx is None:
            pidx = proc_ids[proc.name] = len(label_lists)
            label_maps.append({})
            label_lists.append([])
            lcaches.append([-1] * nblocks[proc.name])
            interns.append(make_intern(label_maps[pidx], label_lists[pidx]))
        tbuf = array(TRACE_TYPECODE)
        frames_rec.append((pidx, tbuf))
        return tbuf, lcaches[pidx], interns[pidx]

    entry = program.procedure(program.entry)
    argv = tuple(args)
    _check_args(entry, argv)
    tbuf, lc, itn = open_state(entry)
    stack: List[Tuple[object, str]] = [
        (fns[entry.name](argv, rt, tbuf, lc, itn, 0, 0, 0, 0), entry.name)
    ]
    send = None
    return_value = 0
    ic = br = bl = cl = 0
    while stack:
        req = stack[-1][0].send(send)
        if req[0] is None:
            stack.pop()
            if stack:
                send = req[1:]
            else:
                return_value = req[1]
                ic, br, bl, cl = req[2], req[3], req[4], req[5]
        else:
            callee, cargv = req[0], req[1]
            caller = stack[-1][1]
            if caller not in pp:
                pp[caller] = 0
            _check_args(callee, cargv)
            tbuf, lc, itn = open_state(callee)
            stack.append(
                (
                    fns[callee.name](
                        cargv, rt, tbuf, lc, itn,
                        req[2], req[3], req[4], req[5],
                    ),
                    callee.name,
                )
            )
            send = None
    result = ExecutionResult(
        output=output,
        return_value=return_value,
        instructions=ic,
        branches=br,
        blocks=bl,
        calls=cl,
        per_procedure=pp,
    )
    proc_names = [""] * len(proc_ids)
    for name, pidx in proc_ids.items():
        proc_names[pidx] = name
    trace = ExecutionTrace(
        proc_names=proc_names,
        labels=label_lists,
        frames=frames_rec,
    )
    return result, trace
