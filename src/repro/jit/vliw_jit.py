"""Template JIT for the VLIW simulator.

Each compiled procedure becomes one Python *generator* function over its
schedule-level CFG: the nodes are superblock schedules, an off-trace exit
is a dispatch transfer to the target schedule, and each schedule's bundle
sequence is emitted as straight-line statements.  Registers are locals
(``r7 = r3 + r5``), VLIW read-before-write semantics fall out of a single
tuple assignment per bundle (every right-hand side evaluates before any
register is written), and cycle/operation/branch counters collapse to one
constant increment per control bundle.

Procedure calls suspend the generator exactly like the interpreter JIT::

    r4, _cy, _op, _ws, _br, _ca, _se, _bx, _sz = yield (_p0, (r2,), ...)

and the driver threads an explicit stack of generators.  Statistics parity
with :meth:`VLIWSimulator.run` is bit-for-bit for every run that
completes: wasted-operation counts and Figure 7 bookkeeping are baked in
as per-exit constants, and speculative ``DIV``/``MOD`` run through
fault-suppressing helpers that produce 0, like the reference's
non-excepting variants.  The cycle limit is enforced at every schedule
entry, call, and return — so a run fails with :class:`CycleLimitExceeded`
iff the reference fails (the raise can land a few bundles later inside a
schedule, which is unobservable outside the failing run itself).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..interp.ops import MachineFault, _div, _mod
from ..ir.instructions import Instruction, Opcode
from ..scheduling.compactor import CompiledProcedure, CompiledProgram
from ..scheduling.list_scheduler import SuperblockSchedule
from ..simulate.vliw_sim import (
    CycleLimitExceeded,
    SimulationError,
    SimulationResult,
    _wasted_ops,
)
from . import JIT_STATS

_CONTROL = (Opcode.BR, Opcode.MBR, Opcode.JMP, Opcode.CALL, Opcode.RET)

_ARITH = {
    Opcode.ADD: "+",
    Opcode.SUB: "-",
    Opcode.MUL: "*",
    Opcode.AND: "&",
    Opcode.OR: "|",
    Opcode.XOR: "^",
}

_CMP = {
    Opcode.CMPEQ: "==",
    Opcode.CMPNE: "!=",
    Opcode.CMPLT: "<",
    Opcode.CMPLE: "<=",
    Opcode.CMPGT: ">",
    Opcode.CMPGE: ">=",
}


def _sdiv(a: int, b: int) -> int:
    """Speculative divide: faults produce 0 instead of trapping."""
    try:
        return _div(a, b)
    except MachineFault:
        return 0


def _smod(a: int, b: int) -> int:
    """Speculative modulo: faults produce 0 instead of trapping."""
    try:
        return _mod(a, b)
    except MachineFault:
        return 0


class _BundleCtx:
    """Read-phase staging for one bundle's code."""

    def __init__(self, dests: set) -> None:
        self.dests = dests
        self.pre: List[str] = []
        self.writes: List[Tuple[int, str]] = []
        self.mem: List[Tuple[str, str]] = []
        self.spill: List[Tuple[object, str]] = []
        self.prints: List[str] = []
        self.captured: Dict[int, str] = {}
        self.ntmp = 0

    def tmp(self) -> str:
        name = f"_v{self.ntmp}"
        self.ntmp += 1
        return name

    def read(self, reg: int) -> str:
        """Expression for a *post-write* use of a read-phase register value.

        When the register is also written by this bundle, its pre-write
        value is captured into a temp during the read phase; otherwise the
        live local still holds the read-phase value afterwards.
        """
        if reg not in self.dests:
            return f"r{reg}"
        name = self.captured.get(reg)
        if name is None:
            name = self.captured[reg] = self.tmp()
            self.pre.append(f"{name} = r{reg}")
        return name


class _VliwEmitter:
    """Generates the source of one compiled procedure's JIT function."""

    def __init__(self, compiled: CompiledProgram, cproc: CompiledProcedure):
        self.compiled = compiled
        self.cproc = cproc
        self.lines: List[str] = []
        self.ns: Dict[str, object] = {
            "_div": _div,
            "_mod": _mod,
            "_sdiv": _sdiv,
            "_smod": _smod,
            "SimulationError": SimulationError,
            "CycleLimitExceeded": CycleLimitExceeded,
        }
        self.heads = list(cproc.schedules)
        self.head_index = {h: i for i, h in enumerate(self.heads)}
        self._callees: Dict[str, str] = {}

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def callee_const(self, name: str) -> str:
        const = self._callees.get(name)
        if const is None:
            const = f"_p{len(self._callees)}"
            self._callees[name] = const
            self.ns[const] = self.compiled.procedures[name]
        return const

    def limit_check(self, indent: int) -> None:
        self.emit(indent, "if _cy > _limit:")
        self.emit(
            indent + 1,
            "raise CycleLimitExceeded('exceeded %d cycles' % _limit)",
        )

    # -- per-op read-phase staging -------------------------------------------

    def stage_op(self, ctx: _BundleCtx, op) -> None:
        instr = op.instr
        opcode = instr.opcode
        arith = _ARITH.get(opcode)
        if arith is not None:
            a, b = instr.srcs
            ctx.writes.append((instr.dest, f"r{a} {arith} r{b}"))
            return
        cmp = _CMP.get(opcode)
        if cmp is not None:
            a, b = instr.srcs
            ctx.writes.append((instr.dest, f"1 if r{a} {cmp} r{b} else 0"))
            return
        if opcode is Opcode.SHL:
            a, b = instr.srcs
            ctx.writes.append((instr.dest, f"r{a} << (r{b} & 63)"))
        elif opcode is Opcode.SHR:
            a, b = instr.srcs
            ctx.writes.append((instr.dest, f"r{a} >> (r{b} & 63)"))
        elif opcode in (Opcode.DIV, Opcode.MOD):
            # Faults must fire in op order relative to tape reads, so
            # these evaluate as read-phase statements, not tuple items.
            fn = "_div" if opcode is Opcode.DIV else "_mod"
            if op.speculative:
                fn = "_s" + fn[1:]
            a, b = instr.srcs
            name = ctx.tmp()
            ctx.pre.append(f"{name} = {fn}(r{a}, r{b})")
            ctx.writes.append((instr.dest, name))
        elif opcode is Opcode.LI:
            ctx.writes.append((instr.dest, repr(instr.imm)))
        elif opcode is Opcode.MOV:
            ctx.writes.append((instr.dest, f"r{instr.srcs[0]}"))
        elif opcode in (Opcode.LOAD, Opcode.LOAD_S):
            ctx.writes.append((instr.dest, f"_mg(r{instr.srcs[0]}, 0)"))
        elif opcode is Opcode.STORE:
            ctx.mem.append(
                (ctx.read(instr.srcs[0]), ctx.read(instr.srcs[1]))
            )
        elif opcode is Opcode.SPILL_LD:
            ctx.writes.append((instr.dest, f"_spg({instr.imm!r}, 0)"))
        elif opcode is Opcode.SPILL_ST:
            ctx.spill.append((instr.imm, ctx.read(instr.srcs[0])))
        elif opcode is Opcode.READ:
            name = ctx.tmp()
            ctx.pre.append("if _tp < _tlen:")
            ctx.pre.append(f"    {name} = _tape[_tp]")
            ctx.pre.append("    _tp += 1")
            ctx.pre.append("else:")
            ctx.pre.append(f"    {name} = -1")
            ctx.writes.append((instr.dest, name))
        elif opcode is Opcode.PRINT:
            ctx.prints.append(ctx.read(instr.srcs[0]))
        elif opcode is Opcode.NEG:
            ctx.writes.append((instr.dest, f"-r{instr.srcs[0]}"))
        elif opcode is Opcode.NOT:
            ctx.writes.append(
                (instr.dest, f"1 if r{instr.srcs[0]} == 0 else 0")
            )
        elif opcode is Opcode.NOP or opcode in _CONTROL:
            pass
        else:  # pragma: no cover - exhaustive over Opcode
            raise SimulationError(f"cannot simulate {opcode}")

    # -- exits ----------------------------------------------------------------

    def emit_exit(
        self,
        indent: int,
        schedule: SuperblockSchedule,
        op,
        pos1: int,
        target: str,
    ) -> None:
        """Bookkeeping and transfer for leaving the superblock at ``op``."""
        self.emit(indent, f"_bx += {pos1}")
        wasted = _wasted_ops(schedule, op)
        if wasted:
            self.emit(indent, f"_ws += {wasted}")
        idx = self.head_index.get(target)
        if idx is None:
            # The reference transfer is cproc.schedules[target]: mirror
            # its KeyError for targets with no schedule.
            self.emit(indent, f"raise KeyError({target!r})")
        else:
            self.emit(indent, f"_L = {idx}")
            self.emit(indent, "continue")

    def emit_ret(
        self,
        indent: int,
        schedule: SuperblockSchedule,
        op,
        pos1: int,
        value: str,
    ) -> None:
        self.emit(indent, f"_bx += {pos1}")
        wasted = _wasted_ops(schedule, op)
        if wasted:
            self.emit(indent, f"_ws += {wasted}")
        self.limit_check(indent)
        self.emit(indent, "_tpc[0] = _tp")
        self.emit(
            indent,
            f"yield (None, {value},"
            " _cy, _op, _ws, _br, _ca, _se, _bx, _sz)",
        )
        self.emit(indent, "return")

    # -- schedules ------------------------------------------------------------

    def emit_schedule(self, indent: int, head: str) -> None:
        schedule = self.cproc.schedules[head]
        code = schedule.code
        exits = code.exits
        position = {label: i for i, label in enumerate(code.labels)}
        block_pos = {
            instr: position[label]
            for instr, label in code.block_of.items()
            if label in position
        }
        self.emit(indent, "_se += 1")
        self.emit(indent, f"_sz += {len(code.labels)}")
        pend_cy = pend_op = pend_br = 0
        for bundle in schedule.bundles:
            pend_cy += 1
            pend_op += len(bundle)
            ctrl = [
                op for op in bundle if op.instr.opcode in _CONTROL
            ]
            pend_br += sum(
                1
                for op in bundle
                if op.instr.opcode in (Opcode.BR, Opcode.MBR)
            )
            if ctrl:
                self.emit(indent, f"_cy += {pend_cy}")
                if pend_op:
                    self.emit(indent, f"_op += {pend_op}")
                if pend_br:
                    self.emit(indent, f"_br += {pend_br}")
                pend_cy = pend_op = pend_br = 0
            dests = {
                op.instr.dest
                for op in bundle
                if op.instr.dest is not None
                and op.instr.opcode not in _CONTROL
            }
            ctx = _BundleCtx(dests)
            for op in bundle:
                self.stage_op(ctx, op)
            # The reference processes only the LAST control op's action
            # (earlier ones are overwritten), but counts every BR/MBR.
            action = ctrl[-1] if ctrl else None
            if action is not None and action.instr.opcode is Opcode.CALL:
                self.stage_call_args(ctx, action.instr)
            cond = None
            if action is not None:
                instr = action.instr
                if instr.opcode in (Opcode.BR, Opcode.MBR):
                    cond = ctx.read(instr.srcs[0])
                elif instr.opcode is Opcode.RET and instr.srcs:
                    cond = ctx.read(instr.srcs[0])
            for line in ctx.pre:
                self.emit(indent, line)
            if len(ctx.writes) == 1:
                dest, expr = ctx.writes[0]
                self.emit(indent, f"r{dest} = {expr}")
            elif ctx.writes:
                lhs = ", ".join(f"r{d}" for d, _ in ctx.writes)
                rhs = ", ".join(expr for _, expr in ctx.writes)
                self.emit(indent, f"{lhs} = {rhs}")
            for addr, value in ctx.mem:
                self.emit(indent, f"_mem[{addr}] = {value}")
            for slot, value in ctx.spill:
                self.emit(indent, f"_sp[{slot!r}] = {value}")
            for value in ctx.prints:
                self.emit(indent, f"_oa({value})")
            if action is not None:
                self.emit_action(
                    indent, schedule, exits, block_pos, action, ctx, cond
                )
        name = self.cproc.name
        msg = f"{name}/{head}: fell off the end of the schedule"
        self.emit(indent, f"raise SimulationError({msg!r})")

    def stage_call_args(self, ctx: _BundleCtx, instr: Instruction) -> None:
        ctx.call_args = [ctx.read(s) for s in instr.srcs]  # type: ignore

    def emit_action(
        self,
        indent: int,
        schedule: SuperblockSchedule,
        exits,
        block_pos,
        action,
        ctx: _BundleCtx,
        cond: Optional[str],
    ) -> None:
        instr = action.instr
        opcode = instr.opcode
        exit_info = exits.get(instr)
        on_trace = (
            exit_info.on_trace_target if exit_info is not None else None
        )
        pos1 = block_pos.get(instr, 0) + 1
        if opcode is Opcode.CALL:
            const = self.callee_const(instr.callee)
            args = getattr(ctx, "call_args", [])
            argv = ", ".join(args)
            argv = f"({argv},)" if args else "()"
            self.limit_check(indent)
            self.emit(indent, "_ca += 1")
            self.emit(indent, "_tpc[0] = _tp")
            dest = f"r{instr.dest}" if instr.dest is not None else "_rv"
            self.emit(
                indent,
                f"{dest}, _cy, _op, _ws, _br, _ca, _se, _bx, _sz ="
                f" yield ({const}, {argv},"
                " _cy, _op, _ws, _br, _ca, _se, _bx, _sz)",
            )
            self.emit(indent, "_tp = _tpc[0]")
        elif opcode is Opcode.RET:
            value = cond if instr.srcs else "0"
            self.emit_ret(indent, schedule, action, pos1, value)
        elif opcode is Opcode.JMP:
            target = instr.targets[0]
            if target != on_trace:
                self.emit_exit(indent, schedule, action, pos1, target)
        elif opcode is Opcode.BR:
            t1, t2 = instr.targets[0], instr.targets[1]
            if t1 == t2:
                if t1 != on_trace:
                    self.emit_exit(indent, schedule, action, pos1, t1)
            elif t1 == on_trace:
                self.emit(indent, f"if not {cond}:")
                self.emit_exit(indent + 1, schedule, action, pos1, t2)
            elif t2 == on_trace:
                self.emit(indent, f"if {cond}:")
                self.emit_exit(indent + 1, schedule, action, pos1, t1)
            else:
                self.emit(indent, f"if {cond}:")
                self.emit_exit(indent + 1, schedule, action, pos1, t1)
                self.emit(indent, "else:")
                self.emit_exit(indent + 1, schedule, action, pos1, t2)
        else:  # MBR
            targets = list(instr.targets)
            if len(targets) == 1 or len(set(targets)) == 1:
                if targets[-1] != on_trace:
                    self.emit_exit(
                        indent, schedule, action, pos1, targets[-1]
                    )
                return
            self.emit(indent, f"_s = {cond}")
            for i, t in enumerate(targets[:-1]):
                kw = "if" if i == 0 else "elif"
                self.emit(indent, f"{kw} _s == {i}:")
                if t == on_trace:
                    self.emit(indent + 1, "pass")
                else:
                    self.emit_exit(indent + 1, schedule, action, pos1, t)
            self.emit(indent, "else:")
            if targets[-1] == on_trace:
                self.emit(indent + 1, "pass")
            else:
                self.emit_exit(
                    indent + 1, schedule, action, pos1, targets[-1]
                )

    # -- whole function -------------------------------------------------------

    def generate(self) -> str:
        cproc = self.cproc
        self.emit(
            0,
            "def _jit_fn(_argv, _rt,"
            " _cy, _op, _ws, _br, _ca, _se, _bx, _sz):",
        )
        self.emit(1, "_tape, _tpc, _mem, _out, _limit = _rt")
        ops_used = {
            op.instr.opcode
            for schedule in cproc.schedules.values()
            for bundle in schedule.bundles
            for op in bundle
        }
        if ops_used & {Opcode.LOAD, Opcode.LOAD_S}:
            self.emit(1, "_mg = _mem.get")
        if Opcode.PRINT in ops_used:
            self.emit(1, "_oa = _out.append")
        self.emit(1, "_tlen = len(_tape)")
        self.emit(1, "_tp = _tpc[0]")
        if Opcode.SPILL_ST in ops_used or Opcode.SPILL_LD in ops_used:
            self.emit(1, "_sp = {}")
            if Opcode.SPILL_LD in ops_used:
                self.emit(1, "_spg = _sp.get")
        params = cproc.params
        if len(params) == 1:
            self.emit(1, f"r{params[0]}, = _argv")
        elif params:
            unpack = ", ".join(f"r{p}" for p in params)
            self.emit(1, f"{unpack} = _argv")
        self.emit(1, "if 0:")
        self.emit(2, "yield")  # generator even without calls/returns
        if cproc.entry_head not in self.head_index:
            # Mirror the reference's schedules[entry_head] KeyError.
            self.emit(1, f"raise KeyError({cproc.entry_head!r})")
            return "\n".join(self.lines) + "\n"
        self.emit(1, f"_L = {self.head_index[cproc.entry_head]}")
        self.emit(1, "while True:")
        self.limit_check(2)
        for i, head in enumerate(self.heads):
            kw = "if" if i == 0 else "elif"
            self.emit(2, f"{kw} _L == {i}:")
            self.emit_schedule(3, head)
        self.emit(2, "else:")
        self.emit(3, "raise SimulationError('jit dispatch fell out')")
        return "\n".join(self.lines) + "\n"


def compile_vliw_procedure(
    compiled: CompiledProgram, cproc: CompiledProcedure
):
    """Compile one procedure; returns ``(function, source)``."""
    emitter = _VliwEmitter(compiled, cproc)
    source = emitter.generate()
    code = compile(source, f"<jit:vliw:{cproc.name}>", "exec")
    ns = emitter.ns
    exec(code, ns)  # noqa: S102 - the whole point of a template JIT
    return ns["_jit_fn"], source


def compiled_vliw_functions(compiled: CompiledProgram) -> Dict[str, object]:
    """Per-procedure JIT functions for ``compiled`` (cached on instance)."""
    cache = getattr(compiled, "_jit_cache", None)
    if cache is not None:
        JIT_STATS.code_cache_hits += 1
        return cache["fns"]
    JIT_STATS.code_cache_misses += 1
    t0 = time.perf_counter()
    fns: Dict[str, object] = {}
    sources: Dict[str, str] = {}
    for name, cproc in compiled.procedures.items():
        fn, source = compile_vliw_procedure(compiled, cproc)
        fns[name] = fn
        sources[name] = source
        JIT_STATS.procs_compiled += 1
    compiled._jit_cache = {"fns": fns, "sources": sources}
    JIT_STATS.compile_seconds += time.perf_counter() - t0
    return fns


def vliw_jit_sources(compiled: CompiledProgram) -> Dict[str, str]:
    """Generated sources compiled so far for ``compiled`` (debug dumps)."""
    cache = getattr(compiled, "_jit_cache", None)
    return dict(cache["sources"]) if cache else {}


def _check_args(cproc: CompiledProcedure, argv: Sequence[int]) -> None:
    if len(argv) != len(cproc.params):
        raise SimulationError(
            f"{cproc.name} expects {len(cproc.params)} args,"
            f" got {len(argv)}"
        )


def run_vliw_jit(
    compiled: CompiledProgram,
    input_tape: Sequence[int] = (),
    args: Sequence[int] = (),
    cycle_limit: int = 100_000_000,
) -> SimulationResult:
    """JIT-simulate ``compiled``; bit-identical to ``VLIWSimulator.run``."""
    fns = compiled_vliw_functions(compiled)
    tape = list(input_tape)
    tpc = [0]
    memory: Dict[int, int] = {}
    output: List[int] = []
    rt = (tape, tpc, memory, output, cycle_limit)

    entry = compiled.procedures[compiled.entry]
    argv = tuple(args)
    _check_args(entry, argv)
    stack = [fns[entry.name](argv, rt, 0, 0, 0, 0, 0, 0, 0, 0)]
    send = None
    return_value = 0
    cy = op = ws = br = ca = se = bx = sz = 0
    while stack:
        req = stack[-1].send(send)
        if req[0] is None:
            stack.pop()
            if stack:
                send = req[1:]
            else:
                return_value = req[1]
                cy, op, ws, br, ca, se, bx, sz = req[2:]
        else:
            callee, cargv = req[0], req[1]
            _check_args(callee, cargv)
            stack.append(fns[callee.name](cargv, rt, *req[2:]))
            send = None
    return SimulationResult(
        output=output,
        return_value=return_value,
        cycles=cy,
        operations=op,
        wasted_operations=ws,
        branches=br,
        calls=ca,
        sb_entries=se,
        blocks_executed=bx,
        sb_size_blocks=sz,
    )
