"""Dump the JIT's generated Python source for a workload.

Debugging aid (and CI artifact): compiles a workload through both code
generators and writes every generated function to a directory::

    python -m repro.jit wc --out jit-dump/
    python -m repro.jit eqn --scheme P4 --stdout

Each interpreter procedure yields ``interp_<variant>_<proc>.py`` and each
VLIW procedure ``vliw_<scheme>_<proc>.py``; the sources are exactly what
``exec`` saw, so a parity failure can be read straight off the dump.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..pipeline import compile_scheme
from ..workloads.suite import all_workloads, get_workload
from .interp_jit import compiled_functions, jit_sources
from .vliw_jit import compiled_vliw_functions, vliw_jit_sources


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.jit",
        description="dump generated JIT code for one workload",
    )
    parser.add_argument(
        "workload",
        help="workload name (see --list)",
        nargs="?",
    )
    parser.add_argument(
        "--list", action="store_true", help="list workload names and exit"
    )
    parser.add_argument(
        "--scheme",
        default="P4",
        help="formation scheme for the VLIW dump (default: P4)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.25,
        help="training-tape scale for formation (default: 0.25)",
    )
    parser.add_argument(
        "--out",
        default="jit-dump",
        help="output directory (default: ./jit-dump)",
    )
    parser.add_argument(
        "--stdout",
        action="store_true",
        help="print sources to stdout instead of writing files",
    )
    args = parser.parse_args(argv)
    if args.list:
        for wl in all_workloads():
            print(wl.name)
        return 0
    if not args.workload:
        parser.error("workload name required (or --list)")
    wl = get_workload(args.workload)

    program = wl.program()
    for traced in (False, True):
        compiled_functions(program, traced=traced)
    sources = {
        f"interp_{variant}_{proc}.py": text
        for (variant, proc), text in jit_sources(program).items()
    }

    cprogram = wl.fresh_program()
    _, _, compiled, _ = compile_scheme(
        cprogram, args.scheme, wl.train_tape(args.scale)
    )
    compiled_vliw_functions(compiled)
    sources.update(
        {
            f"vliw_{args.scheme}_{proc}.py": text
            for proc, text in vliw_jit_sources(compiled).items()
        }
    )

    if args.stdout:
        for name in sorted(sources):
            print(f"# ===== {name} =====")
            print(sources[name])
        return 0
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    for name, text in sources.items():
        (out / name).write_text(text)
    print(f"wrote {len(sources)} generated files to {out}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
