"""The metrics sink: hierarchical stage timers, counters, event log.

Design constraints, in order:

* **zero overhead when off** — every instrumentation site in the compiler
  is guarded by ``if metrics is not None``; a disabled pipeline never
  allocates, times, or branches beyond that test, and its output is
  byte-identical to an uninstrumented build;
* **exact aggregation** — counters are plain integer sums, so a parallel
  run (one sink per worker process, merged by the parent) totals exactly
  what the serial engine totals;
* **structured, replayable log** — every stage completion appends one
  event (a flat JSON-able dict with a monotonic timestamp and the worker
  pid); the JSONL file written by :meth:`MetricsSink.write_jsonl` is
  self-contained and :meth:`MetricsSink.read_jsonl` rebuilds the sink from
  it, which is what ``python -m repro.experiments report`` renders.

Stage names are dot-hierarchical (``compact.allocate`` is a child of
``compact``); only *leaf* stages are ever recorded, so summing every
recorded stage never double-counts a nested timer.
"""

from __future__ import annotations

import json
import os
import sys
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

from .atomicio import atomic_write_text
from .histogram import LatencyHistogram

#: Version of the JSONL event-log format.  Bump when record shapes change
#: incompatibly; readers warn (but still parse) on versions they don't know.
#:
#: * v1 — ``schema`` record, ``stage``/free-form events, trailing
#:   ``counters`` record.
#: * v2 — adds an optional ``histograms`` record (log-bucketed latency
#:   distributions, e.g. the service's per-request spans) before the
#:   trailing counters.  v1 files read cleanly under a v2 reader; a v2
#:   file without histograms is shaped exactly like a v1 file apart from
#:   the declared version.
SCHEMA_VERSION = 2

#: Every version this reader knows how to parse exactly.
KNOWN_SCHEMA_VERSIONS = (1, 2)

#: Future schema versions already warned about (one warning per version
#: per process, not one per file).
_WARNED_VERSIONS: set = set()


def warn_unknown_schema(version: Any, path: Any = None) -> bool:
    """Warn (once per process per version) about a schema version this
    reader does not know.  Returns True when a warning was emitted."""
    if version is None or version in KNOWN_SCHEMA_VERSIONS:
        return False
    if version in _WARNED_VERSIONS:
        return False
    _WARNED_VERSIONS.add(version)
    origin = f" ({path})" if path else ""
    print(
        f"[metrics] warning: event log{origin} declares schema version"
        f" {version}; this reader understands up to {SCHEMA_VERSION}."
        " Parsing best-effort — unknown records pass through as events.",
        file=sys.stderr,
    )
    return True


def timed(metrics: Optional["MetricsSink"], stage: str, fn, *args, **kwargs):
    """Call ``fn(*args, **kwargs)``, timing it as ``stage`` when a sink is
    present.  The ``metrics is None`` fast path is a plain call."""
    if metrics is None:
        return fn(*args, **kwargs)
    with metrics.stage(stage):
        return fn(*args, **kwargs)


class MetricsSink:
    """Collects stage timings, named counters, and structured events.

    Args:
        clock: monotonic time source (overridable for deterministic
            tests); defaults to :func:`time.perf_counter`.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        #: counter name -> integer total (exactly summable across workers)
        self.counters: Dict[str, int] = {}
        #: stage name -> cumulative seconds
        self.stage_seconds: Dict[str, float] = {}
        #: stage name -> completions
        self.stage_calls: Dict[str, int] = {}
        #: structured event log, in completion order
        self.events: List[Dict[str, Any]] = []
        #: latency histograms (schema v2): name -> distribution
        self.histograms: Dict[str, LatencyHistogram] = {}
        #: labels stamped onto every event (workload/scheme context)
        self._labels: Dict[str, Any] = {}
        #: schema version declared by the file this sink was read from
        #: (:data:`SCHEMA_VERSION` when written by this code, ``None`` for
        #: legacy files with no ``schema`` record)
        self.schema_version: Optional[int] = None

    # -- context labels ------------------------------------------------------

    @contextmanager
    def context(self, **labels: Any) -> Iterator["MetricsSink"]:
        """Stamp ``labels`` (e.g. ``workload=..., scheme=...``) onto every
        event emitted inside the ``with`` block.  Nested contexts stack."""
        saved = self._labels
        self._labels = {**saved, **labels}
        try:
            yield self
        finally:
            self._labels = saved

    # -- counters ------------------------------------------------------------

    def add(self, counter: str, value: int = 1) -> None:
        """Increment a named counter."""
        self.counters[counter] = self.counters.get(counter, 0) + value

    # -- latency histograms --------------------------------------------------

    def observe(self, name: str, seconds: float) -> None:
        """Record one latency sample into the named histogram."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = LatencyHistogram()
        hist.record(seconds)

    # -- events --------------------------------------------------------------

    def event(self, kind: str, **fields: Any) -> None:
        """Append one structured event (current labels + ``fields``)."""
        record: Dict[str, Any] = {
            "event": kind,
            "t": self._clock(),
            "pid": os.getpid(),
        }
        record.update(self._labels)
        record.update(fields)
        self.events.append(record)

    # -- stages --------------------------------------------------------------

    @contextmanager
    def stage(self, name: str, **fields: Any) -> Iterator[Dict[str, Any]]:
        """Time one stage execution and emit a ``stage`` event on exit.

        Yields the event's extra-field dict, so the body can attach
        results it only knows at the end::

            with sink.stage("formation.form", proc=name) as out:
                ...
                out["superblocks"] = len(sbs)
        """
        start = self._clock()
        try:
            yield fields
        finally:
            elapsed = self._clock() - start
            self.stage_seconds[name] = (
                self.stage_seconds.get(name, 0.0) + elapsed
            )
            self.stage_calls[name] = self.stage_calls.get(name, 0) + 1
            self.event("stage", stage=name, dt=round(elapsed, 9), **fields)

    # -- aggregation ---------------------------------------------------------

    def merge(self, other: "MetricsSink") -> None:
        """Fold another sink (e.g. shipped back from a worker process)
        into this one: counters and stage times sum, events concatenate."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, secs in other.stage_seconds.items():
            self.stage_seconds[name] = (
                self.stage_seconds.get(name, 0.0) + secs
            )
        for name, calls in other.stage_calls.items():
            self.stage_calls[name] = self.stage_calls.get(name, 0) + calls
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = LatencyHistogram()
            mine.merge(hist)
        self.events.extend(other.events)

    @property
    def total_stage_seconds(self) -> float:
        """Sum of every recorded (leaf) stage's cumulative time."""
        return sum(self.stage_seconds.values())

    # -- serialization -------------------------------------------------------

    def to_jsonl(self) -> str:
        """Serialize the event log to JSONL text: a leading ``schema``
        record, one event per line, an optional ``histograms`` record,
        terminated by a ``counters`` record so the file is self-contained.

        Split from :meth:`write_jsonl` so a caller on an event loop can
        snapshot the sink synchronously (consistent — no concurrent
        mutation mid-serialize) and hand only the blocking file write to
        a thread."""
        lines = [
            json.dumps(
                {"event": "schema", "version": SCHEMA_VERSION},
                sort_keys=True,
            )
        ]
        for record in self.events:
            lines.append(json.dumps(record, sort_keys=True))
        if self.histograms:
            lines.append(
                json.dumps(
                    {
                        "event": "histograms",
                        "histograms": {
                            name: self.histograms[name].to_dict()
                            for name in sorted(self.histograms)
                        },
                    },
                    sort_keys=True,
                )
            )
        lines.append(
            json.dumps(
                {"event": "counters", "counters": self.counters},
                sort_keys=True,
            )
        )
        return "\n".join(lines) + "\n"

    def write_jsonl(self, path: os.PathLike) -> int:
        """Write :meth:`to_jsonl` to ``path``.  The write is atomic (temp
        file + ``os.replace``): an interrupted run leaves either the
        previous complete log or the new one, never a truncated file.
        Returns the number of lines written."""
        text = self.to_jsonl()
        atomic_write_text(path, text)
        return text.count("\n")

    @classmethod
    def read_jsonl(cls, path: os.PathLike) -> "MetricsSink":
        """Rebuild a sink from a :meth:`write_jsonl` file: stage totals are
        re-accumulated from ``stage`` events, counters from the trailing
        ``counters`` record(s), histograms from the ``histograms`` record.
        v1 files (no histograms record) read cleanly; files declaring a
        schema version newer than :data:`SCHEMA_VERSION` warn once per
        process and parse best-effort."""
        sink = cls()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                kind = record.get("event")
                if kind == "schema":
                    sink.schema_version = record.get("version")
                    warn_unknown_schema(sink.schema_version, path)
                    continue
                if kind == "counters":
                    for name, value in record.get("counters", {}).items():
                        sink.add(name, value)
                    continue
                if kind == "histograms":
                    for name, data in (
                        record.get("histograms") or {}
                    ).items():
                        shipped = LatencyHistogram.from_dict(data)
                        mine = sink.histograms.get(name)
                        if mine is None:
                            sink.histograms[name] = shipped
                        else:
                            mine.merge(shipped)
                    continue
                sink.events.append(record)
                if kind == "stage":
                    name = record.get("stage", "?")
                    elapsed = float(record.get("dt", 0.0))
                    sink.stage_seconds[name] = (
                        sink.stage_seconds.get(name, 0.0) + elapsed
                    )
                    sink.stage_calls[name] = (
                        sink.stage_calls.get(name, 0) + 1
                    )
        return sink
