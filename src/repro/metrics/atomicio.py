"""Atomic text-file writes for every metrics/bench artifact.

An interrupted run (SIGKILL mid-write, a full disk, a crashing worker)
must never leave a *truncated* JSONL log or bench report behind: a
half-written line crashes ``summarize`` and silently corrupts the bench
history.  Every JSON/JSONL writer in the observability stack therefore
goes through :func:`atomic_write_text`: the content lands in a temp file
in the destination directory first and is moved into place with
``os.replace``, which POSIX guarantees is atomic on one filesystem.
Readers see either the old complete file or the new complete file,
never a prefix of the new one.
"""

from __future__ import annotations

import os
import tempfile


def atomic_write_text(path: os.PathLike, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file is created in ``path``'s directory so the final rename
    never crosses a filesystem boundary; the directory is created first
    if it does not exist yet (a cold CI cache starts with no history
    directory at all).  On any failure the temp file is removed and the
    destination is left untouched.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
