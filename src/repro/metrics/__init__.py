"""Pipeline observability: stage timers, counters, and a JSONL event log.

The :class:`MetricsSink` travels with a pipeline invocation the same way
:class:`~repro.validation.ValidationConfig` does: pass one to
:func:`repro.pipeline.run_scheme` (or :func:`repro.experiments.run_suite`)
and every stage of the compiler — profiling, superblock formation,
compaction, register allocation, layout, simulation — records how long it
took and what it did (superblocks formed, tail-duplication code growth,
operations speculated above side exits, compensation copies inserted by
renaming, spills from linear scan, schedule slots filled vs. empty,
I-cache traffic).  With ``metrics=None`` (the default) the instrumentation
is a single ``is not None`` test per site: the pipeline's behaviour and
output are unchanged and the overhead is unmeasurable.

This package is dependency-free (stdlib only) so every layer of the
compiler can import it without cycles.
"""

from .atomicio import atomic_write_text
from .histogram import LatencyHistogram
from .history import (
    HistoryCheck,
    HistoryStore,
    check_history,
    current_git_sha,
    default_history_path,
    fingerprint_id,
    format_history_check,
    format_history_list,
    format_history_show,
    machine_fingerprint,
    noise_band,
)
from .report import (
    DEFAULT_REGRESSION_THRESHOLD,
    INVERSE_TRIPWIRE_METRICS,
    TRIPWIRE_METRICS,
    BenchVerdict,
    check_bench_regression,
    evaluate_bench,
    format_bench_check,
    format_report,
    summarize,
)
from .sampler import SamplingProfiler
from .sink import (
    KNOWN_SCHEMA_VERSIONS,
    MetricsSink,
    SCHEMA_VERSION,
    timed,
    warn_unknown_schema,
)

__all__ = [
    "BenchVerdict",
    "DEFAULT_REGRESSION_THRESHOLD",
    "HistoryCheck",
    "HistoryStore",
    "INVERSE_TRIPWIRE_METRICS",
    "KNOWN_SCHEMA_VERSIONS",
    "LatencyHistogram",
    "MetricsSink",
    "SCHEMA_VERSION",
    "SamplingProfiler",
    "TRIPWIRE_METRICS",
    "atomic_write_text",
    "check_bench_regression",
    "check_history",
    "current_git_sha",
    "default_history_path",
    "evaluate_bench",
    "fingerprint_id",
    "format_bench_check",
    "format_history_check",
    "format_history_list",
    "format_history_show",
    "format_report",
    "machine_fingerprint",
    "noise_band",
    "summarize",
    "timed",
    "warn_unknown_schema",
]
