"""Pipeline observability: stage timers, counters, and a JSONL event log.

The :class:`MetricsSink` travels with a pipeline invocation the same way
:class:`~repro.validation.ValidationConfig` does: pass one to
:func:`repro.pipeline.run_scheme` (or :func:`repro.experiments.run_suite`)
and every stage of the compiler — profiling, superblock formation,
compaction, register allocation, layout, simulation — records how long it
took and what it did (superblocks formed, tail-duplication code growth,
operations speculated above side exits, compensation copies inserted by
renaming, spills from linear scan, schedule slots filled vs. empty,
I-cache traffic).  With ``metrics=None`` (the default) the instrumentation
is a single ``is not None`` test per site: the pipeline's behaviour and
output are unchanged and the overhead is unmeasurable.

This package is dependency-free (stdlib only) so every layer of the
compiler can import it without cycles.
"""

from .report import (
    DEFAULT_REGRESSION_THRESHOLD,
    INVERSE_TRIPWIRE_METRICS,
    TRIPWIRE_METRICS,
    check_bench_regression,
    format_bench_check,
    format_report,
    summarize,
)
from .sink import MetricsSink, SCHEMA_VERSION, timed

__all__ = [
    "DEFAULT_REGRESSION_THRESHOLD",
    "INVERSE_TRIPWIRE_METRICS",
    "MetricsSink",
    "SCHEMA_VERSION",
    "TRIPWIRE_METRICS",
    "check_bench_regression",
    "format_bench_check",
    "format_report",
    "summarize",
    "timed",
]
