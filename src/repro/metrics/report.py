"""Rendering and regression-checking of collected pipeline metrics.

Two consumers:

* ``python -m repro.experiments report METRICS.jsonl`` renders the
  per-stage time/growth breakdown (:func:`summarize` +
  :func:`format_report`);
* ``python -m repro.experiments report --check-bench NEW.json`` compares a
  fresh ``benchmarks/perf_smoke.py`` report against the committed
  ``BENCH_pipeline.json`` baseline (:func:`check_bench_regression`) and
  fails on a >25% regression of any tripwire metric.

The tripwire compares *ratio* metrics (cache speedup, replay-vs-streaming
speedup, metrics-on vs metrics-off slowdown) rather than absolute wall
times, so a slower CI machine does not trip it — only a genuinely worse
engine does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from .sink import MetricsSink

#: Higher-is-better ratio metrics compared by the bench tripwire, as dotted
#: paths into the ``BENCH_pipeline.json`` report.
TRIPWIRE_METRICS: Sequence[str] = (
    "speedup_vs_serial.cache_warm",
    "profile_collection.speedup_record_replay_vs_streaming",
    "depth_sweep.speedup_warm_vs_cold",
    "metrics.speedup_on_vs_off",
    "jit.speedup_on_vs_off",
    "jit.vliw_speedup_on_vs_off",
    "service.small_batch.speedup_warm_pool_vs_cold_cli",
    "service.dedup.hit_rate",
    "scheduler.gap_from_optimal",
    # Deterministic interprocedural-formation counters: the inliner
    # silently matching zero call sites or the k-iteration profiler
    # observing zero paths reads as a >25% drop, not machine noise.
    "interproc.procs_inlined",
    "interproc.kiter_paths_observed",
)

#: Lower-is-better tripwire metrics: these fail when the *current* value
#: rises above the baseline, not when it falls below it.  The scheduler
#: gap is a fraction in [0, 1] whose baseline may legitimately be 0.0, so
#: the inverse check adds a small absolute allowance on top of the
#: relative threshold.
INVERSE_TRIPWIRE_METRICS: Sequence[str] = (
    "scheduler.gap_from_optimal",
)

#: A tripwire metric may lose up to this fraction before the check fails.
DEFAULT_REGRESSION_THRESHOLD = 0.25

#: Absolute slack for inverse (lower-is-better) metrics whose baseline is
#: at or near zero: current may exceed baseline by this much before the
#: relative threshold even matters.
INVERSE_ABSOLUTE_ALLOWANCE = 0.005


# -- summary ------------------------------------------------------------------


def _derived(counters: Dict[str, int]) -> Dict[str, float]:
    """Growth/quality ratios computable from the raw counters."""
    derived: Dict[str, float] = {}

    def ratio(key: str, num: str, den: str) -> None:
        n, d = counters.get(num), counters.get(den)
        if n is not None and d:
            derived[key] = round(n / d, 4)

    ratio("formation_block_growth", "formation.blocks_out", "formation.blocks_in")
    ratio(
        "formation_instruction_growth",
        "formation.instructions_out",
        "formation.instructions_in",
    )
    ratio("schedule_slot_utilization", "compact.slots_filled", "compact.slots_total")
    ratio(
        "speculative_op_fraction", "compact.speculative_ops", "compact.slots_filled"
    )
    ratio("wasted_operation_fraction", "simulate.wasted_operations", "simulate.operations")
    ratio("icache_miss_rate", "icache.misses", "icache.accesses")
    return derived


def summarize(sink: MetricsSink) -> Dict[str, Any]:
    """Machine-readable account of one sink: stage totals, counters, and
    the derived growth/quality ratios."""
    stages = {
        name: {
            "calls": sink.stage_calls.get(name, 0),
            "seconds": round(secs, 6),
        }
        for name, secs in sink.stage_seconds.items()
    }
    return {
        "schema_version": sink.schema_version,
        "total_stage_seconds": round(sink.total_stage_seconds, 6),
        "stages": dict(sorted(stages.items())),
        "counters": dict(sorted(sink.counters.items())),
        "derived": _derived(sink.counters),
        "histograms": {
            name: sink.histograms[name].summary()
            for name in sorted(sink.histograms)
        },
        "events": len(sink.events),
    }


# -- text rendering ------------------------------------------------------------


def _format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        first = row[0].ljust(widths[0])
        rest = "  ".join(c.rjust(w) for c, w in zip(row[1:], widths[1:]))
        lines.append(f"{first}  {rest}" if rest else first)
    return "\n".join(lines)


def format_report(summary: Dict[str, Any]) -> str:
    """Render a summary as the per-stage breakdown + counters + ratios."""
    total = summary.get("total_stage_seconds") or 0.0
    stages: Dict[str, Dict[str, Any]] = summary.get("stages", {})

    # Group leaf stages under their top-level segment so the hierarchy
    # reads as a tree: "compact" aggregates "compact.allocate" etc.
    groups: Dict[str, List[str]] = {}
    for name in stages:
        groups.setdefault(name.split(".", 1)[0], []).append(name)

    rows: List[List[object]] = []
    for top in sorted(groups):
        members = sorted(groups[top])
        secs = sum(stages[m]["seconds"] for m in members)
        calls = sum(stages[m]["calls"] for m in members)
        share = f"{100.0 * secs / total:5.1f}%" if total else "    -"
        rows.append([top, calls, f"{secs:.3f}", share])
        if members != [top]:
            for member in members:
                leaf = stages[member]
                share = (
                    f"{100.0 * leaf['seconds'] / total:5.1f}%" if total else "    -"
                )
                rows.append(
                    [
                        "  " + member,
                        leaf["calls"],
                        f"{leaf['seconds']:.3f}",
                        share,
                    ]
                )

    parts = [
        "Pipeline metrics report"
        f" ({summary.get('events', 0)} events,"
        f" {total:.3f}s of instrumented stage time)",
        "",
        _format_table(["stage", "calls", "seconds", "share"], rows),
    ]
    counters = summary.get("counters", {})
    if counters:
        parts += [
            "",
            _format_table(
                ["counter", "total"], sorted(counters.items())
            ),
        ]
    derived = summary.get("derived", {})
    if derived:
        parts += [
            "",
            _format_table(["derived metric", "value"], sorted(derived.items())),
        ]
    histograms = summary.get("histograms", {})
    if histograms:
        parts += [
            "",
            _format_table(
                ["latency histogram", "count", "mean ms", "p50 ms",
                 "p90 ms", "p99 ms", "max ms"],
                [
                    [
                        name,
                        h.get("count", 0),
                        h.get("mean_ms", 0.0),
                        h.get("p50_ms", 0.0),
                        h.get("p90_ms", 0.0),
                        h.get("p99_ms", 0.0),
                        h.get("max_ms", 0.0),
                    ]
                    for name, h in sorted(histograms.items())
                ],
            ),
        ]
    return "\n".join(parts)


# -- bench tripwire ------------------------------------------------------------


def _lookup(tree: Any, dotted: str) -> Optional[float]:
    node = tree
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


@dataclass
class BenchVerdict:
    """One tripwire metric's outcome against the committed baseline.

    ``status`` is one of:

    * ``ok`` — within threshold;
    * ``regressed`` — outside threshold (the only failing status);
    * ``missing_baseline`` — measured now but absent from the baseline
      (a new metric the baseline predates — *not* a regression, but
      reported distinctly instead of silently skipped);
    * ``missing_current`` — in the baseline but not measured now (often
      a renamed section; also reported, never silently dropped);
    * ``zero_baseline`` — a higher-is-better metric whose baseline is 0,
      where a relative threshold is meaningless (inverse metrics handle
      zero baselines via :data:`INVERSE_ABSOLUTE_ALLOWANCE` instead).
    """

    metric: str
    status: str
    current: Optional[float] = None
    baseline: Optional[float] = None
    #: the edge the current value was held to (floor or ceiling)
    bound: Optional[float] = None
    inverse: bool = False

    @property
    def failed(self) -> bool:
        return self.status == "regressed"


def evaluate_bench(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
    metrics: Sequence[str] = TRIPWIRE_METRICS,
) -> List[BenchVerdict]:
    """Evaluate *every* tripwire metric in one pass (never stopping at
    the first problem) and say exactly what happened to each.

    A higher-is-better metric regresses when
    ``current < baseline * (1 - threshold)``; a lower-is-better metric
    (:data:`INVERSE_TRIPWIRE_METRICS`) regresses when ``current`` exceeds
    ``baseline * (1 + threshold) + INVERSE_ABSOLUTE_ALLOWANCE``.
    """
    verdicts: List[BenchVerdict] = []
    for path in metrics:
        cur = _lookup(current, path)
        base = _lookup(baseline, path)
        inverse = path in INVERSE_TRIPWIRE_METRICS
        if cur is None:
            verdicts.append(
                BenchVerdict(
                    path, "missing_current", baseline=base, inverse=inverse
                )
            )
            continue
        if base is None:
            verdicts.append(
                BenchVerdict(
                    path, "missing_baseline", current=cur, inverse=inverse
                )
            )
            continue
        if inverse:
            ceiling = base * (1.0 + threshold) + INVERSE_ABSOLUTE_ALLOWANCE
            verdicts.append(
                BenchVerdict(
                    path,
                    "regressed" if cur > ceiling else "ok",
                    current=cur,
                    baseline=base,
                    bound=ceiling,
                    inverse=True,
                )
            )
            continue
        if base == 0.0:
            verdicts.append(
                BenchVerdict(path, "zero_baseline", current=cur, baseline=base)
            )
            continue
        floor = base * (1.0 - threshold)
        verdicts.append(
            BenchVerdict(
                path,
                "regressed" if cur < floor else "ok",
                current=cur,
                baseline=base,
                bound=floor,
            )
        )
    return verdicts


def check_bench_regression(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
    metrics: Sequence[str] = TRIPWIRE_METRICS,
) -> List[str]:
    """Compare two perf-smoke reports; return one message per regressed
    tripwire metric (empty list = no regression).  All metrics are
    evaluated in one pass; metrics missing from either report are
    reported by :func:`format_bench_check` but do not fail the check
    (older baselines legitimately predate newer measurements)."""
    failures: List[str] = []
    for verdict in evaluate_bench(
        current, baseline, threshold=threshold, metrics=metrics
    ):
        if not verdict.failed:
            continue
        if verdict.inverse:
            failures.append(
                f"{verdict.metric}: {verdict.current:.4f} regressed above"
                f" {verdict.bound:.4f} (baseline {verdict.baseline:.4f},"
                f" threshold {threshold:.0%})"
            )
        else:
            failures.append(
                f"{verdict.metric}: {verdict.current:.3f} regressed below"
                f" {verdict.bound:.3f} (baseline {verdict.baseline:.3f},"
                f" threshold {threshold:.0%})"
            )
    return failures


_STATUS_LABELS = {
    "ok": "ok",
    "regressed": "REGRESSED",
    "missing_baseline": "skipped: no baseline (new metric)",
    "missing_current": "skipped: not measured",
    "zero_baseline": "skipped: zero baseline",
}


def format_bench_check(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
    metrics: Sequence[str] = TRIPWIRE_METRICS,
) -> str:
    """Human-readable per-metric verdict for the bench tripwire."""
    rows: List[List[object]] = []
    for verdict in evaluate_bench(
        current, baseline, threshold=threshold, metrics=metrics
    ):
        digits = 4 if verdict.inverse else 3
        rows.append(
            [
                verdict.metric,
                "-" if verdict.baseline is None
                else f"{verdict.baseline:.{digits}f}",
                "-" if verdict.current is None
                else f"{verdict.current:.{digits}f}",
                _STATUS_LABELS.get(verdict.status, verdict.status),
            ]
        )
    title = (
        f"Bench tripwire (fail under baseline - {threshold:.0%})"
    )
    return title + "\n" + _format_table(
        ["metric", "baseline", "current", "verdict"], rows
    )
