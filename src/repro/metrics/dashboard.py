"""The trend dashboard: a self-contained static HTML page of bench history.

``python -m repro.experiments report --html DIR --history FILE`` renders
one card per tripwire metric: an inline-SVG sparkline of the metric's
recorded runs, the median/MAD noise band shaded behind the line, the
latest value as a stat figure, and an explicit status (ok / regressed /
insufficient history) — the same verdicts :func:`~repro.metrics.history.
check_history` computes, made glanceable.  A links row points at the
latest Perfetto trace, flamegraph, and raw artifacts when the caller
passes them.

Everything is one hand-written HTML file: no JS dependencies, no network
fetches, CSS custom properties for light/dark, native ``<title>`` hover
tooltips on the sample points, and a ``<details>`` data table per card so
every number is readable without color or hover.  Status is always icon +
label, never color alone.
"""

from __future__ import annotations

import html
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .atomicio import atomic_write_text
from .history import (
    DEFAULT_WINDOW,
    MIN_RUNS_FOR_BAND,
    HistoryStore,
    noise_band,
)
from .report import INVERSE_TRIPWIRE_METRICS, TRIPWIRE_METRICS, _lookup

#: Sparkline geometry (px).
_SPARK_W, _SPARK_H, _PAD = 240, 56, 6

_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --gridline: #e1e0d9;
  --baseline: #c3c2b7;
  --border: rgba(11, 11, 11, 0.10);
  --series-1: #2a78d6;
  --band-fill: rgba(42, 120, 214, 0.10);
  --status-good: #0ca30c;
  --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --gridline: #2c2c2a;
    --baseline: #383835;
    --border: rgba(255, 255, 255, 0.10);
    --series-1: #3987e5;
    --band-fill: rgba(57, 135, 229, 0.14);
    --status-good: #0ca30c;
    --status-critical: #d03b3b;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px;
  background: var(--page); color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
header h1 { font-size: 20px; margin: 0 0 4px; }
header p { margin: 0; color: var(--text-secondary); }
.links { margin: 12px 0 20px; color: var(--text-secondary); }
.links a { color: var(--series-1); text-decoration: none; margin-right: 16px; }
.links a:hover { text-decoration: underline; }
.grid {
  display: grid; gap: 16px;
  grid-template-columns: repeat(auto-fill, minmax(300px, 1fr));
}
.card {
  background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 8px; padding: 14px 16px;
}
.card h2 {
  font-size: 13px; font-weight: 600; margin: 0 0 8px;
  color: var(--text-secondary); word-break: break-all;
}
.value { font-size: 24px; font-weight: 600; }
.value .unit { font-size: 13px; color: var(--text-muted); font-weight: 400; }
.status { font-size: 12px; margin-left: 8px; }
.status.ok { color: var(--status-good); }
.status.regressed { color: var(--status-critical); font-weight: 600; }
.status.insufficient, .status.missing { color: var(--text-muted); }
.band-note { font-size: 12px; color: var(--text-muted); margin-top: 2px; }
svg { display: block; margin-top: 8px; }
details { margin-top: 8px; }
summary { font-size: 12px; color: var(--text-muted); cursor: pointer; }
table { border-collapse: collapse; margin-top: 6px; width: 100%; }
th, td {
  font-size: 12px; text-align: right; padding: 2px 6px;
  border-bottom: 1px solid var(--gridline);
  font-variant-numeric: tabular-nums;
}
th:first-child, td:first-child { text-align: left; }
th { color: var(--text-muted); font-weight: 500; }
footer { margin-top: 24px; color: var(--text-muted); font-size: 12px; }
"""


def _scale(
    values: Sequence[float], lo: float, hi: float
) -> List[Tuple[float, float]]:
    """(x, y) pixel positions for a value series inside the sparkline box."""
    span = hi - lo or 1.0
    n = len(values)
    step = (_SPARK_W - 2 * _PAD) / max(n - 1, 1)
    return [
        (
            _PAD + i * step,
            _SPARK_H - _PAD - (_SPARK_H - 2 * _PAD) * (v - lo) / span,
        )
        for i, v in enumerate(values)
    ]


def _sparkline(
    values: Sequence[float],
    band: Optional[Tuple[float, float, float]],
    labels: Sequence[str],
) -> str:
    """One inline-SVG sparkline: shaded noise band, 2px series line,
    hoverable sample points, emphasized latest point."""
    pool = list(values)
    if band is not None:
        pool += [band[0], band[2]]
    lo, hi = min(pool), max(pool)
    points = _scale(values, lo, hi)
    parts = [
        f'<svg width="{_SPARK_W}" height="{_SPARK_H}"'
        f' viewBox="0 0 {_SPARK_W} {_SPARK_H}" role="img"'
        ' aria-label="run history sparkline">'
    ]
    if band is not None:
        (band_lo, _, band_hi) = band
        span = hi - lo or 1.0
        y_hi = _SPARK_H - _PAD - (_SPARK_H - 2 * _PAD) * (band_hi - lo) / span
        y_lo = _SPARK_H - _PAD - (_SPARK_H - 2 * _PAD) * (band_lo - lo) / span
        parts.append(
            f'<rect x="{_PAD}" y="{y_hi:.1f}" width="{_SPARK_W - 2 * _PAD}"'
            f' height="{max(y_lo - y_hi, 1.0):.1f}" fill="var(--band-fill)"/>'
        )
    if len(points) > 1:
        path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        parts.append(
            f'<polyline points="{path}" fill="none"'
            ' stroke="var(--series-1)" stroke-width="2"'
            ' stroke-linejoin="round" stroke-linecap="round"/>'
        )
    for i, ((x, y), label) in enumerate(zip(points, labels)):
        last = i == len(points) - 1
        radius = 4 if last else 2.5
        ring = ' stroke="var(--surface-1)" stroke-width="2"' if last else ""
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{radius}"'
            f' fill="var(--series-1)"{ring}>'
            f"<title>{html.escape(label)}</title></circle>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _metric_card(
    metric: str,
    pairs: Sequence[Tuple[Dict[str, Any], float]],
    current: Optional[float],
) -> str:
    """One dashboard card: headline value, status, sparkline, data table."""
    inverse = metric in INVERSE_TRIPWIRE_METRICS
    history_values = [value for _, value in pairs]
    values = list(history_values)
    labels = [
        f"{str(record.get('sha', '?'))[:10]}: {value:.4g}"
        for record, value in pairs
    ]
    if current is not None:
        values.append(current)
        labels.append(f"current: {current:.4g}")
    latest = values[-1] if values else None

    band = None
    if len(history_values) >= MIN_RUNS_FOR_BAND:
        band = noise_band(history_values)

    if latest is None:
        status, status_label = "missing", "— no data"
    elif band is None:
        status, status_label = (
            "insufficient",
            f"— {len(history_values)} run(s), {MIN_RUNS_FOR_BAND} needed",
        )
    else:
        failed = (latest > band[2]) if inverse else (latest < band[0])
        status, status_label = (
            ("regressed", "✗ regressed") if failed else ("ok", "✓ ok")
        )

    parts = [f'<div class="card"><h2>{html.escape(metric)}</h2>']
    if latest is not None:
        direction = ' <span class="unit">(lower is better)</span>' if inverse else ""
        parts.append(
            f'<div class="value">{latest:.4g}{direction}'
            f'<span class="status {status}">{html.escape(status_label)}'
            "</span></div>"
        )
    else:
        parts.append(
            f'<div class="value"><span class="status {status}">'
            f"{html.escape(status_label)}</span></div>"
        )
    if band is not None:
        parts.append(
            f'<div class="band-note">median {band[1]:.4g}, noise band'
            f" [{band[0]:.4g}, {band[2]:.4g}] over"
            f" {len(history_values)} run(s)</div>"
        )
    if values:
        parts.append(_sparkline(values, band, labels))
        rows = "".join(
            f"<tr><td>{html.escape(label.split(':')[0])}</td>"
            f"<td>{value:.6g}</td></tr>"
            for label, value in zip(labels, values)
        )
        parts.append(
            "<details><summary>data</summary><table>"
            "<tr><th>run</th><th>value</th></tr>"
            f"{rows}</table></details>"
        )
    parts.append("</div>")
    return "".join(parts)


def render_dashboard(
    store: HistoryStore,
    out_dir: os.PathLike,
    current: Optional[Dict[str, Any]] = None,
    metrics: Sequence[str] = TRIPWIRE_METRICS,
    source: Optional[str] = "perf_smoke",
    window: int = DEFAULT_WINDOW,
    artifacts: Optional[Dict[str, str]] = None,
    title: str = "repro · performance trends",
) -> Path:
    """Render ``index.html`` under ``out_dir`` and return its path.

    Args:
        store: the bench history to plot.
        current: a fresh (not yet appended) report to show as the latest
            point on every sparkline; ``None`` plots history only.
        metrics: dotted metric paths, one card each.
        source: history source filter (``perf_smoke``/``service_smoke``/
            ``None`` for all).
        artifacts: label -> href links (latest Perfetto trace, flamegraph,
            raw JSONL, ...), rendered as the links row.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    cards = []
    for metric in metrics:
        pairs = store.series(metric, source=source, last=window)
        cards.append(
            _metric_card(metric, pairs, _lookup(current or {}, metric))
        )

    records = store.records(source=source)
    link_row = ""
    if artifacts:
        links = " ".join(
            f'<a href="{html.escape(href)}">{html.escape(label)}</a>'
            for label, href in artifacts.items()
        )
        link_row = f'<div class="links">{links}</div>'

    stamp = time.strftime("%Y-%m-%d %H:%M:%S UTC", time.gmtime())
    newest = records[-1] if records else None
    subtitle = (
        f"{len(records)} recorded run(s)"
        + (
            f" · latest sha {html.escape(str(newest.get('sha', '?'))[:12])}"
            f" · machine {html.escape(str(newest.get('fingerprint_id', '-')))}"
            if newest
            else ""
        )
    )
    page = (
        "<!doctype html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{html.escape(title)}</title>\n"
        f"<style>{_CSS}</style></head>\n"
        "<body><header>"
        f"<h1>{html.escape(title)}</h1>"
        f"<p>{subtitle}</p></header>\n"
        f"{link_row}"
        f'<div class="grid">{"".join(cards)}</div>\n'
        f"<footer>generated {stamp} · bands are median ± max(4·1.4826·MAD,"
        " 5% of median) over the trailing window · lower-is-better metrics"
        " fail above the band, all others below it</footer>\n"
        "</body></html>\n"
    )
    index = out / "index.html"
    atomic_write_text(index, page)
    return index
