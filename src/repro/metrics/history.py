"""Longitudinal bench history: an append-only JSONL store of perf reports.

``report --check-bench`` used to compare every fresh ``perf_smoke`` run
against one committed snapshot with a flat ±25% band — a check with no
memory, so a naturally noisy ratio (the JIT speedup on a loaded CI
runner) had to be damped by hand (more bench rounds) while a genuinely
drifting metric could walk 20% per PR forever without tripping anything.

This module gives the repo memory across runs:

* :class:`HistoryStore` — an append-only JSONL file, one record per
  bench run, keyed by git sha, wall-clock timestamp, and a machine
  fingerprint (CPU count, platform, python version) so runs from
  different machines are never pooled into one noise estimate;
* :func:`noise_band` — a robust median/MAD band over the last N runs of
  one metric: flappy metrics get wide bands *automatically* (their MAD
  is large), stable metrics get tight ones, and a single outlier run
  cannot poison the estimate the way it poisons a mean/stddev band;
* :func:`check_history` — the history-based tripwire: each tripwire
  metric is compared against its own band.  Metrics with fewer than
  ``min_runs`` recorded values report ``insufficient`` so the caller can
  fall back to the legacy single-baseline check.

Every write goes through :func:`~repro.metrics.atomicio.atomic_write_text`
— an interrupted append leaves the previous complete history, never a
truncated line.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

try:
    import fcntl
except ImportError:  # pragma: no cover — non-POSIX platform
    fcntl = None

from .atomicio import atomic_write_text
from .report import (
    INVERSE_TRIPWIRE_METRICS,
    TRIPWIRE_METRICS,
    _format_table,
    _lookup,
)

#: Version of one history record's shape.
HISTORY_SCHEMA_VERSION = 1

#: Environment override for the default history file location.
HISTORY_ENV = "REPRO_HISTORY_FILE"

#: Default history file name (repo root / current directory).
DEFAULT_HISTORY_NAME = "BENCH_history.jsonl"

#: Consecutive-run window the tripwire bands are computed over.
DEFAULT_WINDOW = 12

#: Minimum recorded runs before the history band replaces the legacy
#: single-baseline check.
MIN_RUNS_FOR_BAND = 3

#: Band half-width: ``max(K_MAD * 1.4826 * MAD, MIN_REL * |median|)``.
#: ``1.4826 * MAD`` estimates one standard deviation for gaussian noise;
#: 4 sigma keeps the false-trip rate negligible over many metrics x many
#: runs, while the 5% relative floor stops a perfectly stable metric
#: (MAD = 0) from tripping on its first sub-ULP wobble.
K_MAD = 4.0
MIN_REL_BAND = 0.05


def default_history_path() -> Path:
    """``$REPRO_HISTORY_FILE`` or ``BENCH_history.jsonl`` in the cwd."""
    env = os.environ.get(HISTORY_ENV)
    return Path(env) if env else Path(DEFAULT_HISTORY_NAME)


# -- run identity --------------------------------------------------------------


def machine_fingerprint() -> Dict[str, Any]:
    """What makes this machine's timings its own: core count, platform,
    python.  Runs with different fingerprints never share a noise band."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
    }


def fingerprint_id(fingerprint: Dict[str, Any]) -> str:
    """Short stable digest of a fingerprint (history records carry both)."""
    blob = json.dumps(fingerprint, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:12]


def current_git_sha(cwd: Optional[os.PathLike] = None) -> str:
    """The checked-out commit, or ``unknown`` outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


# -- the store -----------------------------------------------------------------


class HistoryStore:
    """Append-only JSONL history of bench reports.

    One line per run::

        {"schema": 1, "source": "perf_smoke", "sha": ..., "timestamp": ...,
         "fingerprint": {...}, "fingerprint_id": ..., "report": {...}}

    Appends rewrite the whole file atomically (histories are small —
    CI keeps a rolling window — and atomicity beats append-mode speed
    here), under an advisory ``flock`` on a sidecar lock file so two
    concurrent appends (``perf_smoke`` and ``service_smoke`` pointed at
    one ``--history`` file) serialize instead of silently dropping one
    run's record.  Malformed lines are skipped on read with a count,
    never a crash: a truncated history from a pre-atomic writer still
    loads.
    """

    def __init__(self, path: Optional[os.PathLike] = None) -> None:
        self.path = Path(path) if path is not None else default_history_path()
        #: malformed lines skipped by the last :meth:`records` call
        self.skipped_lines = 0

    # -- writing -------------------------------------------------------------

    @contextmanager
    def _locked(self) -> Iterator[None]:
        """Exclusive advisory lock for the append's read-rewrite cycle.

        Without it, two processes appending at once both read the same
        record list and the second rewrite silently drops the first's
        run.  ``flock`` is advisory but every writer goes through here;
        on platforms without ``fcntl`` appends are unserialized, as
        before.
        """
        if fcntl is None:  # pragma: no cover — non-POSIX platform
            yield
            return
        lock_path = Path(f"{self.path}.lock")
        os.makedirs(lock_path.parent, exist_ok=True)
        with open(lock_path, "w") as lock:
            fcntl.flock(lock.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lock.fileno(), fcntl.LOCK_UN)

    def append(
        self,
        report: Dict[str, Any],
        source: str = "perf_smoke",
        sha: Optional[str] = None,
        timestamp: Optional[float] = None,
        fingerprint: Optional[Dict[str, Any]] = None,
        keep: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Append one run.  Returns the record written.

        ``keep`` (when given) prunes the history to the newest ``keep``
        records after the append — what CI uses to bound artifact growth.
        """
        fp = fingerprint if fingerprint is not None else machine_fingerprint()
        record = {
            "schema": HISTORY_SCHEMA_VERSION,
            "source": source,
            "sha": sha if sha is not None else current_git_sha(),
            "timestamp": (
                timestamp if timestamp is not None else time.time()
            ),
            "fingerprint": fp,
            "fingerprint_id": fingerprint_id(fp),
            "report": report,
        }
        with self._locked():
            records = self.records()
            records.append(record)
            if keep is not None and keep > 0:
                records = records[-keep:]
            self._write_all(records)
        return record

    def _write_all(self, records: Sequence[Dict[str, Any]]) -> None:
        text = "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in records
        )
        atomic_write_text(self.path, text)

    # -- reading -------------------------------------------------------------

    def records(
        self,
        source: Optional[str] = None,
        fingerprint: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """All records, file order (= chronological for an append-only
        log), optionally filtered by source and/or fingerprint id."""
        self.skipped_lines = 0
        records: List[Dict[str, Any]] = []
        if not self.path.exists():
            return records
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    self.skipped_lines += 1
                    continue
                if not isinstance(record, dict) or "report" not in record:
                    self.skipped_lines += 1
                    continue
                if source is not None and record.get("source") != source:
                    continue
                if (
                    fingerprint is not None
                    and record.get("fingerprint_id") != fingerprint
                ):
                    continue
                records.append(record)
        return records

    def series(
        self,
        metric: str,
        source: Optional[str] = None,
        fingerprint: Optional[str] = None,
        last: Optional[int] = None,
    ) -> List[Tuple[Dict[str, Any], float]]:
        """Chronological (record, value) pairs for one dotted metric,
        skipping runs where the metric is absent."""
        pairs = [
            (record, value)
            for record in self.records(source=source, fingerprint=fingerprint)
            for value in [_lookup(record.get("report", {}), metric)]
            if value is not None
        ]
        if last is not None and last > 0:
            pairs = pairs[-last:]
        return pairs


# -- robust statistics ---------------------------------------------------------


def median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        raise ValueError("median of empty sequence")
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Sequence[float], center: Optional[float] = None) -> float:
    """Median absolute deviation (the robust spread estimator)."""
    if center is None:
        center = median(values)
    return median([abs(v - center) for v in values])


def noise_band(
    values: Sequence[float],
    k: float = K_MAD,
    min_rel: float = MIN_REL_BAND,
) -> Tuple[float, float, float]:
    """Robust ``(low, median, high)`` band for one metric's history.

    Half-width is ``max(k * 1.4826 * MAD, min_rel * |median|)``: noisy
    metrics earn wide bands from their own scatter, stable metrics keep
    a floor so exact repeats don't produce a zero-width band.
    """
    center = median(values)
    sigma = 1.4826 * mad(values, center)
    half = max(k * sigma, min_rel * abs(center))
    return center - half, center, center + half


# -- the history tripwire ------------------------------------------------------


@dataclass
class HistoryCheck:
    """One metric's verdict against its own history band."""

    metric: str
    #: "ok" | "regressed" | "insufficient" | "missing"
    status: str
    current: Optional[float] = None
    median: Optional[float] = None
    low: Optional[float] = None
    high: Optional[float] = None
    runs: int = 0
    #: lower-is-better metrics fail above the band, not below it
    inverse: bool = False

    @property
    def failed(self) -> bool:
        return self.status == "regressed"


def check_history(
    current: Dict[str, Any],
    store: HistoryStore,
    metrics: Sequence[str] = TRIPWIRE_METRICS,
    inverse_metrics: Sequence[str] = INVERSE_TRIPWIRE_METRICS,
    source: Optional[str] = "perf_smoke",
    fingerprint: Optional[str] = None,
    window: int = DEFAULT_WINDOW,
    min_runs: int = MIN_RUNS_FOR_BAND,
    k: float = K_MAD,
    min_rel: float = MIN_REL_BAND,
) -> List[HistoryCheck]:
    """Check a fresh report against per-metric history noise bands.

    A higher-is-better metric regresses when it falls below its band's
    low edge; a lower-is-better one when it rises above the high edge.
    Metrics with fewer than ``min_runs`` recorded values return
    ``insufficient`` (callers fall back to the single-baseline check);
    metrics absent from the current report return ``missing``.
    """
    checks: List[HistoryCheck] = []
    for path in metrics:
        is_inverse = path in inverse_metrics
        pairs = store.series(
            path, source=source, fingerprint=fingerprint, last=window
        )
        values = [value for _, value in pairs]
        cur = _lookup(current, path)
        if cur is None:
            checks.append(
                HistoryCheck(
                    path, "missing", runs=len(values), inverse=is_inverse
                )
            )
            continue
        if len(values) < min_runs:
            checks.append(
                HistoryCheck(
                    path,
                    "insufficient",
                    current=cur,
                    runs=len(values),
                    inverse=is_inverse,
                )
            )
            continue
        low, center, high = noise_band(values, k=k, min_rel=min_rel)
        failed = (cur > high) if is_inverse else (cur < low)
        checks.append(
            HistoryCheck(
                path,
                "regressed" if failed else "ok",
                current=cur,
                median=center,
                low=low,
                high=high,
                runs=len(values),
                inverse=is_inverse,
            )
        )
    return checks


# -- rendering -----------------------------------------------------------------


def _fmt(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.3f}"


def format_history_check(checks: Sequence[HistoryCheck]) -> str:
    """Human-readable verdict table for :func:`check_history`."""
    rows = []
    for check in checks:
        band = (
            f"[{_fmt(check.low)}, {_fmt(check.high)}]"
            if check.low is not None
            else "-"
        )
        status = check.status.upper() if check.failed else check.status
        direction = "<=" if check.inverse else ">="
        rows.append(
            [
                check.metric,
                check.runs,
                _fmt(check.median),
                band,
                _fmt(check.current),
                f"{status} ({direction} band)" if check.failed else status,
            ]
        )
    title = (
        "History tripwire (median/MAD noise bands over the last"
        f" {DEFAULT_WINDOW} runs; <{MIN_RUNS_FOR_BAND} runs ="
        " insufficient, falls back to the baseline check)"
    )
    return title + "\n" + _format_table(
        ["metric", "runs", "median", "band", "current", "verdict"], rows
    )


def format_history_list(records: Sequence[Dict[str, Any]]) -> str:
    """One row per recorded run (newest last)."""
    rows = []
    for record in records:
        stamp = record.get("timestamp")
        when = (
            time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime(stamp))
            if isinstance(stamp, (int, float))
            else "-"
        )
        rows.append(
            [
                when,
                str(record.get("sha", "?"))[:12],
                record.get("fingerprint_id", "-"),
                record.get("source", "-"),
                len(record.get("report", {})),
            ]
        )
    return _format_table(
        ["timestamp (utc)", "sha", "machine", "source", "report keys"], rows
    )


def format_history_show(
    store: HistoryStore,
    metric: str,
    source: Optional[str] = "perf_smoke",
    last: Optional[int] = None,
) -> str:
    """Per-run values + the current band for one metric."""
    pairs = store.series(metric, source=source, last=last)
    if not pairs:
        return f"history: no recorded values for {metric!r}"
    rows = []
    for record, value in pairs:
        stamp = record.get("timestamp")
        when = (
            time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime(stamp))
            if isinstance(stamp, (int, float))
            else "-"
        )
        rows.append([when, str(record.get("sha", "?"))[:12], f"{value:.4f}"])
    table = _format_table(["timestamp (utc)", "sha", metric], rows)
    values = [value for _, value in pairs]
    if len(values) >= MIN_RUNS_FOR_BAND:
        low, center, high = noise_band(values)
        table += (
            f"\n\nmedian {center:.4f}, MAD band"
            f" [{low:.4f}, {high:.4f}] over {len(values)} run(s)"
        )
    else:
        table += (
            f"\n\n{len(values)} run(s) recorded —"
            f" {MIN_RUNS_FOR_BAND} needed for a noise band"
        )
    return table
