"""Log-bucketed latency histograms for service telemetry.

A :class:`LatencyHistogram` holds one lifetime distribution — say, the
worker-compute span of every request a daemon ever served — in a fixed,
tiny footprint: counts per power-of-two microsecond bucket plus exact
``count``/``sum``/``min``/``max``.  Recording is O(1) (an ``int.bit_length``
and a dict increment), merging two histograms is exact, and quantiles are
read back with bounded relative error (one bucket, i.e. at most 2x),
which is plenty to tell a 3 ms cached round trip from a 300 ms compute.

The JSON form (:meth:`to_dict` / :meth:`from_dict`) round-trips exactly
and is what the service ``status`` endpoint and the metrics JSONL schema
v2 ``histograms`` record carry.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: Bucket ``i`` holds samples with ``2**(i-1) < microseconds <= 2**i``
#: (bucket 0: anything at or under one microsecond).  62 buckets cover
#: every representable duration.
_MAX_BUCKET = 62


def bucket_index(seconds: float) -> int:
    """Map a duration to its log2-microsecond bucket index."""
    micros = int(seconds * 1e6)
    if micros <= 1:
        return 0
    return min((micros - 1).bit_length(), _MAX_BUCKET)


def bucket_upper_seconds(index: int) -> float:
    """Inclusive upper edge of bucket ``index``, in seconds."""
    return (1 << index) / 1e6


class LatencyHistogram:
    """One latency distribution: log2 buckets + exact moments."""

    __slots__ = ("count", "sum_seconds", "min_seconds", "max_seconds", "buckets")

    def __init__(self) -> None:
        self.count: int = 0
        self.sum_seconds: float = 0.0
        self.min_seconds: Optional[float] = None
        self.max_seconds: Optional[float] = None
        #: bucket index -> sample count (sparse; most buckets stay absent)
        self.buckets: Dict[int, int] = {}

    # -- recording -----------------------------------------------------------

    def record(self, seconds: float) -> None:
        """Add one sample (negative clock skew clamps to zero)."""
        if seconds < 0.0:
            seconds = 0.0
        self.count += 1
        self.sum_seconds += seconds
        if self.min_seconds is None or seconds < self.min_seconds:
            self.min_seconds = seconds
        if self.max_seconds is None or seconds > self.max_seconds:
            self.max_seconds = seconds
        index = bucket_index(seconds)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram in (exact: buckets and moments sum)."""
        self.count += other.count
        self.sum_seconds += other.sum_seconds
        for source in (other.min_seconds,):
            if source is not None and (
                self.min_seconds is None or source < self.min_seconds
            ):
                self.min_seconds = source
        for source in (other.max_seconds,):
            if source is not None and (
                self.max_seconds is None or source > self.max_seconds
            ):
                self.max_seconds = source
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n

    # -- reading -------------------------------------------------------------

    @property
    def mean_seconds(self) -> float:
        return self.sum_seconds / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile (bucket upper edge; exact min/max at the
        ends).  ``q`` in [0, 1]."""
        if not self.count:
            return 0.0
        if q <= 0.0 and self.min_seconds is not None:
            return self.min_seconds
        if q >= 1.0 and self.max_seconds is not None:
            return self.max_seconds
        target = q * self.count
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= target:
                upper = bucket_upper_seconds(index)
                if self.max_seconds is not None:
                    upper = min(upper, self.max_seconds)
                return upper
        return self.max_seconds or 0.0

    def summary(self) -> Dict[str, Any]:
        """Compact human/JSON summary (what ``status`` tables render)."""
        return {
            "count": self.count,
            "mean_ms": round(self.mean_seconds * 1e3, 3),
            "p50_ms": round(self.quantile(0.50) * 1e3, 3),
            "p90_ms": round(self.quantile(0.90) * 1e3, 3),
            "p99_ms": round(self.quantile(0.99) * 1e3, 3),
            "max_ms": round((self.max_seconds or 0.0) * 1e3, 3),
        }

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Exact JSON form (inverse of :meth:`from_dict`)."""
        return {
            "count": self.count,
            "sum_seconds": self.sum_seconds,
            "min_seconds": self.min_seconds,
            "max_seconds": self.max_seconds,
            # JSON objects key by string; sorted for stable output bytes.
            "buckets": {
                str(index): self.buckets[index]
                for index in sorted(self.buckets)
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LatencyHistogram":
        hist = cls()
        hist.count = int(data.get("count", 0))
        hist.sum_seconds = float(data.get("sum_seconds", 0.0))
        hist.min_seconds = data.get("min_seconds")
        hist.max_seconds = data.get("max_seconds")
        hist.buckets = {
            int(index): int(n)
            for index, n in (data.get("buckets") or {}).items()
        }
        return hist


def format_histogram_table(
    histograms: Dict[str, "LatencyHistogram"],
) -> List[Tuple[str, Dict[str, Any]]]:
    """Sorted (name, summary) rows for table renderers."""
    return [
        (name, histograms[name].summary()) for name in sorted(histograms)
    ]
