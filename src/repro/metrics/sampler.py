"""A stdlib-only statistical (sampling) profiler for the experiment CLI.

The pipeline's deterministic instrumentation (:class:`MetricsSink` stage
timers) answers *which stage* is slow; it cannot answer *which function
inside the stage*.  Deterministic function-level profilers (``cProfile``)
answer that but distort the very hot paths we care about — the template
JIT's generated closures slow down several-fold under tracing, which
inverts conclusions about them.

:class:`SamplingProfiler` takes the production approach instead: a
background daemon thread wakes every ``interval`` seconds, grabs the
target thread's current frame via ``sys._current_frames()`` (a single C
call — the target is never traced, patched, or slowed beyond the GIL
time of the walk itself), and folds the stack into a counter.  Output is
the standard *folded stacks* format (``frame;frame;frame count`` per
line), directly loadable by flamegraph.pl, speedscope, and inferno.

Contract (same as ``MetricsSink``): **off by default, observation only**.
The profiler never touches pipeline state, so results with it attached
are byte-identical to results without — enforced by a parity test.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Dict, List, Optional

from .atomicio import atomic_write_text

#: Default sampling period: 5 ms ≈ 200 Hz — fine enough to resolve the
#: interpreter/JIT split at smoke scale, coarse enough that the sampler's
#: own GIL time stays well under 1%.
DEFAULT_INTERVAL = 0.005


def _fold_frame(frame) -> str:
    """Render one stack, root first, as ``module:function;...``."""
    parts: List[str] = []
    while frame is not None:
        code = frame.f_code
        module = os.path.splitext(os.path.basename(code.co_filename))[0]
        parts.append(f"{module}:{code.co_name}")
        frame = frame.f_back
    parts.reverse()
    return ";".join(parts)


class SamplingProfiler:
    """Samples one thread's stack on a timer into folded-stack counts.

    Args:
        interval: seconds between samples.
        target_thread_id: thread to sample; defaults to the thread that
            calls :meth:`start` (normally the main thread running the
            experiment).

    Use as a context manager::

        with SamplingProfiler() as prof:
            run_suite(...)
        prof.write_folded("profile.folded")
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        target_thread_id: Optional[int] = None,
    ) -> None:
        self.interval = interval
        self.target_thread_id = target_thread_id
        #: folded stack -> sample count
        self.counts: Dict[str, int] = {}
        #: total samples taken (== sum of counts)
        self.samples = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        if self.target_thread_id is None:
            self.target_thread_id = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    # -- the sampling loop ---------------------------------------------------

    def _run(self) -> None:
        target = self.target_thread_id
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(target)
            if frame is None:
                continue
            stack = _fold_frame(frame)
            del frame  # drop the frame reference before sleeping again
            self.counts[stack] = self.counts.get(stack, 0) + 1
            self.samples += 1

    # -- output --------------------------------------------------------------

    def folded(self) -> str:
        """The collected profile in folded-stacks text form (sorted for
        deterministic bytes given identical samples)."""
        return "".join(
            f"{stack} {self.counts[stack]}\n"
            for stack in sorted(self.counts)
        )

    def write_folded(self, path: os.PathLike) -> int:
        """Atomically write the folded profile; returns the stack count.

        Feed the file to any standard tool, e.g.::

            flamegraph.pl profile.folded > flame.svg
        """
        atomic_write_text(path, self.folded())
        return len(self.counts)
