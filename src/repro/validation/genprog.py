"""Seeded random MiniC program generator for differential fuzzing.

:func:`generate_source` maps ``(seed, config)`` deterministically to a
MiniC source string — same seed, same program, byte for byte — built so
that *every* generated program terminates and is semantically
well-defined:

* loops count a reserved variable (``lc…``) up to a small bound; the
  counter is never handed to the rest of the generator, so nothing can
  reassign it (`while` bodies increment first, making ``continue`` safe);
* helper functions only call helpers defined before them — no recursion;
* every divisor is forced odd (``| 1``) so division and modulo never
  fault, and every shift amount is masked to ``& 15``;
* every value that can accumulate across iterations (variables, memory
  cells, return values) is masked to ``value_mask``, so loop-carried
  products cannot grow into multi-kiloword integers;
* memory addresses are masked to a small window, keeping the heap dense
  and store/load aliasing likely (good for the memory-dependence logic).

Programs still cover the compiler's interesting surface: nested control
flow, switches (dense ``mbr`` tables), short-circuit logicals, memory
aliasing, calls, ``read()``-driven data-dependent branches, and prints
whose order and values make any miscompile observable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

#: Operators with plain (non-guarded) rendering.
_PLAIN_BINOPS = (
    "+",
    "-",
    "*",
    "&",
    "|",
    "^",
    "==",
    "!=",
    "<",
    "<=",
    ">",
    ">=",
)


@dataclass(frozen=True)
class GenConfig:
    """Size/shape knobs of the generator (all bounds inclusive)."""

    max_helpers: int = 3
    max_params: int = 3
    max_block_stmts: int = 4
    max_stmt_depth: int = 3
    max_expr_depth: int = 3
    max_loop_iters: int = 8
    max_switch_cases: int = 4
    #: Mask applied to every stored value (variables, memory, returns).
    value_mask: int = 0xFFFF
    #: Mask applied to every memory address.
    addr_mask: int = 63


DEFAULT_CONFIG = GenConfig()


class _FuncScope:
    """Names visible inside one function being generated."""

    def __init__(self, variables: List[str], callees: List[Tuple[str, int]]):
        self.variables = variables
        self.callees = callees
        self.loop_depth = 0


class _Generator:
    def __init__(self, rng: random.Random, config: GenConfig) -> None:
        self.rng = rng
        self.config = config
        self._fresh = 0
        self._fresh_loop = 0

    # -- names -----------------------------------------------------------

    def _var(self) -> str:
        self._fresh += 1
        return f"v{self._fresh}"

    def _loop_var(self) -> str:
        self._fresh_loop += 1
        return f"lc{self._fresh_loop}"

    # -- expressions ------------------------------------------------------

    def _leaf(self, scope: _FuncScope) -> str:
        roll = self.rng.random()
        if scope.variables and roll < 0.55:
            return self.rng.choice(scope.variables)
        if roll < 0.8:
            return str(self.rng.randint(0, 99))
        if roll < 0.9:
            return str(-self.rng.randint(1, 16))
        return "read()"

    def _expr(self, scope: _FuncScope, depth: int) -> str:
        if depth <= 0 or self.rng.random() < 0.25:
            return self._leaf(scope)
        roll = self.rng.random()
        if roll < 0.45:
            op = self.rng.choice(_PLAIN_BINOPS)
            lhs = self._expr(scope, depth - 1)
            rhs = self._expr(scope, depth - 1)
            return f"({lhs} {op} {rhs})"
        if roll < 0.55:
            op = self.rng.choice(("/", "%"))
            lhs = self._expr(scope, depth - 1)
            rhs = self._expr(scope, depth - 1)
            return f"({lhs} {op} (({rhs}) | 1))"
        if roll < 0.62:
            op = self.rng.choice(("<<", ">>"))
            lhs = self._expr(scope, depth - 1)
            rhs = self._expr(scope, depth - 1)
            return f"({lhs} {op} (({rhs}) & 15))"
        if roll < 0.72:
            op = self.rng.choice(("-", "!"))
            return f"({op}({self._expr(scope, depth - 1)}))"
        if roll < 0.82:
            op = self.rng.choice(("&&", "||"))
            lhs = self._expr(scope, depth - 1)
            rhs = self._expr(scope, depth - 1)
            return f"({lhs} {op} {rhs})"
        if roll < 0.9:
            return f"mem[{self._addr(scope, depth - 1)}]"
        if scope.callees:
            name, arity = self.rng.choice(scope.callees)
            args = ", ".join(
                self._expr(scope, depth - 1) for _ in range(arity)
            )
            return f"{name}({args})"
        return self._leaf(scope)

    def _addr(self, scope: _FuncScope, depth: int) -> str:
        return f"(({self._expr(scope, depth)}) & {self.config.addr_mask})"

    def _masked(self, scope: _FuncScope, depth: Optional[int] = None) -> str:
        if depth is None:
            depth = self.config.max_expr_depth
        return f"({self._expr(scope, depth)}) & {self.config.value_mask}"

    def _cond(self, scope: _FuncScope) -> str:
        return self._expr(scope, max(1, self.config.max_expr_depth - 1))

    # -- statements --------------------------------------------------------

    def _block(
        self, scope: _FuncScope, depth: int, indent: str, lines: List[str]
    ) -> None:
        """Emit one statement block.

        Variables declared inside are scoped to the block: a sibling
        branch (or code after the block) must not read a name whose
        initialization it may never have executed.  Generation also stops
        after a ``break``/``continue`` — statements behind one are dead,
        and declarations there would poison the scope.
        """
        visible = len(scope.variables)
        for _ in range(self.rng.randint(1, self.config.max_block_stmts)):
            if self._stmt(scope, depth, indent, lines):
                break
        del scope.variables[visible:]

    def _stmt(
        self, scope: _FuncScope, depth: int, indent: str, lines: List[str]
    ) -> bool:
        """Emit one statement; True when it unconditionally leaves the
        block (break/continue), ending generation of the block."""
        roll = self.rng.random()
        if roll < 0.22:
            name = self._var()
            lines.append(f"{indent}var {name} = {self._masked(scope)};")
            scope.variables.append(name)
            return False
        if roll < 0.42 and scope.variables:
            target = self.rng.choice(scope.variables)
            lines.append(f"{indent}{target} = {self._masked(scope)};")
            return False
        if roll < 0.52:
            lines.append(f"{indent}print({self._expr(scope, 2)});")
            return False
        if roll < 0.62:
            addr = self._addr(scope, 2)
            lines.append(f"{indent}mem[{addr}] = {self._masked(scope, 2)};")
            return False
        if roll < 0.67 and scope.loop_depth > 0:
            # Break/continue both safe: `while` bodies increment their
            # counter before any generated statement, `for` steps do it in
            # the loop header.
            lines.append(
                f"{indent}{self.rng.choice(('break', 'continue'))};"
            )
            return True
        if depth <= 0:
            lines.append(f"{indent}print({self._expr(scope, 1)});")
            return False
        inner = indent + "    "
        if roll < 0.78:
            lines.append(f"{indent}if ({self._cond(scope)}) {{")
            self._block(scope, depth - 1, inner, lines)
            if self.rng.random() < 0.5:
                lines.append(f"{indent}}} else {{")
                self._block(scope, depth - 1, inner, lines)
            lines.append(f"{indent}}}")
            return False
        if roll < 0.86:
            counter = self._loop_var()
            iters = self.rng.randint(1, self.config.max_loop_iters)
            lines.append(f"{indent}var {counter} = 0;")
            lines.append(f"{indent}while ({counter} < {iters}) {{")
            lines.append(f"{inner}{counter} = {counter} + 1;")
            scope.loop_depth += 1
            self._block(scope, depth - 1, inner, lines)
            scope.loop_depth -= 1
            lines.append(f"{indent}}}")
            return False
        if roll < 0.94:
            counter = self._loop_var()
            iters = self.rng.randint(1, self.config.max_loop_iters)
            lines.append(
                f"{indent}for (var {counter} = 0; {counter} < {iters};"
                f" {counter} = {counter} + 1) {{"
            )
            scope.loop_depth += 1
            self._block(scope, depth - 1, inner, lines)
            scope.loop_depth -= 1
            lines.append(f"{indent}}}")
            return False
        # Switch: dense labels near zero keep the mbr table small.  Case
        # bodies never hold break/continue (a break there would target the
        # enclosing loop, which generated code is better off doing
        # explicitly).
        case_count = self.rng.randint(1, self.config.max_switch_cases)
        labels = sorted(
            self.rng.sample(range(self.config.max_switch_cases * 2), case_count)
        )
        outer_depth = scope.loop_depth
        scope.loop_depth = 0
        lines.append(
            f"{indent}switch (({self._expr(scope, 2)})"
            f" & {self.config.max_switch_cases * 2 - 1}) {{"
        )
        body_indent = inner + "    "
        for label in labels:
            lines.append(f"{inner}case {label}: {{")
            self._block(scope, depth - 1, body_indent, lines)
            lines.append(f"{inner}}}")
        lines.append(f"{inner}default: {{")
        self._block(scope, depth - 1, body_indent, lines)
        lines.append(f"{inner}}}")
        lines.append(f"{indent}}}")
        scope.loop_depth = outer_depth
        return False

    # -- functions ---------------------------------------------------------

    def _function(
        self,
        name: str,
        params: List[str],
        callees: List[Tuple[str, int]],
        is_main: bool,
        lines: List[str],
    ) -> None:
        scope = _FuncScope(variables=list(params), callees=callees)
        lines.append(f"func {name}({', '.join(params)}) {{")
        self._block(scope, self.config.max_stmt_depth, "    ", lines)
        if is_main:
            lines.append(f"    print({self._masked(scope, 2)});")
        lines.append(f"    return {self._masked(scope, 2)};")
        lines.append("}")

    def generate(self) -> str:
        lines: List[str] = []
        callees: List[Tuple[str, int]] = []
        for index in range(self.rng.randint(0, self.config.max_helpers)):
            name = f"f{index}"
            params = [self._var() for _ in range(
                self.rng.randint(0, self.config.max_params)
            )]
            self._function(name, params, list(callees), False, lines)
            lines.append("")
            callees.append((name, len(params)))
        self._function("main", [], callees, True, lines)
        return "\n".join(lines) + "\n"


def generate_source(seed: int, config: GenConfig = DEFAULT_CONFIG) -> str:
    """Deterministically generate one MiniC program for ``seed``."""
    return _Generator(random.Random(seed), config).generate()
