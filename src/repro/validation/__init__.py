"""Differential validation: stage checkpoints, an end-to-end oracle, and a
property-based fuzzer.

Three layers of defence against silent miscompiles:

* **Stage checkpoints** (:mod:`repro.validation.invariants`) — structural
  invariants re-checked after formation, renaming, scheduling, and
  register allocation, selected by a :class:`ValidationConfig` threaded
  through :func:`repro.pipeline.run_scheme`.
* **Differential oracle** (:mod:`repro.experiments.validate`) — reference
  interpreter vs. VLIW-simulated scheduled code for every (workload,
  scheme) pair: ``python -m repro.experiments validate``.
* **Fuzzer** (:mod:`repro.validation.fuzz`) — seeded random MiniC programs
  (:mod:`repro.validation.genprog`) pushed through every scheme with all
  checkpoints on; failures shrink to minimal sources via delta debugging
  (:mod:`repro.validation.reduce`): ``python -m repro.experiments fuzz``.
"""

from .config import ValidationConfig, ValidationError
from .genprog import GenConfig, generate_source
from .invariants import (
    AllocationSnapshot,
    check_allocation_value_flow,
    check_cfg_consistency,
    check_formation_invariants,
    check_renamed_code,
    check_schedule_legality,
    require,
)

__all__ = [
    "AllocationSnapshot",
    "GenConfig",
    "ValidationConfig",
    "ValidationError",
    "check_allocation_value_flow",
    "check_cfg_consistency",
    "check_formation_invariants",
    "check_renamed_code",
    "check_schedule_legality",
    "generate_source",
    "require",
]
