"""Delta-debugging reducer for failing MiniC programs.

:func:`reduce_source` takes a MiniC source string and a *predicate* (a
callable that returns True when a candidate still reproduces the failure
of interest) and greedily shrinks the program while the predicate keeps
holding.  The fuzzer uses it to turn a few-hundred-line generated program
into the handful of statements that actually tickle the compiler bug.

The reducer works on the real frontend AST — candidates are produced by
:func:`render_module`, re-parsed by the predicate, and therefore always
syntactically valid; semantic validity is the predicate's problem (a
candidate that no longer compiles simply does not reproduce a
miscompilation, so the predicate rejects it and the mutation is undone).

Passes, iterated to a fixpoint under a predicate-evaluation budget:

1. drop whole helper functions (rejected automatically if still called);
2. drop individual statements from every statement list;
3. splice control flow — replace an ``if``/``while``/``for``/``switch``
   with one of its bodies inlined;
4. simplify expressions — replace a subtree with ``0`` or with one of
   its own operands.

Every accepted mutation strictly shrinks the AST, so the process
terminates; the returned source always satisfies the predicate.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from ..frontend import ast_nodes as ast
from ..frontend.parser import parse

#: A predicate deciding whether a candidate source still fails the same way.
Predicate = Callable[[str], bool]

#: Default budget of predicate evaluations for one reduction.
DEFAULT_MAX_CHECKS = 2000


# -- rendering ---------------------------------------------------------------


def _render_expr(expr: ast.Expr) -> str:
    """Render one expression, fully parenthesized (precedence-proof)."""
    if isinstance(expr, ast.IntLit):
        return str(expr.value) if expr.value >= 0 else f"(0 - {-expr.value})"
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.Unary):
        return f"({expr.op}{_render_expr(expr.operand)})"
    if isinstance(expr, (ast.Binary, ast.Logical)):
        return (
            f"({_render_expr(expr.lhs)} {expr.op} {_render_expr(expr.rhs)})"
        )
    if isinstance(expr, ast.Load):
        return f"mem[{_render_expr(expr.addr)}]"
    if isinstance(expr, ast.ReadExpr):
        return "read()"
    if isinstance(expr, ast.Call):
        args = ", ".join(_render_expr(arg) for arg in expr.args)
        return f"{expr.name}({args})"
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def _render_block(stmts: List[ast.Stmt], indent: str, out: List[str]) -> None:
    for stmt in stmts:
        _render_stmt(stmt, indent, out)


def _render_stmt(stmt: ast.Stmt, indent: str, out: List[str]) -> None:
    inner = indent + "    "
    if isinstance(stmt, ast.VarDecl):
        out.append(f"{indent}var {stmt.name} = {_render_expr(stmt.init)};")
    elif isinstance(stmt, ast.Assign):
        out.append(f"{indent}{stmt.name} = {_render_expr(stmt.value)};")
    elif isinstance(stmt, ast.StoreStmt):
        out.append(
            f"{indent}mem[{_render_expr(stmt.addr)}] ="
            f" {_render_expr(stmt.value)};"
        )
    elif isinstance(stmt, ast.If):
        out.append(f"{indent}if ({_render_expr(stmt.cond)}) {{")
        _render_block(stmt.then, inner, out)
        if stmt.orelse:
            out.append(f"{indent}}} else {{")
            _render_block(stmt.orelse, inner, out)
        out.append(f"{indent}}}")
    elif isinstance(stmt, ast.While):
        out.append(f"{indent}while ({_render_expr(stmt.cond)}) {{")
        _render_block(stmt.body, inner, out)
        out.append(f"{indent}}}")
    elif isinstance(stmt, ast.For):
        init = _render_inline(stmt.init)
        cond = _render_expr(stmt.cond) if stmt.cond is not None else ""
        step = _render_inline(stmt.step)
        out.append(f"{indent}for ({init}; {cond}; {step}) {{")
        _render_block(stmt.body, inner, out)
        out.append(f"{indent}}}")
    elif isinstance(stmt, ast.Switch):
        out.append(f"{indent}switch ({_render_expr(stmt.selector)}) {{")
        for case in stmt.cases:
            out.append(f"{inner}case {case.value}: {{")
            _render_block(case.body, inner + "    ", out)
            out.append(f"{inner}}}")
        if stmt.default:
            out.append(f"{inner}default: {{")
            _render_block(stmt.default, inner + "    ", out)
            out.append(f"{inner}}}")
        out.append(f"{indent}}}")
    elif isinstance(stmt, ast.Break):
        out.append(f"{indent}break;")
    elif isinstance(stmt, ast.Continue):
        out.append(f"{indent}continue;")
    elif isinstance(stmt, ast.Return):
        if stmt.value is None:
            out.append(f"{indent}return;")
        else:
            out.append(f"{indent}return {_render_expr(stmt.value)};")
    elif isinstance(stmt, ast.Print):
        out.append(f"{indent}print({_render_expr(stmt.value)});")
    elif isinstance(stmt, ast.ExprStmt):
        out.append(f"{indent}{_render_expr(stmt.value)};")
    else:
        raise TypeError(f"unknown statement node {type(stmt).__name__}")


def _render_inline(stmt: Optional[ast.Stmt]) -> str:
    """Render a for-header init/step statement without its semicolon."""
    if stmt is None:
        return ""
    out: List[str] = []
    _render_stmt(stmt, "", out)
    assert len(out) == 1 and out[0].endswith(";")
    return out[0][:-1]


def render_module(module: ast.Module) -> str:
    """Render a module back to parseable MiniC source."""
    out: List[str] = []
    for index, func in enumerate(module.functions):
        if index:
            out.append("")
        out.append(f"func {func.name}({', '.join(func.params)}) {{")
        _render_block(func.body, "    ", out)
        out.append("}")
    return "\n".join(out) + "\n"


# -- AST traversal -----------------------------------------------------------


def _stmt_lists(module: ast.Module) -> Iterator[List[ast.Stmt]]:
    """Yield every statement list in the module (bodies, arms, cases)."""

    def walk(stmts: List[ast.Stmt]) -> Iterator[List[ast.Stmt]]:
        yield stmts
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                yield from walk(stmt.then)
                yield from walk(stmt.orelse)
            elif isinstance(stmt, (ast.While, ast.For)):
                yield from walk(stmt.body)
            elif isinstance(stmt, ast.Switch):
                for case in stmt.cases:
                    yield from walk(case.body)
                yield from walk(stmt.default)

    for func in module.functions:
        yield from walk(func.body)


#: An expression slot: (read current value, write replacement).
_ExprSlot = Tuple[Callable[[], ast.Expr], Callable[[ast.Expr], None]]


def _attr_slot(obj: object, attr: str) -> _ExprSlot:
    return (
        lambda: getattr(obj, attr),
        lambda value: setattr(obj, attr, value),
    )


def _item_slot(items: List[ast.Expr], index: int) -> _ExprSlot:
    return (
        lambda: items[index],
        lambda value: items.__setitem__(index, value),
    )


def _expr_slots(module: ast.Module) -> List[_ExprSlot]:
    """Collect a slot for every expression node in the module, outermost
    first (replacing an outer node removes its whole subtree at once)."""
    slots: List[_ExprSlot] = []

    def visit_expr(slot: _ExprSlot) -> None:
        slots.append(slot)
        expr = slot[0]()
        if isinstance(expr, ast.Unary):
            visit_expr(_attr_slot(expr, "operand"))
        elif isinstance(expr, (ast.Binary, ast.Logical)):
            visit_expr(_attr_slot(expr, "lhs"))
            visit_expr(_attr_slot(expr, "rhs"))
        elif isinstance(expr, ast.Load):
            visit_expr(_attr_slot(expr, "addr"))
        elif isinstance(expr, ast.Call):
            for index in range(len(expr.args)):
                visit_expr(_item_slot(expr.args, index))

    def visit_stmt(stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            visit_expr(_attr_slot(stmt, "init"))
        elif isinstance(stmt, ast.Assign):
            visit_expr(_attr_slot(stmt, "value"))
        elif isinstance(stmt, ast.StoreStmt):
            visit_expr(_attr_slot(stmt, "addr"))
            visit_expr(_attr_slot(stmt, "value"))
        elif isinstance(stmt, ast.If):
            visit_expr(_attr_slot(stmt, "cond"))
            for child in stmt.then:
                visit_stmt(child)
            for child in stmt.orelse:
                visit_stmt(child)
        elif isinstance(stmt, ast.While):
            visit_expr(_attr_slot(stmt, "cond"))
            for child in stmt.body:
                visit_stmt(child)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                visit_stmt(stmt.init)
            if stmt.cond is not None:
                visit_expr(_attr_slot(stmt, "cond"))
            if stmt.step is not None:
                visit_stmt(stmt.step)
            for child in stmt.body:
                visit_stmt(child)
        elif isinstance(stmt, ast.Switch):
            visit_expr(_attr_slot(stmt, "selector"))
            for case in stmt.cases:
                for child in case.body:
                    visit_stmt(child)
            for child in stmt.default:
                visit_stmt(child)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                visit_expr(_attr_slot(stmt, "value"))
        elif isinstance(stmt, (ast.Print, ast.ExprStmt)):
            visit_expr(_attr_slot(stmt, "value"))

    for func in module.functions:
        for stmt in func.body:
            visit_stmt(stmt)
    return slots


# -- reduction ---------------------------------------------------------------


class _Reducer:
    def __init__(
        self, module: ast.Module, predicate: Predicate, max_checks: int
    ) -> None:
        self.module = module
        self.predicate = predicate
        self.checks_left = max_checks
        self.accepted = render_module(module)

    def _try(self) -> bool:
        """Does the current (mutated) module still reproduce the failure?"""
        candidate = render_module(self.module)
        if candidate == self.accepted:
            # The mutation changed nothing observable (e.g. it rewired a
            # subtree already detached by an earlier accepted replacement):
            # rejecting it keeps the fixpoint loop honest.
            return False
        if self.checks_left <= 0:
            return False
        self.checks_left -= 1
        if self.predicate(candidate):
            self.accepted = candidate
            return True
        return False

    # Each pass returns True when it accepted at least one mutation.

    def drop_functions(self) -> bool:
        progress = False
        functions = self.module.functions
        for index in range(len(functions) - 1, -1, -1):
            if functions[index].name == "main":
                continue
            victim = functions.pop(index)
            if self._try():
                progress = True
            else:
                functions.insert(index, victim)
        return progress

    def drop_statements(self) -> bool:
        progress = False
        for stmts in list(_stmt_lists(self.module)):
            for index in range(len(stmts) - 1, -1, -1):
                victim = stmts.pop(index)
                if self._try():
                    progress = True
                else:
                    stmts.insert(index, victim)
        return progress

    def splice_bodies(self) -> bool:
        progress = False
        for stmts in list(_stmt_lists(self.module)):
            index = 0
            while index < len(stmts):
                stmt = stmts[index]
                replacements: List[List[ast.Stmt]] = []
                if isinstance(stmt, ast.If):
                    replacements = [stmt.then, stmt.orelse]
                elif isinstance(stmt, (ast.While, ast.For)):
                    replacements = [stmt.body]
                elif isinstance(stmt, ast.Switch):
                    replacements = [case.body for case in stmt.cases]
                    replacements.append(stmt.default)
                spliced = False
                for body in replacements:
                    stmts[index : index + 1] = body
                    if self._try():
                        progress = spliced = True
                        break
                    stmts[index : index + len(body)] = [stmt]
                if not spliced:
                    index += 1
        return progress

    def simplify_exprs(self) -> bool:
        progress = False
        for get, put in _expr_slots(self.module):
            expr = get()
            candidates: List[ast.Expr] = []
            if not isinstance(expr, ast.IntLit):
                candidates.append(ast.IntLit(line=0, value=0))
            if isinstance(expr, (ast.Binary, ast.Logical)):
                candidates.extend([expr.lhs, expr.rhs])
            elif isinstance(expr, ast.Unary):
                candidates.append(expr.operand)
            elif isinstance(expr, ast.Load):
                candidates.append(expr.addr)
            for candidate in candidates:
                put(candidate)
                if self._try():
                    progress = True
                    break
                put(expr)
        return progress

    def run(self) -> None:
        while self.checks_left > 0:
            progress = self.drop_functions()
            progress = self.drop_statements() or progress
            progress = self.splice_bodies() or progress
            progress = self.simplify_exprs() or progress
            if not progress:
                break


def reduce_source(
    source: str,
    predicate: Predicate,
    max_checks: int = DEFAULT_MAX_CHECKS,
) -> str:
    """Shrink ``source`` while ``predicate`` keeps returning True.

    ``predicate`` must hold for ``source`` itself (checked); the returned
    program — possibly ``source`` unchanged, re-rendered — satisfies it
    too.  ``max_checks`` bounds the number of predicate evaluations.
    """
    module = parse(source)
    baseline = render_module(module)
    if not predicate(baseline):
        raise ValueError(
            "predicate does not hold for the re-rendered input program"
        )
    reducer = _Reducer(module, predicate, max_checks)
    reducer.run()
    return reducer.accepted
