"""Structural invariant checks for every pipeline stage.

Each function returns a list of human-readable problem strings (empty =
invariant holds); :func:`require` turns a non-empty list into a
:class:`~repro.validation.config.ValidationError`.  The checks never
mutate what they inspect, so a validated run is bit-identical to an
unvalidated one.

The allocation check deserves a note: rather than re-deriving interference
sets, :func:`check_allocation_value_flow` *symbolically re-executes* the
allocator's output.  Every definition site gets a value id; the physical
code must deliver exactly the value ids the virtual code delivered — to
each instruction's sources, and to each exit's live-out registers (via
their allocated homes, register or spill slot).  A clobbered live range,
a wrong spill slot, or a lost materialization all surface as a value-id
mismatch at the first consumer that observes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..formation.superblock import FormationResult, verify_formation
from ..ir.cfg import Program
from ..ir.instructions import Instruction, Opcode
from ..ir.verify import verify_program
from ..scheduling.list_scheduler import SuperblockSchedule, verify_schedule
from ..scheduling.sbcode import SuperblockCode
from .config import ValidationError


def require(stage: str, problems: Sequence[str]) -> None:
    """Raise :class:`ValidationError` when ``problems`` is non-empty."""
    if problems:
        raise ValidationError(stage, problems)


# -- CFG / formation ----------------------------------------------------------


def check_cfg_consistency(program: Program) -> List[str]:
    """IR verifier plus edge-map consistency for a whole program."""
    problems = verify_program(program)
    for proc in program.procedures():
        labels = set(proc.labels)
        if proc.labels and proc.entry_label not in labels:
            problems.append(f"{proc.name}: entry label missing")
        for label in proc.labels:
            block = proc.block(label)
            if block.label != label:
                problems.append(
                    f"{proc.name}: block registered as {label} is"
                    f" labelled {block.label}"
                )
        # The predecessor map must be the exact transpose of the edge
        # list — a desynchronized map means some pass edited targets
        # without rewiring.
        preds = proc.predecessors()
        derived: Dict[str, List[str]] = {label: [] for label in proc.labels}
        for src, dst in proc.edges():
            if dst in derived:
                derived[dst].append(src)
        if preds != derived:
            problems.append(f"{proc.name}: predecessor map out of sync")
    return problems


def check_formation_invariants(result: FormationResult) -> List[str]:
    """Superblock partition / single-entry / connectivity invariants."""
    problems = verify_formation(result)
    for proc_name, sbs in result.superblocks.items():
        proc = result.program.procedure(proc_name)
        for sb in sbs:
            for label in sb.labels:
                if not proc.has_block(label):
                    problems.append(
                        f"{proc_name}: superblock {sb.head} lists missing"
                        f" block {label}"
                    )
    return problems


# -- renaming -----------------------------------------------------------------


def check_renamed_code(code: SuperblockCode, arch_bound: int) -> List[str]:
    """SSA-ness of the renamed trace.

    After :func:`~repro.scheduling.renaming.rename_superblock`, every
    register at or above ``arch_bound`` is a renamer-created temporary:
    defined exactly once, before all of its uses.  Architectural registers
    may only be (re)written by materializing moves.
    """
    problems: List[str] = []
    defined_at: Dict[int, int] = {}
    for index, instr in enumerate(code.instructions):
        for src in instr.srcs:
            if src >= arch_bound and src not in defined_at:
                problems.append(
                    f"{code.proc}/{code.head}@{index}: temp v{src} used"
                    f" before definition"
                )
        dest = instr.dest
        if dest is None:
            continue
        if dest >= arch_bound:
            if dest in defined_at:
                problems.append(
                    f"{code.proc}/{code.head}@{index}: temp v{dest}"
                    f" redefined (first at {defined_at[dest]})"
                )
            else:
                defined_at[dest] = index
        elif instr.opcode is not Opcode.MOV:
            problems.append(
                f"{code.proc}/{code.head}@{index}: non-move"
                f" {instr.opcode.value} writes architectural v{dest}"
            )
    return problems


# -- scheduling ---------------------------------------------------------------


def check_schedule_legality(schedule: SuperblockSchedule) -> List[str]:
    """Dependence, latency, and machine-resource legality of a schedule."""
    return verify_schedule(schedule)


def check_pipelined_loop(loop) -> List[str]:
    """Legality of a modulo-scheduled loop via straight-line expansion.

    Flattens several overlapped iterations of the
    :class:`~repro.scheduling.pipeline.PipelinedLoop` back into one
    straight-line schedule and applies the full schedule-legality check
    to it, so the kernel/prologue rotation is validated by the same
    invariants as every other schedule.
    """
    from ..scheduling.pipeline import expansion_problems

    return expansion_problems(loop)


# -- register allocation ------------------------------------------------------

#: Value id: ("init", virtual reg) for values live at superblock entry,
#: ("def", i) for the value defined by pre-allocation instruction ``i``.
ValueId = Tuple[str, int]


@dataclass
class AllocationSnapshot:
    """Pre-allocation state of one superblock, captured for the value-flow
    check (allocation rewrites the code and its exit sets in place)."""

    instructions: List[Instruction]
    exit_live: Dict[int, Set[int]]

    @classmethod
    def capture(cls, code: SuperblockCode) -> "AllocationSnapshot":
        return cls(
            instructions=[instr.copy() for instr in code.instructions],
            exit_live={
                index: set(live)
                for index, live in code.exit_live_by_index().items()
            },
        )


def check_allocation_value_flow(
    code: SuperblockCode,
    snapshot: AllocationSnapshot,
    arch_map: Dict[int, int],
    arch_spilled: Dict[int, int],
    num_registers: int,
) -> List[str]:
    """Symbolic value-flow equivalence of allocated vs. pre-allocation code.

    Walks both instruction lists in lockstep (the allocator only inserts
    ``spld``/``spst`` around existing instructions), tracking which value
    id each virtual register, physical register, and spill slot holds.
    Reports any instruction whose physical sources deliver different value
    ids than its virtual sources did, and any exit whose live
    architectural registers are no longer available (with the right
    values) in their allocated homes.
    """
    where = f"{code.proc}/{code.head}"
    problems: List[str] = []

    # Pass 1: the virtual (pre-allocation) code defines the expectation.
    before = snapshot.instructions
    venv: Dict[int, ValueId] = {}
    expected_srcs: List[Tuple[ValueId, ...]] = []
    exit_expect: Dict[int, Dict[int, ValueId]] = {}
    for index, instr in enumerate(before):
        expected_srcs.append(
            tuple(venv.get(src, ("init", src)) for src in instr.srcs)
        )
        if index in snapshot.exit_live:
            exit_expect[index] = {
                reg: venv.get(reg, ("init", reg))
                for reg in snapshot.exit_live[index]
            }
        if instr.dest is not None:
            venv[instr.dest] = ("def", index)

    # Pass 2: the physical code must deliver the same value ids.
    penv: Dict[int, ValueId] = {
        phys: ("init", arch) for arch, phys in arch_map.items()
    }
    slots: Dict[int, ValueId] = {
        slot: ("init", arch) for arch, slot in arch_spilled.items()
    }
    position = 0  # index into ``before``
    for instr in code.instructions:
        for reg in instr.srcs + (
            (instr.dest,) if instr.dest is not None else ()
        ):
            if not 0 <= reg < num_registers:
                problems.append(
                    f"{where}: physical register v{reg} out of range"
                )
        if instr.opcode is Opcode.SPILL_LD:
            value = slots.get(instr.imm)
            if value is None:
                problems.append(
                    f"{where}: reload from uninitialized slot {instr.imm}"
                )
                value = ("slot", instr.imm)
            penv[instr.dest] = value
            continue
        if instr.opcode is Opcode.SPILL_ST:
            slots[instr.imm] = penv.get(
                instr.srcs[0], ("init", instr.srcs[0])
            )
            continue
        if position >= len(before):
            problems.append(f"{where}: extra instruction {instr!r}")
            break
        original = before[position]
        if (
            instr.opcode is not original.opcode
            or instr.imm != original.imm
            or instr.targets != original.targets
            or instr.callee != original.callee
        ):
            problems.append(
                f"{where}@{position}: allocated instruction {instr!r} does"
                f" not correspond to {original!r}"
            )
            break
        actual = tuple(
            penv.get(src, ("init", src)) for src in instr.srcs
        )
        if actual != expected_srcs[position]:
            problems.append(
                f"{where}@{position}: {original.opcode.value} sources"
                f" carry {actual}, expected {expected_srcs[position]}"
            )
        if position in exit_expect:
            for reg, value in sorted(exit_expect[position].items()):
                if reg in arch_map:
                    got = penv.get(arch_map[reg])
                elif reg in arch_spilled:
                    got = slots.get(arch_spilled[reg])
                else:
                    problems.append(
                        f"{where}@{position}: exit-live v{reg} has no"
                        f" allocated home"
                    )
                    continue
                if got != value:
                    problems.append(
                        f"{where}@{position}: exit-live v{reg} holds"
                        f" {got}, expected {value}"
                    )
        if instr.dest is not None:
            penv[instr.dest] = ("def", position)
        position += 1
    if position != len(before):
        problems.append(
            f"{where}: allocated code covers {position} of"
            f" {len(before)} instructions"
        )
    return problems
