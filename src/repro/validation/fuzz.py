"""Differential fuzzing driver: random MiniC programs through the whole
compiler, checked against the reference interpreter.

For each seed the driver generates one program
(:func:`~repro.validation.genprog.generate_source`), derives deterministic
training/testing input tapes from the same seed, runs the reference
interpreter, and then pushes the program through the full pipeline —
formation, compaction, allocation, scheduling, simulation — under every
requested scheme with all stage checkpoints enabled
(:meth:`~repro.validation.ValidationConfig.full`).  Any divergence
(:class:`~repro.pipeline.OutputMismatch`), checkpoint violation
(:class:`~repro.validation.ValidationError`), or crash is recorded as a
:class:`FuzzFailure` classified by *kind* (stage + exception type), and
the offending program is shrunk with
:func:`~repro.validation.reduce.reduce_source` under a same-kind
predicate, so every report carries a minimal reproducer.

Everything is deterministic: seed ``k`` always denotes the same program
and the same input tapes, so a failure report is a complete repro recipe.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..frontend import compile_source
from ..interp.interpreter import run_program
from ..pipeline import run_scheme
from ..trace.provenance import require_provenance
from ..trace.tracer import Tracer
from .config import ValidationConfig
from .genprog import DEFAULT_CONFIG, GenConfig, generate_source
from .reduce import DEFAULT_MAX_CHECKS, reduce_source

#: Schemes each seed is pushed through: the paper's basic-block baseline,
#: an edge-profile mutation scheme, and a path-profile scheme — the three
#: structurally distinct formation/compaction flows.
DEFAULT_SCHEMES: Tuple[str, ...] = ("BB", "M4", "P4")

#: Input-tape length per seed (words); ``read()`` past the end yields -1.
TAPE_WORDS = 48

STEP_LIMIT = 5_000_000
CYCLE_LIMIT = 20_000_000


def fuzz_tapes(seed: int) -> Tuple[List[int], List[int]]:
    """Deterministic (training, testing) input tapes for one seed."""
    rng = random.Random(seed ^ 0x9E3779B9)
    train = [rng.randint(0, 255) for _ in range(TAPE_WORDS)]
    test = [rng.randint(0, 255) for _ in range(TAPE_WORDS)]
    return train, test


@dataclass
class FuzzFailure:
    """One seed that provoked a compiler failure."""

    seed: int
    #: ``stage:ExceptionName`` — e.g. ``P4:OutputMismatch``,
    #: ``M4:ValidationError``, ``frontend:MiniCError``.
    kind: str
    message: str
    #: The generated program.
    source: str
    #: Delta-debugged minimal reproducer (None when reduction was off).
    reduced: Optional[str] = None


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    seeds: int
    failures: List[FuzzFailure]

    @property
    def ok(self) -> bool:
        return not self.failures


def classify_failure(
    source: str,
    seed: int,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    validation: Optional[ValidationConfig] = None,
) -> Optional[Tuple[str, str]]:
    """Run the whole differential check on ``source`` and return the first
    failure as ``(kind, message)``, or None when everything agrees.

    The classification doubles as the reducer's predicate: a candidate
    reproduces the original failure iff it yields the same *kind*.
    """
    if validation is None:
        validation = ValidationConfig.full()
    train, test = fuzz_tapes(seed)
    try:
        program = compile_source(source)
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        return f"frontend:{type(exc).__name__}", str(exc)
    try:
        reference = run_program(
            program, input_tape=test, step_limit=STEP_LIMIT
        )
    except Exception as exc:  # noqa: BLE001
        return f"interp:{type(exc).__name__}", str(exc)
    for scheme_name in schemes:
        try:
            # Running under a tracer stamps origin ids onto the source
            # program, letting the provenance invariant cross-check the
            # compiled schedules: every scheduled instruction — including
            # tail-duplicated copies, compensation movs, and spill code —
            # must resolve to exactly one source instruction.
            outcome = run_scheme(
                program,
                scheme_name,
                train,
                test,
                reference=reference,
                validation=validation,
                step_limit=STEP_LIMIT,
                cycle_limit=CYCLE_LIMIT,
                tracer=Tracer(),
            )
            # Inlining schemes rewrite the pre-formation program; their
            # ops resolve against that re-stamped source, not the input.
            source = outcome.formation.source_program or program
            require_provenance(source, outcome.compiled)
        except Exception as exc:  # noqa: BLE001
            return f"{scheme_name}:{type(exc).__name__}", str(exc)
    return None


def fuzz_one(
    seed: int,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    gen_config: GenConfig = DEFAULT_CONFIG,
    validation: Optional[ValidationConfig] = None,
    reduce: bool = True,
    max_checks: int = DEFAULT_MAX_CHECKS,
) -> Optional[FuzzFailure]:
    """Fuzz one seed; return its (reduced) failure, or None on success."""
    source = generate_source(seed, gen_config)
    found = classify_failure(source, seed, schemes, validation)
    if found is None:
        return None
    kind, message = found
    failure = FuzzFailure(seed=seed, kind=kind, message=message, source=source)
    if reduce:
        def predicate(candidate: str) -> bool:
            got = classify_failure(candidate, seed, schemes, validation)
            return got is not None and got[0] == kind

        failure.reduced = reduce_source(source, predicate, max_checks)
    return failure


def run_fuzz(
    seeds: int,
    start: int = 0,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    gen_config: GenConfig = DEFAULT_CONFIG,
    validation: Optional[ValidationConfig] = None,
    reduce: bool = True,
    verbose: bool = False,
) -> FuzzReport:
    """Fuzz seeds ``start .. start + seeds - 1`` and collect failures."""
    failures: List[FuzzFailure] = []
    for offset in range(seeds):
        seed = start + offset
        if verbose and offset % 10 == 0:
            print(
                f"[fuzz] seed {seed} ({offset}/{seeds},"
                f" {len(failures)} failure(s))",
                flush=True,
            )
        failure = fuzz_one(
            seed,
            schemes=schemes,
            gen_config=gen_config,
            validation=validation,
            reduce=reduce,
        )
        if failure is not None:
            failures.append(failure)
            if verbose:
                print(f"[fuzz] seed {seed} FAILED: {failure.kind}", flush=True)
    return FuzzReport(seeds=seeds, failures=failures)


def format_fuzz_report(report: FuzzReport) -> str:
    """Human-readable campaign summary, with minimal repros inline."""
    lines = [
        f"fuzz: {report.seeds} seed(s),"
        f" {len(report.failures)} failure(s)"
    ]
    for failure in report.failures:
        lines.append("")
        lines.append(f"seed {failure.seed}: {failure.kind}")
        lines.append(f"  {failure.message}")
        repro = failure.reduced or failure.source
        label = "reduced repro" if failure.reduced else "repro (unreduced)"
        lines.append(f"  {label}:")
        for line in repro.rstrip("\n").splitlines():
            lines.append(f"    {line}")
    if report.ok:
        lines.append("all seeds passed: interpreter and scheduled code agree")
    return "\n".join(lines)
