"""Configuration for the stage-checkpoint validation subsystem.

A :class:`ValidationConfig` travels with a pipeline invocation
(:func:`repro.pipeline.run_scheme` and friends) and selects which
structural invariants are re-checked after each transform.  The checks are
pure observers: with every flag off (or ``validation=None``, the default)
the pipeline's behaviour and output are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


class ValidationError(Exception):
    """A pipeline transform produced structurally invalid code.

    Always a compiler bug, never a user error.  ``stage`` names the
    checkpoint that fired; ``problems`` lists every violated invariant.
    """

    def __init__(self, stage: str, problems: Sequence[str]) -> None:
        self.stage = stage
        self.problems: List[str] = list(problems)
        shown = "; ".join(self.problems[:5])
        extra = len(self.problems) - 5
        if extra > 0:
            shown += f"; ... ({extra} more)"
        super().__init__(f"[{stage}] {shown}")


@dataclass(frozen=True)
class ValidationConfig:
    """Which stage checkpoints to run.  Frozen (and picklable) so one
    config can be shared across worker processes."""

    #: Verify the IR (CFG edge consistency, terminators, call targets)
    #: after superblock formation rewrites the program.
    check_ir: bool = True
    #: Re-check the formation result's structural invariants (partition,
    #: single entry, connectivity) at the pipeline checkpoint.
    check_formation: bool = True
    #: After renaming: every renamer-created temporary is defined exactly
    #: once, before its uses, and only moves write architectural registers.
    check_renaming: bool = True
    #: Verify every preschedule and final schedule against the dependence
    #: and machine-resource rules.
    check_schedule: bool = True
    #: After register allocation: symbolically re-execute the rewritten
    #: code and check it computes the same values as the pre-allocation
    #: code (catches interference/clobbering and broken spill code).
    check_allocation: bool = True

    @classmethod
    def full(cls) -> "ValidationConfig":
        """Every checkpoint on (the ``validate``/``fuzz`` default)."""
        return cls()

    @classmethod
    def none(cls) -> "ValidationConfig":
        """Every checkpoint off (same behaviour as ``validation=None``)."""
        return cls(
            check_ir=False,
            check_formation=False,
            check_renaming=False,
            check_schedule=False,
            check_allocation=False,
        )

    @property
    def any_formation_checks(self) -> bool:
        """True when the formation-stage checkpoint must run."""
        return self.check_ir or self.check_formation

    @property
    def any_compact_checks(self) -> bool:
        """True when any compaction-stage checkpoint must run."""
        return (
            self.check_renaming
            or self.check_schedule
            or self.check_allocation
        )
