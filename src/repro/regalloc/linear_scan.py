"""Linear-scan register allocation onto the 128-register machine.

The paper's back end preschedules each superblock with an infinite-register
variant of the target, allocates registers, and postschedules restricted by
the allocation decisions (Section 2.3).  This module is the middle step.

Register classes after renaming:

* **architectural registers** (below the procedure's pre-renaming bound) are
  the program's own virtual registers; their values cross superblock
  boundaries, so they receive *procedure-wide* physical registers —
  parameters first, then by static use count.  Overflow is spilled to
  per-activation stack slots (``spld``/``spst``).
* **temporaries** (created by renaming) never live across a superblock
  boundary; each superblock linear-scans them over its preschedule order
  into the physical registers left over after the architectural assignment,
  spilling the interval with the furthest end on pressure.

A few physical registers are reserved as spill scratch; the postscheduler's
dependence graph serializes their reuse.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir import instructions as ins
from ..ir.instructions import Instruction, Opcode
from ..scheduling.list_scheduler import SuperblockSchedule
from ..scheduling.machine import MachineModel
from ..scheduling.sbcode import SuperblockCode

#: Number of physical registers reserved as spill scratch (value carriers).
SCRATCH_COUNT = 3


class AllocationError(Exception):
    """Raised when a procedure cannot be allocated (e.g. too many params)."""


@dataclass
class AllocationStats:
    """Summary of one procedure's allocation."""

    proc: str
    arch_assigned: int = 0
    arch_spilled: int = 0
    temps_assigned: int = 0
    temps_spilled: int = 0
    spill_instructions: int = 0


@dataclass
class ProcedureAllocation:
    """Physical assignment for one procedure."""

    #: architectural register -> physical register
    arch_map: Dict[int, int]
    #: architectural registers spilled to stack slots (reg -> slot number)
    arch_spilled: Dict[int, int]
    #: remapped parameter registers, in order
    params: Tuple[int, ...]
    stats: AllocationStats = None


def _use_counts(codes: Sequence[SuperblockCode], bound: int) -> Dict[int, int]:
    counts: Dict[int, int] = {}
    for code in codes:
        for instr in code.instructions:
            regs = list(instr.srcs)
            if instr.dest is not None:
                regs.append(instr.dest)
            for reg in regs:
                if reg < bound:
                    counts[reg] = counts.get(reg, 0) + 1
    return counts


def allocate_procedure(
    proc_name: str,
    params: Sequence[int],
    codes: Sequence[SuperblockCode],
    preschedules: Sequence[SuperblockSchedule],
    machine: MachineModel,
    arch_bound: int,
) -> ProcedureAllocation:
    """Assign physical registers and rewrite every superblock in place.

    Args:
        proc_name: procedure being allocated (for diagnostics).
        params: the procedure's parameter registers (architectural).
        codes: renamed superblock codes (mutated in place).
        preschedules: infinite-register schedules aligned with ``codes``
            (supply the linear-scan ordering).
        machine: provides ``num_registers``.
        arch_bound: registers below this are architectural.

    Returns:
        The procedure-wide :class:`ProcedureAllocation`.
    """
    stats = AllocationStats(proc=proc_name)
    total = machine.num_registers
    scratch = list(range(total - SCRATCH_COUNT, total))
    allocatable = total - SCRATCH_COUNT

    counts = _use_counts(codes, arch_bound)
    for p in params:
        counts.setdefault(p, 0)
    arch_regs = sorted(
        counts, key=lambda r: (r not in params, -counts[r], r)
    )
    if len(params) > allocatable // 2:
        raise AllocationError(
            f"{proc_name}: {len(params)} parameters exceed the register file"
        )
    # Architectural registers get at most half the allocatable file so the
    # temporaries always have room; overflow spills.
    arch_budget = max(len(params), min(len(arch_regs), allocatable // 2))
    arch_map: Dict[int, int] = {}
    arch_spilled: Dict[int, int] = {}
    next_slot = 0
    for reg in arch_regs:
        if len(arch_map) < arch_budget:
            arch_map[reg] = len(arch_map)
        else:
            arch_spilled[reg] = next_slot
            next_slot += 1
    stats.arch_assigned = len(arch_map)
    stats.arch_spilled = len(arch_spilled)

    temp_pool = list(range(len(arch_map), allocatable))

    for code, presched in zip(codes, preschedules):
        _allocate_superblock(
            code,
            presched,
            arch_bound,
            arch_map,
            arch_spilled,
            temp_pool,
            scratch,
            stats,
        )
        # Exit-live sets move to the physical namespace; spilled values live
        # in memory, so they leave the register live sets.
        for info in code.exits.values():
            info.live = {
                arch_map[r] for r in info.live if r in arch_map
            }

    return ProcedureAllocation(
        arch_map=arch_map,
        arch_spilled=arch_spilled,
        params=tuple(arch_map[p] for p in params),
        stats=stats,
    )


def _temp_intervals(
    code: SuperblockCode,
    arch_bound: int,
) -> Dict[int, Tuple[int, int]]:
    """Temp register -> (first position, last position) over the *linear
    program order*.

    Intervals must be computed in program order, not preschedule order: the
    postscheduler rebuilds its dependence graph from the linear instruction
    list, so register reuse is only safe when the shared ranges are disjoint
    in that order.  (Reuse that was disjoint merely in the preschedule's
    cycle order turns a dead value into a live one when the postschedule
    places the ops differently — a subtle clobber.)  The postscheduler's
    anti/output dependences then serialize every reuse correctly.
    """
    intervals: Dict[int, Tuple[int, int]] = {}
    for index, instr in enumerate(code.instructions):
        regs = list(instr.srcs)
        if instr.dest is not None:
            regs.append(instr.dest)
        for reg in regs:
            if reg < arch_bound:
                continue
            if reg not in intervals:
                intervals[reg] = (index, index)
            else:
                lo, hi = intervals[reg]
                intervals[reg] = (min(lo, index), max(hi, index))
    return intervals


def _allocate_superblock(
    code: SuperblockCode,
    presched: SuperblockSchedule,
    arch_bound: int,
    arch_map: Dict[int, int],
    arch_spilled: Dict[int, int],
    temp_pool: List[int],
    scratch: List[int],
    stats: AllocationStats,
) -> None:
    intervals = _temp_intervals(code, arch_bound)
    order = sorted(intervals, key=lambda r: intervals[r][0])
    # Round-robin (FIFO) reuse: taking the *least* recently freed register
    # maximizes reuse distance, minimizing the false anti/output
    # dependences the postscheduler must honor.  LIFO reuse would undo the
    # renamer's work and serialize the schedule.
    free = deque(temp_pool)
    active: List[Tuple[int, int]] = []  # (end, reg)
    temp_map: Dict[int, int] = {}
    temp_spilled: Dict[int, int] = {}
    # Temp slots start after the architectural slots; they are superblock
    # local, and superblocks of one activation never overlap, so slots may
    # be reused across superblocks.
    next_slot = len(arch_spilled)

    for reg in order:
        start, end = intervals[reg]
        # Expire finished intervals, returning their registers to the pool.
        still_active: List[Tuple[int, int]] = []
        for end_pos, active_reg in active:
            if end_pos <= start:
                free.append(temp_map[active_reg])
            else:
                still_active.append((end_pos, active_reg))
        active = still_active
        if free:
            temp_map[reg] = free.popleft()
            active.append((end, reg))
            stats.temps_assigned += 1
        else:
            # Spill the interval with the furthest end (it or the newcomer).
            active.sort()
            victim_end, victim = active[-1] if active else (end, reg)
            if active and victim_end > end:
                active.pop()
                temp_spilled[victim] = next_slot
                next_slot += 1
                stats.temps_spilled += 1
                temp_map[reg] = temp_map.pop(victim)
                active.append((end, reg))
                stats.temps_assigned += 1
            else:
                temp_spilled[reg] = next_slot
                next_slot += 1
                stats.temps_spilled += 1

    spilled: Dict[int, int] = dict(arch_spilled)
    spilled.update(temp_spilled)

    def mapped(reg: int) -> Optional[int]:
        if reg in spilled:
            return None
        if reg < arch_bound:
            return arch_map[reg]
        return temp_map[reg]

    # Scratch usage: the reserved value registers carry reloaded spill
    # values into the instruction; a spilled destination reuses the first
    # scratch after the sources are consumed.  The postscheduler's
    # dependence graph serializes scratch reuse across instructions.
    rewritten: List[Instruction] = []
    for instr in code.instructions:
        pre: List[Instruction] = []
        post: List[Instruction] = []
        new_srcs: List[int] = []
        used_values = 0
        for src in instr.srcs:
            phys = mapped(src)
            if phys is None:
                if used_values >= len(scratch):
                    raise AllocationError(
                        f"{code.proc}/{code.head}: more than"
                        f" {len(scratch)} spilled sources in one"
                        f" instruction"
                    )
                val_reg = scratch[used_values]
                used_values += 1
                reload = ins.spill_ld(val_reg, spilled[src])
                # Provenance: spill traffic belongs to the instruction it
                # feeds (reload) or drains (store-back).
                reload.origin = instr.origin
                pre.append(reload)
                new_srcs.append(val_reg)
            else:
                new_srcs.append(phys)
        instr.srcs = tuple(new_srcs)
        if instr.dest is not None:
            phys = mapped(instr.dest)
            if phys is None:
                slot = spilled[instr.dest]
                instr.dest = scratch[0]
                store_back = ins.spill_st(slot, scratch[0])
                store_back.origin = instr.origin
                post.append(store_back)
            else:
                instr.dest = phys
        stats.spill_instructions += len(pre) + len(post)
        rewritten.extend(pre)
        rewritten.append(instr)
        rewritten.extend(post)
    code.instructions = rewritten
