"""Register allocation onto the experimental machine's register file."""

from .linear_scan import (
    AllocationError,
    AllocationStats,
    ProcedureAllocation,
    SCRATCH_COUNT,
    allocate_procedure,
)

__all__ = [
    "AllocationError",
    "AllocationStats",
    "ProcedureAllocation",
    "SCRATCH_COUNT",
    "allocate_procedure",
]
