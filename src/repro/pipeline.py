"""High-level driver: the whole paper pipeline in one call.

This is the public API most users want::

    from repro.pipeline import run_scheme
    outcome = run_scheme(program, "P4", train_tape, test_tape)
    print(outcome.result.cycles)

``run_scheme`` profiles the program on the training input, forms superblocks
with the requested scheme, compacts and allocates them, lays the code out,
simulates the result on the testing input — and cross-checks the simulated
output against the reference interpreter, so every experiment doubles as a
correctness test of the entire compiler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .formation import FormationConfig, FormationResult, form_superblocks, scheme
from .formation.inline import inline_program
from .interp.interpreter import ExecutionResult, run_program
from .ir.cfg import Program
from .jit import JIT_STATS, record_jit_metrics
from .layout.pettis_hansen import Layout, layout_program
from .metrics import MetricsSink, timed
from .profiling.collector import (
    ProfileBundle,
    TracedRun,
    collect_profiles,
    profiles_from_trace,
    record_trace,
)
from .profiling.kiter import kiter_profile_from_trace
from .scheduling.compactor import CompiledProgram, compact_program
from .scheduling.machine import MachineModel, PAPER_MACHINE
from .simulate.icache import ICache, ICacheConfig
from .simulate.vliw_sim import SimulationResult, simulate
from .trace.provenance import assign_origins
from .trace.tracer import Tracer, tspan
from .validation.config import ValidationConfig


class OutputMismatch(Exception):
    """Simulated output diverged from the reference interpreter: a compiler
    bug, never a user error."""


@dataclass
class SchemeOutcome:
    """Everything produced by one (program, scheme, inputs) experiment."""

    scheme: str
    profiles: ProfileBundle
    formation: FormationResult
    compiled: CompiledProgram
    layout: Layout
    #: simulation on the testing input (ideal I-cache)
    result: SimulationResult
    #: simulation through the finite I-cache (None unless requested)
    cached_result: Optional[SimulationResult] = None
    #: reference interpreter run on the testing input
    reference: Optional[ExecutionResult] = None


def compile_scheme(
    program: Program,
    scheme_name: str,
    train_tape: Sequence[int],
    machine: MachineModel = PAPER_MACHINE,
    config: Optional[FormationConfig] = None,
    allocate: bool = True,
    optimize: bool = True,
    profiles: Optional[ProfileBundle] = None,
    traced: Optional[TracedRun] = None,
    step_limit: int = 50_000_000,
    validation: Optional[ValidationConfig] = None,
    metrics: Optional[MetricsSink] = None,
    tracer: Optional[Tracer] = None,
    sched=None,
):
    """Profile, form, compact, and lay out ``program`` under one scheme.

    Returns ``(profiles, formation, compiled, layout)``.  Pass ``profiles``
    to reuse one training run across several schemes, or ``traced`` (a
    recorded training run) to derive the profiles by trace replay without
    re-executing the interpreter.  ``validation`` enables the stage
    checkpoints (see :class:`~repro.validation.ValidationConfig`);
    ``metrics`` records per-stage timings and counters (see
    :class:`~repro.metrics.MetricsSink`); ``tracer`` records formation
    decisions, timing spans, and instruction provenance (the source
    program is stamped with origin ids first — an observation-only
    mutation that never affects execution or output).  ``sched`` is an
    optional :class:`~repro.scheduling.SchedConfig` selecting tuned
    list-scheduler weights and/or software pipelining.

    With ``config.inline`` set (scheme ``P4i``) the program is first run
    through profile-guided inlining, ranked by the training edge profile;
    when anything was inlined, the inlined program is re-profiled on the
    training tape (the frame-major trace encoding deliberately drops
    cross-call interleaving, so the original trace cannot describe the
    merged frames), origins are re-stamped on it, and it becomes the
    provenance source (``formation.source_program``).  With
    ``config.kiter`` set (scheme ``P4k``) the recorded training trace is
    replayed — never re-executed — into per-loop k-iteration run-length
    histograms whose unroll hints feed the path enlarger; a missing trace
    is recorded here as a fallback.
    """
    formation_config = config or scheme(scheme_name)
    if tracer is not None:
        assign_origins(program)
    if profiles is None:
        if traced is not None:
            with tspan(tracer, "profile.replay"):
                profiles = timed(
                    metrics,
                    "profile.replay",
                    profiles_from_trace,
                    program,
                    traced,
                )
        elif formation_config.kiter is not None:
            # The k-iteration profiler needs the trace anyway: record the
            # training run once and replay it into the bundle.
            with tspan(tracer, "profile.record"):
                traced = timed(
                    metrics,
                    "profile.record",
                    record_trace,
                    program,
                    input_tape=train_tape,
                    step_limit=step_limit,
                )
            with tspan(tracer, "profile.replay"):
                profiles = timed(
                    metrics,
                    "profile.replay",
                    profiles_from_trace,
                    program,
                    traced,
                )
        else:
            with tspan(tracer, "profile.collect"):
                profiles = timed(
                    metrics,
                    "profile.collect",
                    collect_profiles,
                    program,
                    input_tape=train_tape,
                    step_limit=step_limit,
                )
    source_program = program
    source_traced = traced
    form_profiles = profiles
    if formation_config.inline is not None:
        with tspan(tracer, "formation.inline"):
            inlined, inline_stats = timed(
                metrics,
                "formation.inline",
                inline_program,
                program,
                profiles.edge,
                formation_config.inline,
                tracer=tracer,
            )
        if metrics is not None:
            metrics.add("inline.sites_inlined", inline_stats.sites_inlined)
            metrics.add("inline.procs_inlined", inline_stats.procs_inlined)
            metrics.add(
                "inline.instructions_added", inline_stats.instructions_added
            )
            metrics.add("inline.procs_pruned", inline_stats.procs_pruned)
        if inline_stats.sites_inlined:
            source_program = inlined
            if tracer is not None:
                assign_origins(source_program)
            # The inlined program has different frames: re-profile it on
            # the training tape (one recorded run serves the bundle and,
            # when combined with kiter, the run-length histograms too).
            with tspan(tracer, "profile.record"):
                source_traced = timed(
                    metrics,
                    "profile.record",
                    record_trace,
                    source_program,
                    input_tape=train_tape,
                    step_limit=step_limit,
                )
            with tspan(tracer, "profile.replay"):
                form_profiles = timed(
                    metrics,
                    "profile.replay",
                    profiles_from_trace,
                    source_program,
                    source_traced,
                )
    kiter_profile = None
    if formation_config.kiter is not None:
        if source_traced is None:
            # Fallback for callers that supplied profiles but no trace
            # (the harness threads cached traces through to avoid this).
            with tspan(tracer, "profile.record"):
                source_traced = timed(
                    metrics,
                    "profile.record",
                    record_trace,
                    source_program,
                    input_tape=train_tape,
                    step_limit=step_limit,
                )
        with tspan(tracer, "profile.kiter"):
            kiter_profile = timed(
                metrics,
                "profile.kiter",
                kiter_profile_from_trace,
                source_program,
                source_traced.trace,
                formation_config.kiter,
            )
        if metrics is not None:
            metrics.add(
                "kiter.paths_observed", kiter_profile.paths_observed
            )
            metrics.add(
                "kiter.loops_profiled",
                sum(
                    len(heads) for heads in kiter_profile.runs.values()
                ),
            )
    formation = form_superblocks(
        source_program,
        formation_config,
        edge_profile=form_profiles.edge,
        path_profile=form_profiles.path,
        validation=validation,
        metrics=metrics,
        tracer=tracer,
        kiter_profile=kiter_profile,
    )
    if source_program is not program:
        formation.source_program = source_program
    compiled = compact_program(
        formation,
        machine=machine,
        optimize=optimize,
        allocate=allocate,
        validation=validation,
        metrics=metrics,
        tracer=tracer,
        sched=sched,
    )
    with tspan(tracer, "layout"):
        layout = timed(
            metrics, "layout", layout_program, compiled, profile=profiles.edge
        )
    if metrics is not None:
        metrics.add("layout.code_bytes", layout.code_bytes)
    return profiles, formation, compiled, layout


def run_scheme(
    program: Program,
    scheme_name: str,
    train_tape: Sequence[int],
    test_tape: Sequence[int],
    machine: MachineModel = PAPER_MACHINE,
    config: Optional[FormationConfig] = None,
    allocate: bool = True,
    optimize: bool = True,
    with_icache: bool = False,
    icache_config: Optional[ICacheConfig] = None,
    check_output: bool = True,
    profiles: Optional[ProfileBundle] = None,
    traced: Optional[TracedRun] = None,
    reference: Optional[ExecutionResult] = None,
    step_limit: int = 50_000_000,
    cycle_limit: int = 100_000_000,
    validation: Optional[ValidationConfig] = None,
    metrics: Optional[MetricsSink] = None,
    tracer: Optional[Tracer] = None,
    sched=None,
) -> SchemeOutcome:
    """Run the full pipeline for one scheme and verify its correctness.

    Args:
        program: the workload IR (e.g. from ``compile_source``).
        scheme_name: "BB", "M4", "M16", "P4", or "P4e".
        train_tape: profiling input (the paper uses distinct training data).
        test_tape: measurement input.
        machine: target machine model.
        config: full formation config overriding ``scheme_name``'s preset.
        allocate: run register allocation (128 registers).
        optimize: run superblock-local value numbering and DCE.
        with_icache: also simulate through the finite instruction cache.
        icache_config: cache geometry (defaults to the paper's 32KB DM).
        check_output: compare simulated output with the interpreter.
        profiles: reuse an existing training-run profile bundle.
        traced: a recorded training run; when ``profiles`` is absent the
            bundle is derived by replaying this trace instead of running
            the interpreter.
        reference: reuse an existing interpreter run on ``test_tape``; the
            reference is scheme-independent, so one run can check every
            scheme of a workload.
        step_limit: interpreter instruction budget.
        cycle_limit: simulator cycle budget.
        validation: run the selected stage checkpoints after each
            transform (see :class:`~repro.validation.ValidationConfig`).
        metrics: record per-stage timings, counters, and events into this
            sink (see :class:`~repro.metrics.MetricsSink`); ``None`` (the
            default) keeps the pipeline entirely uninstrumented.
        tracer: record formation decisions, instruction provenance,
            timing spans, and per-superblock exit-cycle histograms into
            this :class:`~repro.trace.Tracer`; like ``metrics``, ``None``
            leaves the pipeline untouched and its output byte-identical.
        sched: optional :class:`~repro.scheduling.SchedConfig` enabling
            tuned list-scheduler priority weights and/or software
            pipelining of loop superblocks; ``None`` compiles exactly as
            before.

    Raises:
        OutputMismatch: the scheduled code misbehaved (a compiler bug).
        repro.validation.ValidationError: a stage checkpoint failed.
    """
    profiles, formation, compiled, layout = compile_scheme(
        program,
        scheme_name,
        train_tape,
        machine=machine,
        config=config,
        allocate=allocate,
        optimize=optimize,
        profiles=profiles,
        traced=traced,
        step_limit=step_limit,
        validation=validation,
        metrics=metrics,
        tracer=tracer,
        sched=sched,
    )
    jit_before = None if metrics is None else JIT_STATS.snapshot()
    with tspan(tracer, "simulate.ideal"):
        result = timed(
            metrics,
            "simulate.ideal",
            simulate,
            compiled,
            input_tape=test_tape,
            cycle_limit=cycle_limit,
            tracer=tracer,
        )
    if metrics is not None:
        record_jit_metrics(metrics, jit_before)
        metrics.add("simulate.cycles", result.cycles)
        metrics.add("simulate.operations", result.operations)
        metrics.add("simulate.wasted_operations", result.wasted_operations)
        metrics.add("simulate.sb_entries", result.sb_entries)
        metrics.add("simulate.blocks_executed", result.blocks_executed)
    cached_result = None
    if with_icache:
        icache = ICache(icache_config or ICacheConfig())
        # The tracer is deliberately not passed here: exit histograms
        # come from the ideal simulation only, so the finite-I-cache
        # pass never double-counts superblock exits.
        with tspan(tracer, "simulate.icache"):
            cached_result = timed(
                metrics,
                "simulate.icache",
                simulate,
                compiled,
                input_tape=test_tape,
                icache=icache,
                layout=layout,
                cycle_limit=cycle_limit,
            )
        if metrics is not None:
            metrics.add("icache.accesses", cached_result.icache_accesses)
            metrics.add("icache.misses", cached_result.icache_misses)
            metrics.add(
                "icache.miss_penalty_cycles",
                cached_result.miss_penalty_cycles,
            )
    if check_output:
        if reference is None:
            with tspan(tracer, "reference"):
                reference = timed(
                    metrics,
                    "reference",
                    run_program,
                    program,
                    input_tape=test_tape,
                    step_limit=step_limit,
                )
        if reference.output != result.output or (
            reference.return_value != result.return_value
        ):
            raise OutputMismatch(
                f"scheme {scheme_name}: simulated output diverged from the"
                f" reference interpreter"
            )
        if cached_result is not None and (
            cached_result.output != reference.output
        ):
            raise OutputMismatch(
                f"scheme {scheme_name}: cached simulation diverged"
            )
    outcome_scheme = config.name if config is not None else scheme_name
    return SchemeOutcome(
        scheme=outcome_scheme,
        profiles=profiles,
        formation=formation,
        compiled=compiled,
        layout=layout,
        result=result,
        cached_result=cached_result,
        reference=reference,
    )
