"""Top-level command line: run one workload under one or more schemes.

Usage::

    python -m repro run --workload wc --schemes BB M4 P4 --scale 0.5
    python -m repro run --source my_program.mc --schemes P4 --icache
    python -m repro explain wc --scheme P4 --scale 0.5
    python -m repro trace-diff wc --schemes M4 P4 --scale 0.5
    python -m repro list

``explain`` runs one pipeline with the decision tracer on and renders
why a superblock came out the way it did; ``trace-diff`` runs two
schemes, names their first diverging formation decision, and attributes
the cycle delta.  (For the paper's tables and figures use
``python -m repro.experiments``.)
"""

from __future__ import annotations

import argparse
import sys

from .experiments.render import format_table
from .frontend import compile_source
from .pipeline import run_scheme
from .profiling.collector import collect_profiles
from .scheduling.machine import PAPER_MACHINE, REALISTIC_MACHINE
from .workloads import SUITE_ORDER, all_workloads, get_workload


def _cmd_list(_args) -> int:
    rows = [
        (w.name, w.category, w.description) for w in all_workloads()
    ]
    print(format_table(["name", "group", "description"], rows,
                       title="Workload suite"))
    return 0


def _cmd_run(args) -> int:
    if args.source:
        with open(args.source) as handle:
            program = compile_source(handle.read())
        train = [int(x) for x in (args.train or "").split(",") if x != ""]
        test = [int(x) for x in (args.test or "").split(",") if x != ""]
    else:
        workload = get_workload(args.workload)
        program = workload.program()
        train = workload.train_tape(args.scale)
        test = workload.test_tape(args.scale)

    machine = REALISTIC_MACHINE if args.realistic else PAPER_MACHINE
    profiles = collect_profiles(program, input_tape=train)
    rows = []
    for scheme in args.schemes:
        outcome = run_scheme(
            program,
            scheme,
            train,
            test,
            machine=machine,
            with_icache=args.icache,
            profiles=profiles,
        )
        sim = outcome.result
        row = [
            scheme,
            sim.cycles,
            sim.operations,
            sim.wasted_operations,
            f"{sim.avg_blocks_per_entry:.2f}",
            f"{sim.avg_superblock_size:.2f}",
        ]
        if args.icache:
            cached = outcome.cached_result
            row.extend(
                [cached.cycles, f"{cached.icache_miss_rate * 100:.2f}"]
            )
        rows.append(row)
    headers = ["scheme", "cycles", "ops", "wasted", "blk/entry", "sb size"]
    if args.icache:
        headers.extend(["cycles+I$", "miss%"])
    title = args.source or args.workload
    print(format_table(headers, rows, title=f"{title} on {machine.name}"))
    return 0


def _cmd_explain(args) -> int:
    # Imported here: repro.trace.explain pulls in the whole pipeline and
    # the workload suite, which `list` and `--help` should not pay for.
    from .trace.explain import explain, format_explain, run_traced
    from .trace.perfetto import write_trace

    tracer, outcome = run_traced(
        args.workload, args.scheme, scale=args.scale
    )
    report = explain(tracer, outcome, proc=args.proc, head=args.head)
    print(format_explain(report, max_ops=args.max_ops))
    if args.out:
        write_trace(tracer, args.out)
        print(f"[trace] full decision trace written to {args.out}")
    return 0


def _cmd_trace_diff(args) -> int:
    from .trace.explain import format_trace_diff, run_traced, trace_diff

    scheme_a, scheme_b = args.schemes
    tracer_a, outcome_a = run_traced(
        args.workload, scheme_a, scale=args.scale
    )
    tracer_b, outcome_b = run_traced(
        args.workload, scheme_b, scale=args.scale
    )
    report = trace_diff(
        tracer_a,
        tracer_b,
        scheme_a,
        scheme_b,
        cycles_a=outcome_a.result.cycles,
        cycles_b=outcome_b.result.cycles,
        top=args.top,
    )
    print(f"{args.workload}: {scheme_a} vs {scheme_b} (scale {args.scale})")
    print(format_trace_diff(report))
    if args.out:
        import json

        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[trace] diff report written to {args.out}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro")
    parser.add_argument(
        "--no-jit",
        action="store_true",
        help="run the reference interpreter/simulator loops instead of"
        " the template JIT (also: REPRO_JIT=0)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the workload suite")

    run_parser = sub.add_parser("run", help="compile and simulate")
    run_parser.add_argument(
        "--workload", choices=SUITE_ORDER, help="suite workload to run"
    )
    run_parser.add_argument(
        "--source", help="MiniC source file (alternative to --workload)"
    )
    run_parser.add_argument(
        "--schemes",
        nargs="+",
        default=["BB", "M4", "P4"],
        choices=["BB", "M4", "M16", "P4", "P4e", "P4i", "P4k"],
        help="formation schemes to compare",
    )
    run_parser.add_argument(
        "--scale", type=float, default=1.0, help="input size scale"
    )
    run_parser.add_argument(
        "--train", help="comma-separated training input (with --source)"
    )
    run_parser.add_argument(
        "--test", help="comma-separated testing input (with --source)"
    )
    run_parser.add_argument(
        "--icache", action="store_true", help="also simulate the I-cache"
    )
    run_parser.add_argument(
        "--realistic",
        action="store_true",
        help="use the realistic-latency machine model",
    )

    explain_parser = sub.add_parser(
        "explain",
        help="trace one pipeline and explain a superblock's schedule",
    )
    explain_parser.add_argument(
        "workload", choices=SUITE_ORDER, help="suite workload"
    )
    explain_parser.add_argument(
        "--scheme",
        default="P4",
        choices=["BB", "M4", "M16", "P4", "P4e", "P4i", "P4k"],
        help="formation scheme to explain",
    )
    explain_parser.add_argument(
        "--scale", type=float, default=1.0, help="input size scale"
    )
    explain_parser.add_argument(
        "--proc", help="procedure (default: wherever the hottest SB is)"
    )
    explain_parser.add_argument(
        "--head", help="superblock head label (default: hottest SB)"
    )
    explain_parser.add_argument(
        "--max-ops", type=int, default=24, help="schedule lines to show"
    )
    explain_parser.add_argument(
        "--out", help="also write the full Perfetto trace JSON here"
    )

    diff_parser = sub.add_parser(
        "trace-diff",
        help="run two schemes and explain where their decisions diverge",
    )
    diff_parser.add_argument(
        "workload", choices=SUITE_ORDER, help="suite workload"
    )
    diff_parser.add_argument(
        "--schemes",
        nargs=2,
        default=["M4", "P4"],
        choices=["BB", "M4", "M16", "P4", "P4e", "P4i", "P4k"],
        help="the two schemes to compare",
    )
    diff_parser.add_argument(
        "--scale", type=float, default=1.0, help="input size scale"
    )
    diff_parser.add_argument(
        "--top", type=int, default=5, help="rows per attribution table"
    )
    diff_parser.add_argument(
        "--out", help="write the diff report as JSON here"
    )

    args = parser.parse_args(argv)
    if args.no_jit:
        from .jit import set_jit_enabled

        set_jit_enabled(False)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        if not args.workload and not args.source:
            parser.error("run needs --workload or --source")
        return _cmd_run(args)
    if args.command == "explain":
        return _cmd_explain(args)
    if args.command == "trace-diff":
        return _cmd_trace_diff(args)
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
