"""Warm worker pools: pre-imported processes, primed before first use.

A cold ``ProcessPoolExecutor`` worker pays the compiler/interpreter/JIT
import chain inside its *first task's* wall clock.  :func:`warm_worker` is
a pool initializer that moves those imports to worker startup instead, so
the first real task starts computing immediately.  Under the default
``fork`` start method a child inherits the parent's modules and the
initializer is a cheap no-op; under ``spawn``/``forkserver`` (and in any
parent that has not itself imported the compiler) it does the real work.

This module deliberately imports nothing heavy at top level: workers
unpickle references to its functions before running the initializer, and
that unpickle must not drag the whole compiler in through module import —
otherwise the initializer could never be cheaper than the problem it
solves (and :func:`import_probe` could not measure the difference).
"""

from __future__ import annotations

import importlib
import os
import time
from concurrent.futures import Future, ProcessPoolExecutor, wait
from typing import Iterable, List, Optional, Sequence, Tuple

#: Modules every experiment worker needs before its first task: the
#: frontend (workload programs compile from MiniC source), the interpreter
#: and template JIT (training runs, references), and the full pipeline
#: (formation, scheduling, regalloc, layout, simulation).
WARM_IMPORTS: Tuple[str, ...] = (
    "repro.frontend",
    "repro.interp.interpreter",
    "repro.jit",
    "repro.pipeline",
    "repro.experiments.parallel",
    "repro.workloads.suite",
)


def warm_worker(extra: Sequence[str] = ()) -> None:
    """Pool initializer: pre-import the compiler stack in this worker."""
    for name in (*WARM_IMPORTS, *extra):
        importlib.import_module(name)


def import_probe() -> float:
    """Seconds this worker spends importing ``repro.pipeline`` *now* — ~0
    in a pre-imported (or forked-from-warm-parent) worker, the full import
    chain in a cold spawned one.  ``perf_smoke.py`` uses it to measure the
    first-task cost :func:`warm_worker` removes."""
    start = time.perf_counter()
    importlib.import_module("repro.pipeline")
    return time.perf_counter() - start


def _prime_probe(delay: float) -> int:
    """Occupy one worker long enough for the pool to spread the remaining
    probes over its other workers, and report who ran it."""
    time.sleep(delay)
    return os.getpid()


class WarmPool:
    """A ``ProcessPoolExecutor`` wrapper that is warm before first use.

    Workers run :func:`warm_worker` at startup, and :meth:`prime` forces
    every worker process to exist (and finish importing) before the pool
    accepts real work — a daemon pays this once at serve time, never
    inside a request.

    Args:
        workers: pool size.
        extra_imports: additional module names for the initializer.
        mp_context: ``multiprocessing`` context (default: the platform
            default, ``fork`` on Linux).
    """

    def __init__(
        self,
        workers: int,
        extra_imports: Sequence[str] = (),
        mp_context=None,
    ) -> None:
        self.workers = max(1, int(workers))
        self.executor = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=warm_worker,
            initargs=(tuple(extra_imports),),
            mp_context=mp_context,
        )

    def prime(self, delay: float = 0.05, timeout: float = 120.0) -> List[int]:
        """Start (and pre-import) every worker; return their pids.

        Submits one short sleeper per worker: the executor spawns a new
        process per queued task until it reaches ``workers``, and the
        sleep keeps early workers busy so later probes land on fresh ones.
        """
        futures: List[Future] = [
            self.executor.submit(_prime_probe, delay)
            for _ in range(self.workers)
        ]
        done, not_done = wait(futures, timeout=timeout)
        if not_done:
            raise TimeoutError(
                f"warm pool failed to start within {timeout}s"
                f" ({len(not_done)} of {self.workers} probes pending)"
            )
        return sorted({future.result() for future in done})

    def submit(self, fn, /, *args, **kwargs) -> Future:
        """Forward to the underlying executor."""
        return self.executor.submit(fn, *args, **kwargs)

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        """Shut the executor down (idempotent)."""
        self.executor.shutdown(wait=wait, cancel_futures=cancel_futures)

    def worker_pids(self) -> Iterable[int]:
        """Pids of the currently live worker processes."""
        processes: Optional[dict] = getattr(self.executor, "_processes", None)
        if not processes:
            return []
        return sorted(processes.keys())

    def __enter__(self) -> "WarmPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown(wait=True)
