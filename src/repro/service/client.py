"""Synchronous client for the experiment service.

:class:`ServiceClient` speaks the :mod:`~repro.service.protocol` over a
unix-domain socket — no asyncio on the client side, so it drops into
scripts, tests, and the CLI unchanged.  :func:`run_suite_service` is the
drop-in engine front door: it serves a suite request from a running daemon
when one is listening, and transparently falls back to the in-process
:func:`~repro.experiments.harness.run_suite` when none is.
"""

from __future__ import annotations

import os
import socket
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..metrics import MetricsSink
from ..trace.tracer import Tracer
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    default_socket_path,
    encode_message,
    unpack,
)


class ServiceError(Exception):
    """The daemon reported an error, or the conversation broke down."""


@dataclass
class SubmitOutcome:
    """Everything one ``submit`` returned.

    ``results`` matches the shape of
    :data:`~repro.experiments.harness.SuiteResults` — a dict from
    (workload, scheme) to :class:`~repro.pipeline.SchemeOutcome`, in
    request order — so daemon results drop into every existing renderer.
    """

    results: Dict[Tuple[str, str], Any]
    #: (workload, scheme) -> "computed" | "cache" | "dedup"
    dispositions: Dict[Tuple[str, str], str]
    #: per-request dedup/cache accounting, as counted by the daemon
    stats: Dict[str, int] = field(default_factory=dict)
    #: merged per-task metrics (only when requested with ``with_metrics``)
    metrics: Optional[MetricsSink] = None
    #: merged per-task decision traces (only with ``with_tracer``)
    tracer: Optional[Tracer] = None


class ServiceClient:
    """One connection to a running experiment daemon."""

    def __init__(
        self,
        socket_path: Optional[os.PathLike] = None,
        timeout: Optional[float] = 600.0,
    ) -> None:
        self.path = str(socket_path or default_socket_path())
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        try:
            self._sock.connect(self.path)
        except OSError:
            self._sock.close()
            raise
        self._reader = self._sock.makefile("rb")

    # -- plumbing ------------------------------------------------------------

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _send(self, message: Dict[str, Any]) -> None:
        self._sock.sendall(encode_message(message))

    def _recv(self) -> Dict[str, Any]:
        line = self._reader.readline()
        if not line:
            raise ServiceError("connection closed by the daemon")
        try:
            return decode_message(line)
        except ProtocolError as exc:
            raise ServiceError(str(exc)) from exc

    def _recv_expect(self, *types: str) -> Dict[str, Any]:
        message = self._recv()
        kind = message.get("type")
        if kind == "error" and "error" not in types:
            raise ServiceError(message.get("message", "unknown error"))
        if kind not in types:
            raise ServiceError(f"expected {types}, got {kind!r}")
        return message

    # -- ops -----------------------------------------------------------------

    def hello(self) -> Dict[str, Any]:
        """Handshake; raises on a protocol-version mismatch."""
        self._send({"op": "hello"})
        message = self._recv_expect("hello")
        version = message.get("version")
        if version != PROTOCOL_VERSION:
            raise ServiceError(
                f"daemon speaks protocol {version}, client {PROTOCOL_VERSION}"
            )
        return message

    def status(self) -> Dict[str, Any]:
        """Daemon-lifetime counters, cache stats, and in-flight load."""
        self._send({"op": "status"})
        return self._recv_expect("status")

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to stop (it finishes in-flight work first)."""
        self._send({"op": "shutdown"})
        return self._recv_expect("bye")

    def submit(
        self,
        schemes: Sequence[str],
        workloads: Optional[Sequence[str]] = None,
        scale: float = 1.0,
        with_icache: bool = False,
        machine: str = "paper",
        no_cache: bool = False,
        with_metrics: bool = False,
        with_tracer: bool = False,
        request_id: Optional[str] = None,
        on_task: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> SubmitOutcome:
        """Run a (workload x scheme) grid on the daemon and collect the
        streamed results.

        ``on_task`` (if given) observes each raw task message as it
        arrives — progress bars hook in here; the outcome payload is
        already decoded by the time it is called.
        """
        self._send(
            {
                "op": "submit",
                "id": request_id,
                "schemes": list(schemes),
                "workloads": list(workloads) if workloads else None,
                "scale": scale,
                "with_icache": with_icache,
                "machine": machine,
                "no_cache": no_cache,
                "with_metrics": with_metrics,
                "with_tracer": with_tracer,
            }
        )
        plan = self._recv_expect("plan")
        total = plan.get("total", 0)
        results: Dict[Tuple[str, str], Any] = {}
        dispositions: Dict[Tuple[str, str], str] = {}
        metrics = MetricsSink() if with_metrics else None
        tracer = Tracer() if with_tracer else None
        for _ in range(total):
            message = self._recv_expect("task")
            pair = (message["workload"], message["scheme"])
            results[pair] = unpack(message["outcome"])
            dispositions[pair] = message.get("disposition", "?")
            # Merge streamed observability payloads in arrival order ==
            # request order, the same order the in-process engines use.
            for source, target in (
                ("profile_metrics", metrics),
                ("metrics", metrics),
                ("profile_trace", tracer),
                ("trace", tracer),
            ):
                payload = message.get(source)
                if payload is not None and target is not None:
                    shipped = unpack(payload)
                    if shipped is not None:
                        target.merge(shipped)
            if on_task is not None:
                message = dict(message)
                message["outcome"] = results[pair]
                on_task(message)
        done = self._recv_expect("done")
        return SubmitOutcome(
            results=results,
            dispositions=dispositions,
            stats=dict(done.get("stats", {})),
            metrics=metrics,
            tracer=tracer,
        )


def service_available(socket_path: Optional[os.PathLike] = None) -> bool:
    """True when a daemon answers a handshake on the socket."""
    try:
        with ServiceClient(socket_path, timeout=5.0) as client:
            client.hello()
        return True
    except (OSError, ServiceError):
        return False


def run_suite_service(
    schemes: Sequence[str],
    workload_names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    with_icache: bool = False,
    socket_path: Optional[os.PathLike] = None,
    fallback: bool = True,
    no_cache: bool = False,
    with_metrics: bool = False,
    with_tracer: bool = False,
    verbose: bool = False,
) -> Tuple[Dict[Tuple[str, str], Any], str, Optional[SubmitOutcome]]:
    """Suite results via the daemon, falling back to in-process execution.

    Returns ``(results, engine, submit_outcome)`` where ``engine`` is
    ``"service"`` or ``"in-process"`` and ``submit_outcome`` carries the
    dispositions/stats/metrics (its ``stats`` are empty on the fallback
    path — nothing was deduped because nothing was shared).  Raises
    :class:`ServiceError` instead of falling back when ``fallback=False``
    and no daemon is listening.
    """
    path = socket_path or default_socket_path()
    try:
        client = ServiceClient(path)
    except OSError as exc:
        if not fallback:
            raise ServiceError(
                f"no experiment service listening on {path} ({exc})"
            ) from exc
        if verbose:
            print(
                f"[service] no daemon on {path}; running in-process",
                file=sys.stderr,
                flush=True,
            )
        from ..experiments.cache import ExperimentCache
        from ..experiments.harness import run_suite

        metrics = MetricsSink() if with_metrics else None
        tracer = Tracer() if with_tracer else None
        results = run_suite(
            schemes,
            workload_names,
            scale=scale,
            with_icache=with_icache,
            cache=None if no_cache else ExperimentCache(),
            metrics=metrics,
            tracer=tracer,
        )
        outcome = SubmitOutcome(
            results=results,
            dispositions={pair: "in-process" for pair in results},
            metrics=metrics,
            tracer=tracer,
        )
        return results, "in-process", outcome
    with client:
        client.hello()
        outcome = client.submit(
            schemes,
            workloads=workload_names,
            scale=scale,
            with_icache=with_icache,
            no_cache=no_cache,
            with_metrics=with_metrics,
            with_tracer=with_tracer,
        )
    return outcome.results, "service", outcome
