"""Measure what the warm-pool initializer saves: first-task import cost.

Runs two single-worker **spawn**-context pools — spawn, because a forked
child inherits the parent's modules and the probe would measure nothing —
and times :func:`~repro.service.pool.import_probe` (the wall clock of
``import repro.pipeline`` inside the worker) in each:

* **cold**: no initializer; the first task pays the full compiler import
  chain;
* **warm**: :func:`~repro.service.pool.warm_worker` pre-imported the stack
  at pool startup, so the probe finds every module already loaded.

Prints one JSON object on stdout.  This module (like
:mod:`repro.service.pool`) keeps stdlib-only top-level imports on purpose:
a spawn child imports the defining module of every submitted function
*before* the initializer runs, so a heavy import here would silently
pre-warm the "cold" pool and zero the measurement.

Usage::

    PYTHONPATH=src python -m repro.service._warmup_bench
"""

from __future__ import annotations

import json
import multiprocessing
import sys
from concurrent.futures import ProcessPoolExecutor


def measure() -> dict:
    from .pool import WARM_IMPORTS, import_probe, warm_worker

    context = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
        cold = pool.submit(import_probe).result()
    with ProcessPoolExecutor(
        max_workers=1, mp_context=context, initializer=warm_worker
    ) as pool:
        warm = pool.submit(import_probe).result()
    return {
        "start_method": "spawn",
        "warm_imports": list(WARM_IMPORTS),
        "cold_first_import_seconds": round(cold, 4),
        "warm_first_import_seconds": round(warm, 4),
        "import_seconds_saved": round(cold - warm, 4),
    }


def main() -> int:
    print(json.dumps(measure(), indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
