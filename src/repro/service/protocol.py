"""Wire protocol for the experiment service.

One message per line: UTF-8 JSON, ``\\n``-terminated, sorted keys.  Client
messages carry an ``op`` field; server messages a ``type`` field.  Python
artifacts (outcomes, metrics sinks, tracers) travel as base64-encoded
pickles inside string fields, so the framing stays line-oriented and a
human can still read the control traffic with ``socat``.

Client -> server ops::

    {"op": "hello"}
    {"op": "submit", "id": ..., "schemes": [...], "workloads": [...],
     "scale": 1.0, "with_icache": false, "machine": "paper",
     "no_cache": false, "with_metrics": false, "with_tracer": false}
    {"op": "status"}
    {"op": "shutdown"}

Server -> client message types::

    {"type": "hello", "version": 1, "pid": ..., "workers": ...}
    {"type": "plan", "id": ..., "total": N}            # submit accepted
    {"type": "task", "workload": ..., "scheme": ...,   # one per pair,
     "disposition": "computed"|"cache"|"dedup",        # in request order
     "seq": k, "total": N, "outcome": <b64 pickle>,
     "metrics": <b64 pickle, only when requested and computed>,
     "trace": <b64 pickle, only when requested and computed>}
    {"type": "done", "id": ..., "stats": {...}}        # end of submit
    {"type": "status", ...}
    {"type": "bye"}                                    # shutdown ack
    {"type": "error", "message": ...}

The ``disposition`` names who answered: ``computed`` (this request caused
the work), ``cache`` (the shared on-disk/memo cache), or ``dedup`` (an
identical task was already in flight for another request and this one
awaited the same future — zero new computation).
"""

from __future__ import annotations

import base64
import json
import os
import pickle
from pathlib import Path
from typing import Any, Dict

#: Bump on incompatible wire changes; ``hello`` reports it so clients can
#: refuse to talk to a daemon from a different era.
PROTOCOL_VERSION = 1

#: Environment variable overriding the default socket location.
SOCKET_ENV = "REPRO_SERVICE_SOCKET"

#: StreamReader line limit for the server side (client requests are small;
#: this is pure headroom — server *writes* are unlimited).
LINE_LIMIT = 4 * 1024 * 1024


class ProtocolError(Exception):
    """A malformed or unexpected message."""


def default_socket_path() -> Path:
    """Resolve the daemon's unix-socket path.

    Precedence: the :data:`SOCKET_ENV` override, then
    ``$XDG_RUNTIME_DIR/repro-service.sock``, then
    ``<cache dir>/service.sock`` next to the experiment cache.
    """
    env = os.environ.get(SOCKET_ENV)
    if env:
        return Path(env)
    runtime = os.environ.get("XDG_RUNTIME_DIR")
    if runtime and Path(runtime).is_absolute():
        return Path(runtime) / "repro-service.sock"
    from ..experiments.cache import default_cache_dir

    return default_cache_dir() / "service.sock"


def encode_message(message: Dict[str, Any]) -> bytes:
    """One wire line for ``message`` (newline-terminated UTF-8 JSON)."""
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one wire line; raises :class:`ProtocolError` on garbage."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable message: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"expected a JSON object, got {type(message).__name__}"
        )
    return message


def pack(obj: Any) -> str:
    """Pickle + base64 an artifact for transport inside a JSON field."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def unpack(text: str) -> Any:
    """Inverse of :func:`pack`."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))
