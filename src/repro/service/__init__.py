"""The persistent experiment service.

A long-lived daemon (:mod:`repro.service.server`) that keeps a warm,
pre-imported worker pool and a shared, sharded
:class:`~repro.experiments.cache.ExperimentCache` between experiment
invocations, so parallelism wins even on small batches and N concurrent
clients share one profile/trace cache.  Clients speak a newline-delimited
JSON protocol (:mod:`repro.service.protocol`) over a unix-domain socket;
:mod:`repro.service.client` is the synchronous client used by the
``python -m repro.service submit`` CLI, which transparently falls back to
the in-process engine when no daemon is running.

Identical requests that are in flight at the same time are deduplicated by
content key: the second client awaits the first client's futures instead
of recomputing, so concurrent identical grids cost one computation total.

Submodules are loaded lazily (PEP 562): :mod:`repro.service.pool` must be
importable without dragging the compiler in (pool workers unpickle its
functions before their pre-importing initializer runs), and
:mod:`repro.experiments.parallel` imports it while the ``experiments``
package is itself still initializing.
"""

from __future__ import annotations

import importlib

#: Public name -> defining submodule.
_EXPORTS = {
    "ExperimentService": ".server",
    "PROTOCOL_VERSION": ".protocol",
    "SOCKET_ENV": ".protocol",
    "ServiceClient": ".client",
    "ServiceError": ".client",
    "SubmitOutcome": ".client",
    "WARM_IMPORTS": ".pool",
    "WarmPool": ".pool",
    "default_socket_path": ".protocol",
    "run_suite_service": ".client",
    "service_available": ".client",
    "warm_worker": ".pool",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(importlib.import_module(module, __name__), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
