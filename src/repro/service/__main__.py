"""Command-line entry points for the experiment service.

Usage::

    python -m repro.service serve  [--socket PATH] [--workers N]
                                   [--metrics-out FILE]
    python -m repro.service submit --schemes M4,P4 [--workloads wc,eqn]
    python -m repro.service status [--json]
    python -m repro.service shutdown

``serve`` runs the daemon in the foreground until ``shutdown`` (or
SIGTERM/SIGINT).  ``submit`` renders the same cycles table whether it was
served by the daemon or — when no daemon is listening and ``--no-fallback``
was not given — computed in-process, so scripted consumers see
byte-identical output either way.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..experiments.render import format_table


def _render_results(results, dispositions, with_icache: bool) -> str:
    """The submit table: one row per (workload, scheme), request order."""
    headers = ["workload", "scheme", "cycles", "ops", "wasted"]
    if with_icache:
        headers += ["icache cycles", "miss %"]
    rows = []
    for (wname, sname), outcome in results.items():
        sim = outcome.result
        row = [wname, sname, sim.cycles, sim.operations, sim.wasted_operations]
        if with_icache:
            cached = outcome.cached_result
            row += [cached.cycles, f"{cached.icache_miss_rate * 100:.2f}"]
        rows.append(row)
    return format_table(headers, rows, title="Experiment results")


def _cmd_serve(args) -> int:
    from ..experiments.cache import ExperimentCache
    from .protocol import default_socket_path
    from .server import run_service

    cache = (
        None
        if args.no_cache
        else ExperimentCache(path=args.cache_dir)
    )
    run_service(
        args.socket or default_socket_path(),
        workers=args.workers,
        cache=cache,
        verbose=not args.quiet,
        metrics_out=args.metrics_out,
        self_report_interval=args.self_report_interval,
    )
    return 0


def _cmd_submit(args) -> int:
    from .client import ServiceError, run_suite_service

    schemes = [s for s in args.schemes.split(",") if s]
    workloads = (
        None
        if not args.workloads or args.workloads == "all"
        else [w for w in args.workloads.split(",") if w]
    )
    try:
        results, engine, outcome = run_suite_service(
            schemes,
            workload_names=workloads,
            scale=args.scale,
            with_icache=args.icache,
            socket_path=args.socket,
            fallback=not args.no_fallback,
            no_cache=args.no_cache,
            with_metrics=args.metrics_out is not None,
            with_tracer=args.trace_out is not None,
            verbose=not args.quiet,
        )
    except ServiceError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 1
    print(_render_results(results, outcome.dispositions, args.icache))
    if not args.quiet:
        note = f"[service] engine: {engine}"
        if outcome.stats:
            note += (
                f" ({outcome.stats.get('computed', 0)} computed,"
                f" {outcome.stats.get('cache', 0)} from cache,"
                f" {outcome.stats.get('dedup', 0)} deduped in flight)"
            )
        print(note, file=sys.stderr, flush=True)
    if args.metrics_out and outcome.metrics is not None:
        lines = outcome.metrics.write_jsonl(args.metrics_out)
        if not args.quiet:
            print(
                f"[metrics] {lines} event(s) -> {args.metrics_out} (render"
                f" with: python -m repro.experiments report"
                f" {args.metrics_out})",
                file=sys.stderr,
            )
    if args.trace_out and outcome.tracer is not None:
        from ..trace.perfetto import write_trace

        events = write_trace(outcome.tracer, args.trace_out)
        if not args.quiet:
            print(
                f"[trace] {events} event(s) -> {args.trace_out}",
                file=sys.stderr,
            )
    return 0


def _format_uptime(seconds: float) -> str:
    seconds = int(seconds)
    hours, rest = divmod(seconds, 3600)
    minutes, secs = divmod(rest, 60)
    if hours:
        return f"{hours}h {minutes:02d}m {secs:02d}s"
    if minutes:
        return f"{minutes}m {secs:02d}s"
    return f"{secs}s"


def _format_status(status) -> str:
    """The human-readable ``status`` view: identity line, lifetime
    counters, cache stats, and per-span latency summaries."""
    pids = status.get("worker_pids") or []
    lines = [
        f"daemon pid {status.get('pid')}"
        f" · protocol v{status.get('version')}"
        f" · uptime {_format_uptime(status.get('uptime_seconds', 0))}",
        f"workers: {status.get('workers')}"
        + (f" ({', '.join(str(p) for p in pids)})" if pids else ""),
        f"in flight: {status.get('inflight_tasks', 0)} task(s),"
        f" {status.get('inflight_profiles', 0)} profile run(s)",
    ]
    counters = status.get("counters") or {}
    if counters:
        lines.append("")
        lines.append(
            format_table(
                ["counter", "total"],
                [[name, value] for name, value in sorted(counters.items())],
                title="Lifetime counters",
            )
        )
    cache = status.get("cache")
    if cache is not None:
        lines.append("")
        lines.append(
            format_table(
                ["cache", "total"],
                [[name, cache[name]] for name in sorted(cache)],
                title="Shared cache",
            )
        )
    histograms = status.get("histograms") or {}
    if histograms:
        rows = []
        for name in sorted(histograms):
            summary = histograms[name]
            rows.append(
                [
                    name,
                    summary.get("count", 0),
                    f"{summary.get('mean_ms', 0.0):.1f}",
                    f"{summary.get('p50_ms', 0.0):.1f}",
                    f"{summary.get('p90_ms', 0.0):.1f}",
                    f"{summary.get('p99_ms', 0.0):.1f}",
                    f"{summary.get('max_ms', 0.0):.1f}",
                ]
            )
        lines.append("")
        lines.append(
            format_table(
                ["span", "count", "mean ms", "p50 ms", "p90 ms", "p99 ms",
                 "max ms"],
                rows,
                title="Request latency",
            )
        )
    return "\n".join(lines)


def _cmd_status(args) -> int:
    from .client import ServiceClient, ServiceError

    try:
        with ServiceClient(args.socket, timeout=30.0) as client:
            status = client.status()
    except (OSError, ServiceError) as exc:
        print(f"status: no daemon ({exc})", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        print(_format_status(status))
    return 0


def _cmd_shutdown(args) -> int:
    from .client import ServiceClient, ServiceError

    try:
        with ServiceClient(args.socket, timeout=30.0) as client:
            client.shutdown()
    except (OSError, ServiceError) as exc:
        print(f"shutdown: no daemon ({exc})", file=sys.stderr)
        return 1
    print("daemon asked to stop")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Persistent experiment daemon and its client verbs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the daemon (foreground)")
    serve.add_argument("--socket", default=None, help="unix socket path")
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="warm-pool size (default: one per CPU)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="shared experiment-cache directory (default: $REPRO_CACHE_DIR"
        " or ~/.cache/repro-experiments)",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="serve without the shared disk cache (in-flight dedup only)",
    )
    serve.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="persist daemon telemetry (counters, events, latency"
        " histograms) as JSONL, rewritten atomically at every"
        " self-report and at shutdown",
    )
    serve.add_argument(
        "--self-report-interval",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="seconds between service.self_report events (0 disables)",
    )
    serve.add_argument("--quiet", action="store_true")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="run a workload x scheme grid via the daemon"
    )
    submit.add_argument(
        "--schemes", required=True, help="comma-separated scheme names"
    )
    submit.add_argument(
        "--workloads",
        default="all",
        help="comma-separated workload names (default: the full suite)",
    )
    submit.add_argument("--scale", type=float, default=1.0)
    submit.add_argument(
        "--icache", action="store_true", help="also simulate the finite I-cache"
    )
    submit.add_argument("--socket", default=None, help="unix socket path")
    submit.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the shared cache (results recomputed; dedup still on)",
    )
    submit.add_argument(
        "--no-fallback",
        action="store_true",
        help="fail instead of running in-process when no daemon listens",
    )
    submit.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write merged per-task metrics as JSONL (render with"
        " 'python -m repro.experiments report FILE')",
    )
    submit.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write merged decision/timing traces as Perfetto JSON",
    )
    submit.add_argument("--quiet", action="store_true")
    submit.set_defaults(func=_cmd_submit)

    status = sub.add_parser(
        "status",
        help="daemon uptime, lifetime counters, cache stats, and"
        " request-latency histograms",
    )
    status.add_argument("--socket", default=None)
    status.add_argument(
        "--json",
        action="store_true",
        help="emit the raw status message as JSON instead of the table",
    )
    status.set_defaults(func=_cmd_status)

    shutdown = sub.add_parser("shutdown", help="stop a running daemon")
    shutdown.add_argument("--socket", default=None)
    shutdown.set_defaults(func=_cmd_shutdown)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
