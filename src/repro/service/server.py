"""The experiment daemon: an asyncio front-end over a warm worker pool.

One :class:`ExperimentService` owns three long-lived assets that a cold
CLI invocation pays for on every run:

* a **warm worker pool** (:class:`~repro.service.pool.WarmPool`): worker
  processes exist, have pre-imported the compiler/interpreter/JIT stack,
  and keep their per-process program and JIT code caches across requests;
* a **shared, sharded** :class:`~repro.experiments.cache.ExperimentCache`:
  every client's outcomes, profiles, traces, and references land in (and
  are served from) one content-addressed store;
* an **in-flight table**: tasks currently being computed, keyed by the
  same content keys the cache uses.  A request whose (workload, scheme,
  inputs, compiler-digest) task is already running *awaits the existing
  future* instead of recomputing — N concurrent identical grids cost one
  computation total, and the counters prove it.

Requests are planned synchronously on the event loop (cache probes and
in-flight registration happen before any await), so dedup behaviour is
deterministic: whichever submit the loop reads first computes, every
later overlapping submit dedups.  Results stream back per task, in
request order, as soon as each future resolves.

Every request is also *measured*: the daemon's lifetime ``MetricsSink``
records one latency sample per span — request planning (including each
cache probe), task queue wait (future creation to executor dispatch),
worker compute, and streaming results back — into log-bucketed
:class:`~repro.metrics.LatencyHistogram`\\ s.  ``status`` reports their
summaries next to the lifetime counters, and when the daemon is started
with a metrics file it appends a periodic ``service.self_report`` event
and rewrites the JSONL (schema v2) atomically, so a crash loses at most
one reporting interval.

The compute path reuses the parallel engine's worker tasks
(:func:`~repro.experiments.parallel._profile_task` /
:func:`~repro.experiments.parallel._scheme_task`), so daemon-served
outcomes are the same objects, byte for byte, the in-process engine
produces — the training-run-shared-across-schemes discipline included.
"""

from __future__ import annotations

import asyncio
import functools
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .. import __version__
from ..experiments.cache import (
    ExperimentCache,
    outcome_key,
    profile_key,
    reference_key,
    trace_key,
)
from ..experiments.parallel import _profile_task, _scheme_task
from ..formation import scheme as scheme_config
from ..metrics import MetricsSink
from ..profiling.path_profile import DEFAULT_DEPTH
from ..scheduling.machine import PAPER_MACHINE, REALISTIC_MACHINE
from ..workloads.suite import workload_map
from .pool import WarmPool
from .protocol import (
    LINE_LIMIT,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
    pack,
)

#: Machine models a request may name.
MACHINES = {"paper": PAPER_MACHINE, "realistic": REALISTIC_MACHINE}

#: Self-report snapshots kept in the daemon's event log.  Each snapshot
#: already carries the *lifetime* counters and histogram summaries, so
#: older ones add history, not information — a ring keeps a long-lived
#: daemon's memory and its periodic JSONL rewrite O(1) instead of
#: growing by one event per interval forever.
MAX_SELF_REPORTS = 60


class ExperimentService:
    """A long-lived experiment daemon bound to one unix-domain socket.

    Args:
        socket_path: where to listen.
        workers: warm-pool size (default: one per CPU).
        cache: shared experiment cache; ``None`` disables the disk cache
            entirely (requests can still dedup in flight).
        verbose: print a line per request/task to stdout.
        metrics_out: JSONL file the daemon's lifetime metrics are written
            to (atomically) at every self-report and at shutdown; ``None``
            keeps telemetry in memory only (still visible via ``status``).
        self_report_interval: seconds between ``service.self_report``
            events; ``0`` disables the periodic task.
    """

    def __init__(
        self,
        socket_path: os.PathLike,
        workers: Optional[int] = None,
        cache: Optional[ExperimentCache] = None,
        verbose: bool = False,
        metrics_out: Optional[os.PathLike] = None,
        self_report_interval: float = 30.0,
    ) -> None:
        self.socket_path = Path(socket_path)
        self.workers = workers or (os.cpu_count() or 1)
        self.cache = cache
        self.verbose = verbose
        self.metrics_out = Path(metrics_out) if metrics_out else None
        self.self_report_interval = self_report_interval
        #: service-lifetime counters/events/histograms (``status`` reports
        #: them; ``metrics_out`` persists them)
        self.metrics = MetricsSink()
        #: outcome content key -> future of (outcome, extras dict)
        self._inflight: Dict[str, asyncio.Future] = {}
        #: profile content key -> future of (profiles, reference)
        self._profile_inflight: Dict[str, asyncio.Future] = {}
        #: compute tasks still running (drained on shutdown)
        self._tasks: set = set()
        self._pool: Optional[WarmPool] = None
        self._stop = asyncio.Event()
        self._started = time.monotonic()

    # -- lifecycle -----------------------------------------------------------

    def _log(self, text: str) -> None:
        if self.verbose:
            print(f"[service] {text}", flush=True)

    def _claim_socket(self) -> None:
        """Bind-or-die: refuse to shadow a live daemon, sweep a stale
        socket left by a killed one."""
        if not self.socket_path.exists():
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            return
        import socket as socketlib

        probe = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        try:
            probe.settimeout(1.0)
            probe.connect(str(self.socket_path))
        except OSError:
            self.socket_path.unlink()
        else:
            raise RuntimeError(
                f"a service is already listening on {self.socket_path}"
            )
        finally:
            probe.close()

    async def serve(self) -> None:
        """Run until a ``shutdown`` request (or SIGTERM/SIGINT) arrives."""
        self._claim_socket()
        self._pool = WarmPool(self.workers)
        pids = self._pool.prime()
        loop = asyncio.get_running_loop()
        import signal

        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self._stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        server = await asyncio.start_unix_server(
            self._handle_client, path=str(self.socket_path), limit=LINE_LIMIT
        )
        print(
            f"[service] listening on {self.socket_path}"
            f" ({self.workers} workers: {pids})",
            flush=True,
        )
        reporter = None
        if self.self_report_interval > 0:
            reporter = asyncio.get_running_loop().create_task(
                self._self_report_loop()
            )
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            if self._tasks:
                await asyncio.wait(self._tasks, timeout=60)
            self._pool.shutdown(wait=True, cancel_futures=True)
            if reporter is not None:
                reporter.cancel()
                try:
                    await reporter
                except asyncio.CancelledError:
                    pass
            self._self_report(final=True)
            try:
                self.socket_path.unlink()
            except OSError:
                pass
            self._log("stopped")

    # -- telemetry -----------------------------------------------------------

    def _self_report_event(self, final: bool = False) -> None:
        """Append one ``service.self_report`` event: a snapshot of the
        lifetime counters and latency summaries.  Older snapshots beyond
        :data:`MAX_SELF_REPORTS` are dropped first (each one supersedes
        its predecessors), so the event log stays bounded over an
        arbitrarily long daemon lifetime."""
        reports = [
            i
            for i, event in enumerate(self.metrics.events)
            if event.get("event") == "service.self_report"
        ]
        if len(reports) >= MAX_SELF_REPORTS:
            drop = set(reports[: len(reports) - MAX_SELF_REPORTS + 1])
            self.metrics.events = [
                event
                for i, event in enumerate(self.metrics.events)
                if i not in drop
            ]
        self.metrics.event(
            "service.self_report",
            final=final,
            uptime_seconds=round(time.monotonic() - self._started, 3),
            counters=dict(sorted(self.metrics.counters.items())),
            histograms={
                name: self.metrics.histograms[name].summary()
                for name in sorted(self.metrics.histograms)
            },
            inflight_tasks=len(self._inflight),
            inflight_profiles=len(self._profile_inflight),
        )

    def _self_report(self, final: bool = False) -> None:
        """Snapshot + synchronous write: shutdown path, where blocking
        is fine (the loop is already draining)."""
        self._self_report_event(final=final)
        if self.metrics_out is not None:
            self.metrics.write_jsonl(self.metrics_out)

    async def _self_report_loop(self) -> None:
        from ..metrics import atomic_write_text

        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.self_report_interval)
            self._self_report_event()
            if self.metrics_out is not None:
                # Serialize on the loop (a consistent snapshot, and the
                # ring above keeps it small), but hand the fsync-backed
                # file write to a thread so a slow disk never stalls
                # request handling.
                text = self.metrics.to_jsonl()
                await loop.run_in_executor(
                    None, atomic_write_text, self.metrics_out, text
                )

    # -- connection handling -------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._stop.is_set():
                line = await reader.readline()
                if not line:
                    break
                message: Dict[str, Any] = {}
                try:
                    message = decode_message(line)
                    await self._dispatch(message, writer)
                except ProtocolError as exc:
                    await self._send(writer, {"type": "error", "message": str(exc)})
                except (ConnectionResetError, BrokenPipeError):
                    raise
                except Exception as exc:  # noqa: BLE001 — daemon must outlive
                    # one bad request; report and keep the connection usable.
                    self.metrics.add("service.errors")
                    await self._send(
                        writer,
                        {
                            "type": "error",
                            "message": f"{type(exc).__name__}: {exc}",
                        },
                    )
                if message.get("op") == "shutdown":
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, message: Dict[str, Any]) -> None:
        writer.write(encode_message(message))
        await writer.drain()

    async def _dispatch(
        self, message: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        op = message.get("op")
        if op == "hello":
            await self._send(writer, self._hello())
        elif op == "status":
            await self._send(writer, self._status())
        elif op == "shutdown":
            self.metrics.add("service.shutdowns")
            await self._send(writer, {"type": "bye"})
            self._stop.set()
        elif op == "submit":
            await self._handle_submit(message, writer)
        else:
            raise ProtocolError(f"unknown op {op!r}")

    def _hello(self) -> Dict[str, Any]:
        return {
            "type": "hello",
            "version": PROTOCOL_VERSION,
            "server_version": __version__,
            "pid": os.getpid(),
            "workers": self.workers,
        }

    def _status(self) -> Dict[str, Any]:
        cache_stats: Optional[Dict[str, int]] = None
        if self.cache is not None:
            stats = self.cache.stats
            cache_stats = {
                "hits": stats.hits,
                "disk_hits": stats.disk_hits,
                "misses": stats.misses,
                "stores": stats.stores,
                "migrations": stats.migrations,
            }
        return {
            "type": "status",
            "version": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "workers": self.workers,
            "worker_pids": list(self._pool.worker_pids()) if self._pool else [],
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "counters": dict(sorted(self.metrics.counters.items())),
            "cache": cache_stats,
            "inflight_tasks": len(self._inflight),
            "inflight_profiles": len(self._profile_inflight),
            "histograms": {
                name: self.metrics.histograms[name].summary()
                for name in sorted(self.metrics.histograms)
            },
        }

    # -- submit --------------------------------------------------------------

    async def _handle_submit(
        self, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        table = workload_map()
        schemes = request.get("schemes") or []
        workloads = request.get("workloads") or list(table)
        unknown = [w for w in workloads if w not in table]
        if unknown or not schemes:
            raise ProtocolError(
                f"bad submit: unknown workloads {unknown}"
                if unknown
                else "bad submit: no schemes"
            )
        try:
            configs = {sname: scheme_config(sname) for sname in schemes}
        except ValueError as exc:
            raise ProtocolError(f"bad submit: {exc}") from exc
        scale = float(request.get("scale", 1.0))
        with_icache = bool(request.get("with_icache", False))
        no_cache = bool(request.get("no_cache", False))
        with_metrics = bool(request.get("with_metrics", False))
        with_tracer = bool(request.get("with_tracer", False))
        machine_name = request.get("machine", "paper")
        machine = MACHINES.get(machine_name)
        if machine is None:
            raise ProtocolError(f"unknown machine {machine_name!r}")
        request_id = request.get("id")

        self.metrics.add("service.requests")
        self.metrics.event(
            "service.submit",
            id=request_id,
            workloads=len(workloads),
            schemes=len(schemes),
            scale=scale,
        )
        self._log(
            f"submit {request_id or '-'}: {len(workloads)} workload(s) x"
            f" {schemes} @ scale {scale}"
        )

        # Plan synchronously: every cache probe and in-flight registration
        # happens before the first await, so a submit read later by the
        # loop deterministically dedups onto this one.
        plan_start = time.perf_counter()
        plan: List[Tuple[str, str, str, Any]] = []
        stats = {"computed": 0, "cache": 0, "dedup": 0}
        for wname in workloads:
            workload = table[wname]
            program = workload.program()
            train = workload.train_tape(scale)
            test = workload.test_tape(scale)
            for sname in schemes:
                key = outcome_key(
                    program,
                    configs[sname],
                    train,
                    test,
                    machine,
                    with_icache,
                    None,
                )
                inflight = self._inflight.get(key)
                if inflight is not None:
                    disposition, result = "dedup", inflight
                else:
                    outcome = None
                    if self.cache is not None and not no_cache:
                        probe_start = time.perf_counter()
                        outcome = self.cache.get_outcome(
                            program,
                            configs[sname],
                            train,
                            test,
                            machine,
                            with_icache,
                            None,
                        )
                        self.metrics.observe(
                            "service.cache.probe",
                            time.perf_counter() - probe_start,
                        )
                    if outcome is not None:
                        disposition, result = "cache", (outcome, {})
                    else:
                        disposition = "computed"
                        result = self._schedule_pair(
                            key,
                            wname,
                            sname,
                            scale,
                            with_icache,
                            machine,
                            no_cache,
                            with_metrics,
                            with_tracer,
                        )
                stats[disposition] += 1
                self.metrics.add(f"service.tasks.{disposition}")
                plan.append((wname, sname, disposition, result))
        self.metrics.observe(
            "service.request.plan", time.perf_counter() - plan_start
        )

        total = len(plan)
        await self._send(
            writer, {"type": "plan", "id": request_id, "total": total}
        )

        # Stream results in request order as their futures resolve.
        stream_start = time.perf_counter()
        for seq, (wname, sname, disposition, result) in enumerate(plan):
            if isinstance(result, asyncio.Future):
                try:
                    outcome, extras = await asyncio.shield(result)
                except Exception as exc:  # noqa: BLE001 — forwarded to client
                    self.metrics.add("service.tasks.failed")
                    await self._send(
                        writer,
                        {
                            "type": "error",
                            "id": request_id,
                            "workload": wname,
                            "scheme": sname,
                            "message": f"{type(exc).__name__}: {exc}",
                        },
                    )
                    return
            else:
                outcome, extras = result
            message: Dict[str, Any] = {
                "type": "task",
                "id": request_id,
                "workload": wname,
                "scheme": sname,
                "disposition": disposition,
                "seq": seq,
                "total": total,
                "outcome": pack(outcome),
            }
            # Observability payloads only exist for tasks this request (or
            # a concurrent twin) actually computed; merge order at the
            # client is request order, matching the serial engine.
            if disposition != "cache":
                for field in (
                    "profile_metrics",
                    "metrics",
                    "profile_trace",
                    "trace",
                ):
                    if extras.get(field) is not None:
                        message[field] = pack(extras[field])
            await self._send(writer, message)
        self.metrics.observe(
            "service.request.stream", time.perf_counter() - stream_start
        )
        self.metrics.observe(
            "service.request.total", time.perf_counter() - plan_start
        )
        self.metrics.event("service.done", id=request_id, **stats)
        await self._send(
            writer, {"type": "done", "id": request_id, "stats": stats}
        )

    # -- compute chain -------------------------------------------------------

    def _schedule_pair(
        self,
        key: str,
        wname: str,
        sname: str,
        scale: float,
        with_icache: bool,
        machine: Any,
        no_cache: bool,
        with_metrics: bool,
        with_tracer: bool,
    ) -> asyncio.Future:
        """Register ``key`` as in flight and start its compute task."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        task = loop.create_task(
            self._compute_pair(
                key,
                future,
                wname,
                sname,
                scale,
                with_icache,
                machine,
                no_cache,
                with_metrics,
                with_tracer,
                created=time.perf_counter(),
            )
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return future

    async def _compute_pair(
        self,
        key: str,
        future: asyncio.Future,
        wname: str,
        sname: str,
        scale: float,
        with_icache: bool,
        machine: Any,
        no_cache: bool,
        with_metrics: bool,
        with_tracer: bool,
        created: float = 0.0,
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            profiles, reference, extras = await self._ensure_profile(
                wname, scale, no_cache, with_metrics, with_tracer
            )
            traced = None
            if (
                scheme_config(sname).kiter is not None
                and self.cache is not None
                and not no_cache
            ):
                # k-iteration schemes replay the recorded training trace;
                # _ensure_profile (or an earlier run) persisted it under a
                # k-independent key.  A miss just means the worker records
                # its own.
                workload = workload_map()[wname]
                traced = self.cache.get(
                    trace_key(
                        workload.program(), workload.train_tape(scale)
                    )
                )
            # Queue wait: scheduling to executor dispatch — covers event
            # loop latency plus any shared training run this task awaited.
            dispatch = time.perf_counter()
            if created:
                self.metrics.observe(
                    "service.task.queue_wait", dispatch - created
                )
            pair, outcome, sink, tracer = await loop.run_in_executor(
                self._pool.executor,
                functools.partial(
                    _scheme_task,
                    wname,
                    sname,
                    scale,
                    with_icache,
                    machine,
                    None,
                    profiles,
                    reference,
                    None,
                    with_metrics,
                    with_tracer,
                    traced=traced,
                ),
            )
            self.metrics.observe(
                "service.task.compute", time.perf_counter() - dispatch
            )
            # One canonical bundle per workload, as in both in-process
            # engines: the outcome carries the profiles/reference every
            # scheme of this workload shares.
            outcome.profiles = profiles
            outcome.reference = reference
            if self.cache is not None and not no_cache:
                self.cache.put(key, outcome)
            extras = dict(extras)
            extras["metrics"] = sink
            extras["trace"] = tracer
            self._log(f"computed {wname}/{sname}")
            future.set_result((outcome, extras))
        except Exception as exc:  # noqa: BLE001 — surfaced via the future
            if not future.done():
                future.set_exception(exc)
                # Mark retrieved even if every requester has gone away.
                future.exception()
        finally:
            self._inflight.pop(key, None)

    async def _ensure_profile(
        self,
        wname: str,
        scale: float,
        no_cache: bool,
        with_metrics: bool,
        with_tracer: bool,
    ) -> Tuple[Any, Any, Dict[str, Any]]:
        """One training run (profiles + testing reference) per workload,
        deduped in flight and shared through the cache.

        Returns ``(profiles, reference, extras)`` where ``extras`` carries
        the profile-stage metrics/trace only for the caller that actually
        caused the computation (merge order stays request order).
        """
        table = workload_map()
        workload = table[wname]
        program = workload.program()
        train = workload.train_tape(scale)
        test = workload.test_tape(scale)
        pkey = profile_key(program, train, DEFAULT_DEPTH)
        rkey = reference_key(program, test)
        inflight = self._profile_inflight.get(pkey + rkey)
        if inflight is not None:
            self.metrics.add("service.profiles.dedup")
            profiles, reference = await asyncio.shield(inflight)
            return profiles, reference, {}
        if self.cache is not None and not no_cache:
            profiles = self.cache.get(pkey)
            reference = self.cache.get(rkey)
            if profiles is not None and reference is not None:
                self.metrics.add("service.profiles.cache")
                return profiles, reference, {}
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._profile_inflight[pkey + rkey] = future
        try:
            profile_start = time.perf_counter()
            _, traced, profiles, reference, sink, tracer = (
                await loop.run_in_executor(
                    self._pool.executor,
                    functools.partial(
                        _profile_task, wname, scale, with_metrics, with_tracer
                    ),
                )
            )
            self.metrics.observe(
                "service.profile.compute",
                time.perf_counter() - profile_start,
            )
            if self.cache is not None and not no_cache:
                self.cache.put(pkey, profiles)
                self.cache.put(trace_key(program, train), traced)
                self.cache.put(rkey, reference)
            self.metrics.add("service.profiles.computed")
            future.set_result((profiles, reference))
            return (
                profiles,
                reference,
                {"profile_metrics": sink, "profile_trace": tracer},
            )
        except Exception as exc:  # noqa: BLE001 — surfaced via the future
            future.set_exception(exc)
            future.exception()
            raise
        finally:
            self._profile_inflight.pop(pkey + rkey, None)


def run_service(
    socket_path: os.PathLike,
    workers: Optional[int] = None,
    cache: Optional[ExperimentCache] = None,
    verbose: bool = False,
    metrics_out: Optional[os.PathLike] = None,
    self_report_interval: float = 30.0,
) -> None:
    """Blocking entry point: serve until shutdown."""
    service = ExperimentService(
        socket_path,
        workers=workers,
        cache=cache,
        verbose=verbose,
        metrics_out=metrics_out,
        self_report_interval=self_report_interval,
    )
    asyncio.run(service.serve())
