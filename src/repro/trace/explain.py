"""Explain a schedule from its decision trace; diff two traced runs.

This module powers the two observability verbs:

* ``python -m repro explain WORKLOAD --scheme S`` — run one pipeline
  with a :class:`~repro.trace.Tracer` and render, for one superblock,
  the chain of formation decisions that shaped it (seed choice, every
  grow step with the rejected alternatives, enlargement, tail
  duplication), the provenance of every scheduled operation, and the
  exit-cycle histogram observed by the simulator.

* ``python -m repro trace-diff WORKLOAD --schemes A B`` — run the same
  workload under two schemes, align their decision streams, name the
  *first diverging formation decision*, attribute the cycle delta to
  superblocks via the exit histograms, and show where the winning
  scheme's superblocks exit later (deeper on-trace progress per entry).

Unlike :mod:`repro.trace.tracer` (stdlib-only, imported by the whole
compiler), this module imports the pipeline and the workload suite —
keep it out of ``repro.trace.__init__`` so tracing stays cheap to
import.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..ir.instructions import format_instruction
from ..pipeline import SchemeOutcome, run_scheme
from ..scheduling.machine import MachineModel, PAPER_MACHINE
from ..workloads.suite import get_workload
from .tracer import Tracer

#: (proc name, superblock head label)
HeadKey = Tuple[str, str]


def run_traced(
    workload_name: str,
    scheme_name: str,
    scale: float = 1.0,
    machine: MachineModel = PAPER_MACHINE,
) -> Tuple[Tracer, SchemeOutcome]:
    """Run one (workload, scheme) pipeline under a fresh tracer."""
    workload = get_workload(workload_name)
    tracer = Tracer()
    with tracer.context(workload=workload_name, scheme=scheme_name):
        outcome = run_scheme(
            workload.program(),
            scheme_name,
            workload.train_tape(scale),
            workload.test_tape(scale),
            machine=machine,
            tracer=tracer,
        )
    return tracer, outcome


# -- decision-stream views ---------------------------------------------------


def decision_chains(
    tracer: Tracer, kind: str, scheme: Optional[str] = None
) -> Dict[HeadKey, List[Dict[str, Any]]]:
    """Group ``kind`` decisions by (proc, head), preserving seed order."""
    chains: Dict[HeadKey, List[Dict[str, Any]]] = {}
    for record in tracer.decisions:
        if record.get("kind") != kind:
            continue
        if scheme is not None and record.get("scheme") != scheme:
            continue
        proc = record.get("proc")
        head = record.get("head")
        if proc is None or head is None:
            continue
        chains.setdefault((proc, head), []).append(record)
    return chains


def _step_signature(record: Dict[str, Any]) -> Tuple:
    """What makes two formation steps "the same decision": the action
    taken and the block it concerns — never frequencies (edge and path
    profiles count in different units) or timestamps (there are none)."""
    return (
        record.get("action"),
        record.get("chosen"),
        record.get("candidate"),
        record.get("reason"),
    )


def entries_per_head(tracer: Tracer) -> Dict[HeadKey, int]:
    """Dynamic entry count of each superblock, from the exit histograms."""
    totals: Dict[HeadKey, int] = {}
    for (_, _, proc, head), hist in tracer.exit_histograms.items():
        totals[(proc, head)] = totals.get((proc, head), 0) + sum(
            hist.values()
        )
    return totals


def mean_exit_cycles(tracer: Tracer) -> Dict[HeadKey, float]:
    """Mean simulator exit cycle of each superblock (higher = control
    stayed on trace longer per entry)."""
    sums: Dict[HeadKey, int] = {}
    counts: Dict[HeadKey, int] = {}
    for (_, _, proc, head), hist in tracer.exit_histograms.items():
        key = (proc, head)
        for cycle, count in hist.items():
            sums[key] = sums.get(key, 0) + cycle * count
            counts[key] = counts.get(key, 0) + count
    return {
        key: sums[key] / counts[key] for key in sums if counts.get(key)
    }


def attributed_cycles(tracer: Tracer) -> Dict[HeadKey, int]:
    """Cycles attributable to each superblock: each entry that exits at
    cycle ``c`` occupied the machine for ``c + 1`` cycles."""
    totals: Dict[HeadKey, int] = {}
    for (_, _, proc, head), hist in tracer.exit_histograms.items():
        key = (proc, head)
        totals[key] = totals.get(key, 0) + sum(
            (cycle + 1) * count for cycle, count in hist.items()
        )
    return totals


# -- explain -----------------------------------------------------------------


def explain(
    tracer: Tracer,
    outcome: SchemeOutcome,
    proc: Optional[str] = None,
    head: Optional[str] = None,
) -> Dict[str, Any]:
    """Collect everything known about one superblock's construction.

    Defaults to the hottest superblock (most dynamic entries).  Returns a
    JSON-able dict; render with :func:`format_explain`.
    """
    entries = entries_per_head(tracer)
    if proc is None or head is None:
        candidates = [
            key
            for key in sorted(
                entries, key=lambda k: (-entries[k], k[0], k[1])
            )
            if proc is None or key[0] == proc
        ]
        if not candidates:
            raise ValueError(
                "no simulated superblock entries recorded"
                + (f" for procedure {proc!r}" if proc else "")
            )
        proc, head = candidates[0]

    def _mine(record: Dict[str, Any]) -> bool:
        return record.get("proc") == proc and record.get("head") == head

    selection = [
        r for r in tracer.decisions if r.get("kind") == "select" and _mine(r)
    ]
    enlargement = [
        r for r in tracer.decisions if r.get("kind") == "enlarge" and _mine(r)
    ]
    duplication = [
        r
        for r in tracer.decisions
        if r.get("kind") in ("tail_dup", "reentry") and _mine(r)
    ]
    compact = next(
        (
            r
            for r in tracer.decisions
            if r.get("kind") == "compact" and _mine(r)
        ),
        None,
    )
    spill = next(
        (
            r
            for r in tracer.decisions
            if r.get("kind") == "spill" and r.get("proc") == proc
        ),
        None,
    )

    schedule = outcome.compiled.procedures[proc].schedules.get(head)
    ops: List[Dict[str, Any]] = []
    if schedule is not None:
        for op in schedule.ops:
            ops.append(
                {
                    "cycle": op.cycle,
                    "slot": op.slot,
                    "text": format_instruction(op.instr),
                    "origin": op.instr.origin,
                    "speculative": bool(op.speculative),
                }
            )
        ops.sort(key=lambda o: (o["cycle"], o["slot"]))

    hist = tracer.histogram(proc, head)
    total = sum(hist.values())
    mean = (
        sum(cycle * count for cycle, count in hist.items()) / total
        if total
        else None
    )
    return {
        "workload": next(
            (r.get("workload") for r in tracer.decisions if r.get("workload")),
            None,
        ),
        "scheme": outcome.scheme,
        "proc": proc,
        "head": head,
        "entries": entries.get((proc, head), 0),
        "selection": selection,
        "enlargement": enlargement,
        "duplication": duplication,
        "compact": compact,
        "spill": spill,
        "schedule": ops,
        "exit_histogram": {str(c): n for c, n in sorted(hist.items())},
        "mean_exit_cycle": mean,
    }


def _fmt_alternatives(record: Dict[str, Any], limit: int = 3) -> str:
    alts = record.get("alternatives") or []
    if not alts:
        return ""
    shown = ", ".join(f"{label}({freq})" for label, freq in alts[:limit])
    more = f", +{len(alts) - limit} more" if len(alts) > limit else ""
    return f" over [{shown}{more}]"


def _fmt_select(record: Dict[str, Any]) -> str:
    action = record.get("action")
    if action == "seed":
        return (
            f"seed {record['head']} (block freq {record.get('freq', 0)},"
            f" {record.get('selector')} selector)"
        )
    if action == "extend":
        return (
            f"step {record['step']}: extend -> {record['chosen']}"
            f" (freq {record.get('freq')})" + _fmt_alternatives(record)
        )
    parts = [f"step {record['step']}: stop ({record.get('reason')})"]
    if record.get("candidate"):
        parts.append(f"candidate was {record['candidate']}")
    if record.get("mutual_pred"):
        parts.append(f"its likeliest pred is {record['mutual_pred']}")
    return ", ".join(parts) + _fmt_alternatives(record)


def _fmt_enlarge(record: Dict[str, Any]) -> str:
    action = record.get("action")
    tag = record.get("enlarger", "?")
    if action in ("peel", "peel_skip"):
        return (
            f"[{tag}] {action}: avg trips {record.get('trips')} ->"
            f" {record.get('copies')} copies"
            f" (threshold {record.get('threshold')})"
        )
    if action == "unroll":
        return (
            f"[{tag}] unroll: avg trips {record.get('trips')} ->"
            f" {record.get('copies')} copies"
        )
    if action in ("expand", "grow"):
        return (
            f"[{tag}] {action} -> {record.get('chosen')}"
            f" (freq {record.get('freq')}"
            + (
                f", p={record.get('prob')}"
                if record.get("prob") is not None
                else ""
            )
            + ")"
            + _fmt_alternatives(record)
        )
    if action == "ratio_skip":
        return (
            f"[{tag}] skipped: completion ratio {record.get('ratio')}"
            f" < {record.get('threshold')}"
        )
    reason = record.get("reason")
    return f"[{tag}] stop ({reason})" if reason else f"[{tag}] {action}"


def format_explain(report: Dict[str, Any], max_ops: int = 24) -> str:
    """Human-readable rendering of an :func:`explain` report."""
    lines: List[str] = []
    lines.append(
        f"superblock {report['proc']}:{report['head']}"
        f" — scheme {report['scheme']}, workload {report['workload']}"
    )
    lines.append(
        f"  entered {report['entries']} times; mean exit cycle"
        f" {report['mean_exit_cycle']:.2f}"
        if report["mean_exit_cycle"] is not None
        else f"  entered {report['entries']} times (never simulated)"
    )
    lines.append("formation decisions:")
    for record in report["selection"]:
        lines.append("  " + _fmt_select(record))
    for record in report["enlargement"]:
        lines.append("  " + _fmt_enlarge(record))
    for record in report["duplication"]:
        if record["kind"] == "tail_dup":
            lines.append(
                f"  tail-duplicate at {record.get('at')}: side preds"
                f" {record.get('side_preds')} get a copy of"
                f" {record.get('copied')}"
            )
        else:
            lines.append(
                f"  re-entry at {record.get('at')}:"
                f" {record.get('repair')} -> {record.get('new_target')}"
            )
    if report["compact"]:
        c = report["compact"]
        lines.append(
            f"compaction: {c.get('cycles')} cycles for {c.get('ops')} ops"
            f" ({c.get('speculative')} speculative,"
            f" {c.get('compensation_movs')} compensation movs)"
        )
    if report["spill"]:
        s = report["spill"]
        lines.append(
            f"allocation: {s.get('arch_spilled')} arch +"
            f" {s.get('temps_spilled')} temp values spilled"
            f" ({s.get('spill_instructions')} spill instructions)"
        )
    ops = report["schedule"]
    if ops:
        lines.append(f"schedule ({len(ops)} ops; origin = source instr):")
        for op in ops[:max_ops]:
            spec = " [spec]" if op["speculative"] else ""
            lines.append(
                f"  c{op['cycle']:>3} s{op['slot']}: {op['text']:<28}"
                f" <- {op['origin']}{spec}"
            )
        if len(ops) > max_ops:
            lines.append(f"  ... {len(ops) - max_ops} more ops")
    hist = report["exit_histogram"]
    if hist:
        lines.append(
            "exit cycles: "
            + ", ".join(f"c{c}×{n}" for c, n in list(hist.items())[:8])
            + (" ..." if len(hist) > 8 else "")
        )
    return "\n".join(lines)


# -- trace-diff --------------------------------------------------------------


def _first_chain_divergence(
    chains_a: Dict[HeadKey, List[Dict[str, Any]]],
    chains_b: Dict[HeadKey, List[Dict[str, Any]]],
) -> Optional[Dict[str, Any]]:
    """First (proc, head) whose decision chains differ, in a's seed order."""
    keys = list(chains_a)
    keys.extend(k for k in chains_b if k not in chains_a)
    for key in keys:
        chain_a = chains_a.get(key, [])
        chain_b = chains_b.get(key, [])
        length = max(len(chain_a), len(chain_b))
        for index in range(length):
            rec_a = chain_a[index] if index < len(chain_a) else None
            rec_b = chain_b[index] if index < len(chain_b) else None
            sig_a = _step_signature(rec_a) if rec_a else None
            sig_b = _step_signature(rec_b) if rec_b else None
            if sig_a != sig_b:
                return {
                    "proc": key[0],
                    "head": key[1],
                    "step": index,
                    "a": rec_a,
                    "b": rec_b,
                }
    return None


def trace_diff(
    tracer_a: Tracer,
    tracer_b: Tracer,
    label_a: str,
    label_b: str,
    cycles_a: Optional[int] = None,
    cycles_b: Optional[int] = None,
    top: int = 5,
) -> Dict[str, Any]:
    """Align two traced runs of the same workload and explain the gap.

    Selection chains are compared first (in seed order); if selection is
    identical the enlargement chains are compared.  The cycle delta is
    attributed to superblocks via the exit histograms, and the mean exit
    cycles show which run leaves its superblocks later.
    """
    divergence = None
    phase = None
    for kind in ("select", "enlarge", "tail_dup", "reentry", "compact"):
        divergence = _first_chain_divergence(
            decision_chains(tracer_a, kind), decision_chains(tracer_b, kind)
        )
        if divergence is not None:
            phase = kind
            break

    attr_a = attributed_cycles(tracer_a)
    attr_b = attributed_cycles(tracer_b)
    heads = set(attr_a) | set(attr_b)
    deltas = sorted(
        (
            {
                "proc": proc,
                "head": head,
                label_a: attr_a.get((proc, head), 0),
                label_b: attr_b.get((proc, head), 0),
                "delta": attr_b.get((proc, head), 0)
                - attr_a.get((proc, head), 0),
            }
            for proc, head in heads
        ),
        key=lambda row: (-abs(row["delta"]), row["proc"], row["head"]),
    )

    mean_a = mean_exit_cycles(tracer_a)
    mean_b = mean_exit_cycles(tracer_b)
    entries_b = entries_per_head(tracer_b)
    later = sorted(
        (
            {
                "proc": proc,
                "head": head,
                label_a: round(mean_a[(proc, head)], 3),
                label_b: round(mean_b[(proc, head)], 3),
                "entries": entries_b.get((proc, head), 0),
            }
            for proc, head in set(mean_a) & set(mean_b)
            if mean_b[(proc, head)] > mean_a[(proc, head)]
        ),
        key=lambda row: (
            -(row[label_b] - row[label_a]) * row["entries"],
            row["proc"],
            row["head"],
        ),
    )

    report: Dict[str, Any] = {
        "labels": [label_a, label_b],
        "first_divergence": divergence,
        "divergence_phase": phase,
        "cycle_attribution": deltas[:top],
        "later_exits": later[:top],
    }
    if cycles_a is not None and cycles_b is not None:
        report["cycles"] = {
            label_a: cycles_a,
            label_b: cycles_b,
            "delta": cycles_b - cycles_a,
        }
    return report


def _fmt_divergent_record(record: Optional[Dict[str, Any]]) -> str:
    if record is None:
        return "(no decision at this step)"
    kind = record.get("kind")
    if kind == "select":
        return _fmt_select(record)
    if kind == "enlarge":
        return _fmt_enlarge(record)
    keys = (
        "action", "chosen", "candidate", "reason", "at", "repair", "cycles"
    )
    fields = ", ".join(
        f"{k}={record[k]}" for k in keys if record.get(k) is not None
    )
    return f"{kind}: {fields}" if fields else str(kind)


def format_trace_diff(report: Dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`trace_diff` report."""
    label_a, label_b = report["labels"]
    lines: List[str] = []
    cycles = report.get("cycles")
    if cycles:
        faster = label_b if cycles["delta"] < 0 else label_a
        lines.append(
            f"cycles: {label_a}={cycles[label_a]}"
            f" {label_b}={cycles[label_b]}"
            f" (delta {cycles['delta']:+d}; {faster} is faster)"
        )
    div = report["first_divergence"]
    if div is None:
        lines.append("decision streams are identical")
    else:
        lines.append(
            f"first diverging decision"
            f" ({report['divergence_phase']} phase) at"
            f" {div['proc']}:{div['head']} step {div['step']}:"
        )
        lines.append(f"  {label_a}: {_fmt_divergent_record(div['a'])}")
        lines.append(f"  {label_b}: {_fmt_divergent_record(div['b'])}")
    if report["cycle_attribution"]:
        lines.append(
            f"cycle delta by superblock ({label_b} - {label_a}, top):"
        )
        for row in report["cycle_attribution"]:
            lines.append(
                f"  {row['proc']}:{row['head']}: {row['delta']:+d}"
                f" ({label_a}={row[label_a]}, {label_b}={row[label_b]})"
            )
    if report["later_exits"]:
        lines.append(
            f"superblocks where {label_b} exits later (deeper on-trace"
            f" progress per entry):"
        )
        for row in report["later_exits"]:
            lines.append(
                f"  {row['proc']}:{row['head']}: mean exit"
                f" {row[label_a]} -> {row[label_b]}"
                f" over {row['entries']} entries"
            )
    return "\n".join(lines)
