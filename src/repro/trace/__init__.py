"""Decision tracing and instruction provenance.

``repro.trace`` makes the pipeline *explainable*: a :class:`Tracer`
threaded through formation, compaction, and simulation (exactly like a
:class:`~repro.metrics.MetricsSink` — every site guarded by
``if tracer is not None``, so a tracer-less run is byte-identical)
records

* **formation decisions** — each trace-selection/enlargement step with
  the chosen successor, its frequency, and the rejected alternatives;
* **instruction provenance** — a stable origin id stamped on every
  source instruction and carried through tail duplication, speculation,
  renaming compensation movs, and spill code;
* **spans** — stage timings exportable as Chrome trace-event JSON
  (loadable in Perfetto / ``chrome://tracing``), merged
  deterministically across parallel workers;
* **exit-cycle histograms** — per-superblock distributions of the cycle
  at which the VLIW simulator left each superblock (the paper's
  "exited later" effect, measured directly).

The CLI verbs ``python -m repro explain`` and ``python -m repro
trace-diff`` (see :mod:`repro.trace.explain`) render these records.
"""

from .perfetto import TRACE_SCHEMA_VERSION, read_trace, to_trace_events, write_trace
from .provenance import (
    ProvenanceError,
    assign_origins,
    check_provenance,
    origin_id,
    origin_table,
    require_provenance,
)
from .tracer import Tracer, tspan

__all__ = [
    "Tracer",
    "tspan",
    "ProvenanceError",
    "assign_origins",
    "check_provenance",
    "origin_id",
    "origin_table",
    "require_provenance",
    "TRACE_SCHEMA_VERSION",
    "to_trace_events",
    "write_trace",
    "read_trace",
]
