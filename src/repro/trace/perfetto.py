"""Chrome trace-event (Perfetto-loadable) export of a :class:`Tracer`.

The JSON object format understood by Perfetto and ``chrome://tracing``:
a ``traceEvents`` array of complete ("X") events with microsecond
timestamps.  Viewers ignore unknown top-level keys, so the export also
carries the full decision log and exit-cycle histograms under a
``repro`` key — one file holds everything ``explain``/``trace-diff``
need, and :func:`read_trace` rebuilds an equivalent tracer from it
(exact round-trip: spans already store microseconds).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

from .tracer import Tracer

#: Version of the ``repro`` payload embedded in trace files.
TRACE_SCHEMA_VERSION = 1


def _encode_histograms(tracer: Tracer) -> List[Dict[str, Any]]:
    return [
        {
            "workload": workload,
            "scheme": scheme,
            "proc": proc,
            "head": head,
            # JSON object keys must be strings; cycles decode via int().
            "hist": {str(cycle): count for cycle, count in sorted(hist.items())},
        }
        for (workload, scheme, proc, head), hist in tracer.exit_histograms.items()
    ]


def to_trace_events(tracer: Tracer) -> Dict[str, Any]:
    """Render ``tracer`` as a Chrome trace-event JSON object."""
    events = []
    for span in tracer.spans:
        event: Dict[str, Any] = {
            "name": span["name"],
            "cat": "repro",
            "ph": "X",
            "ts": span["ts"],
            "dur": span["dur"],
            "pid": span["pid"],
            "tid": span["pid"],
        }
        if span["args"]:
            event["args"] = span["args"]
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.trace"},
        "repro": {
            "schema_version": TRACE_SCHEMA_VERSION,
            "decisions": tracer.decisions,
            "exit_histograms": _encode_histograms(tracer),
        },
    }


def write_trace(tracer: Tracer, path: os.PathLike) -> int:
    """Write the trace-event JSON file; returns the span-event count."""
    document = to_trace_events(tracer)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True)
        handle.write("\n")
    return len(document["traceEvents"])


def read_trace(path: os.PathLike) -> Tracer:
    """Rebuild a :class:`Tracer` from a :func:`write_trace` file.

    Raises ``ValueError`` when the embedded ``repro`` payload declares a
    schema version this code does not understand.
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    payload = document.get("repro", {})
    version = payload.get("schema_version")
    if version != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema version {version!r} "
            f"(expected {TRACE_SCHEMA_VERSION})"
        )
    tracer = Tracer()
    tracer.decisions = list(payload.get("decisions", []))
    for event in document.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        tracer.spans.append(
            {
                "name": event["name"],
                "ts": event["ts"],
                "dur": event["dur"],
                "pid": event.get("pid", 0),
                "args": event.get("args", {}),
            }
        )
    for entry in payload.get("exit_histograms", []):
        key = (
            entry.get("workload"),
            entry.get("scheme"),
            entry["proc"],
            entry["head"],
        )
        tracer.exit_histograms[key] = {
            int(cycle): count for cycle, count in entry["hist"].items()
        }
    return tracer
