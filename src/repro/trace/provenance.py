"""Instruction provenance: stable origin ids through the whole pipeline.

:func:`assign_origins` stamps every instruction of the *source* program
with an id ``"proc:label:index"`` naming its original basic block and
position.  Because :meth:`~repro.ir.instructions.Instruction.copy`
preserves the ``origin`` field, tail duplication, enlargement, and
superblock extraction carry it along for free; the remaining producers
of *new* instructions — constant folding, local value numbering,
renaming compensation movs, and register-allocator spill code — inherit
the origin of the instruction they stand in for.

The invariant checked by :func:`check_provenance` (and wired into the
differential fuzz harness): **every scheduled instruction resolves to
exactly one instruction of the source program**.  A ``None`` origin
means some transformation forgot to stamp its output; an unknown origin
means an id was fabricated or the wrong program was consulted.
"""

from __future__ import annotations

from typing import Dict, List

from ..ir.cfg import Program
from ..ir.instructions import Instruction


class ProvenanceError(AssertionError):
    """A scheduled instruction failed to resolve to one source instruction."""


def origin_id(proc: str, label: str, index: int) -> str:
    """The stable id of instruction ``index`` of block ``label``."""
    return f"{proc}:{label}:{index}"


def assign_origins(program: Program) -> int:
    """Stamp every instruction of ``program`` with its origin id.

    Call this on the *source* program before formation; duplicated and
    transformed instructions then inherit the stamp.  Returns the number
    of instructions stamped.  Idempotent, and invisible to execution,
    printing, and structural equality.
    """
    count = 0
    for proc in program.procedures():
        for block in proc.blocks():
            for index, instr in enumerate(block.instructions):
                instr.origin = origin_id(proc.name, block.label, index)
                count += 1
    return count


def origin_table(program: Program) -> Dict[str, Instruction]:
    """Map every origin id of ``program`` to its source instruction."""
    table: Dict[str, Instruction] = {}
    for proc in program.procedures():
        for block in proc.blocks():
            for index, instr in enumerate(block.instructions):
                table[origin_id(proc.name, block.label, index)] = instr
    return table


def check_provenance(source: Program, compiled) -> List[str]:
    """Check every scheduled instruction against the source program.

    Args:
        source: the program *before* formation (stamped by
            :func:`assign_origins`).
        compiled: the :class:`~repro.scheduling.compactor.CompiledProgram`
            built from it with a tracer active.

    Returns:
        Human-readable problem strings; empty when the invariant holds.
    """
    valid = set(origin_table(source))
    problems: List[str] = []
    for pname, cproc in compiled.procedures.items():
        for head, schedule in cproc.schedules.items():
            for op in schedule.ops:
                origin = op.instr.origin
                where = (
                    f"{pname}/{head} cycle {op.cycle} slot {op.slot} "
                    f"({op.instr.opcode.value})"
                )
                if origin is None:
                    problems.append(f"{where}: no origin")
                elif origin not in valid:
                    problems.append(f"{where}: unknown origin {origin!r}")
    return problems


def require_provenance(source: Program, compiled) -> None:
    """Raise :class:`ProvenanceError` if :func:`check_provenance` fails."""
    problems = check_provenance(source, compiled)
    if problems:
        head = "; ".join(problems[:3])
        more = f" (+{len(problems) - 3} more)" if len(problems) > 3 else ""
        raise ProvenanceError(f"provenance violated: {head}{more}")
