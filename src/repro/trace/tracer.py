"""The decision tracer: formation decisions, timing spans, exit histograms.

Modeled on :class:`~repro.metrics.sink.MetricsSink` and subject to the
same contract:

* **zero overhead when off** — every site in the compiler is guarded by
  ``if tracer is not None``; a tracer-less run never allocates, times,
  or queries a profile beyond what the untraced pipeline already does,
  and produces byte-identical output;
* **deterministic records** — decision records carry no timestamps or
  pids, so a serial run and a parallel run (one tracer per worker,
  merged back in request order) produce *identical* decision streams;
* **mergeable** — :meth:`Tracer.merge` concatenates decisions/spans and
  sums exit histograms, mirroring ``MetricsSink.merge``.

Spans store start/duration in microseconds (the Chrome trace-event
unit), so the Perfetto export in :mod:`repro.trace.perfetto` round-trips
without float drift.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager, nullcontext
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

#: key of one exit histogram: (workload, scheme, proc, superblock head)
HistKey = Tuple[Optional[str], Optional[str], str, str]


def tspan(tracer: Optional["Tracer"], name: str, **args: Any):
    """Span context for an optional tracer; ``nullcontext`` when absent."""
    if tracer is None:
        return nullcontext()
    return tracer.span(name, **args)


class Tracer:
    """Collects formation decisions, timing spans, and exit histograms.

    Args:
        clock: monotonic time source in seconds (overridable for
            deterministic tests); defaults to :func:`time.perf_counter`.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        #: decision records in emission order; flat JSON-able dicts with
        #: no timestamps, so serial and parallel runs agree exactly
        self.decisions: List[Dict[str, Any]] = []
        #: completed spans: {"name", "ts", "dur" (microseconds), "pid",
        #: "args"} in completion order
        self.spans: List[Dict[str, Any]] = []
        #: (workload, scheme, proc, head) -> {exit cycle -> count}
        self.exit_histograms: Dict[HistKey, Dict[int, int]] = {}
        #: labels stamped onto every decision/span (workload/scheme)
        self._labels: Dict[str, Any] = {}

    # -- context labels ------------------------------------------------------

    @contextmanager
    def context(self, **labels: Any) -> Iterator["Tracer"]:
        """Stamp ``labels`` (e.g. ``workload=..., scheme=...``) onto every
        record emitted inside the ``with`` block.  Nested contexts stack."""
        saved = self._labels
        self._labels = {**saved, **labels}
        try:
            yield self
        finally:
            self._labels = saved

    # -- decisions -----------------------------------------------------------

    def decision(self, kind: str, **fields: Any) -> None:
        """Append one formation/compaction decision record.

        ``kind`` names the decision family (``select``, ``enlarge``,
        ``tail_dup``, ``reentry``, ``compact``, ...); ``fields`` carry
        the specifics (proc, head, step, action, chosen, freq,
        alternatives, reason).  No timestamp: records must be identical
        between serial and parallel runs.
        """
        record: Dict[str, Any] = {"kind": kind}
        record.update(self._labels)
        record.update(fields)
        self.decisions.append(record)

    # -- spans ---------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **args: Any) -> Iterator[Dict[str, Any]]:
        """Time one region; records a complete ("X") span on exit.

        Yields the span's args dict so the body can attach values it
        only knows at the end (mirrors ``MetricsSink.stage``)."""
        merged = {**self._labels, **args}
        start = self._clock()
        try:
            yield merged
        finally:
            elapsed = self._clock() - start
            self.spans.append(
                {
                    "name": name,
                    "ts": round(start * 1e6, 3),
                    "dur": round(elapsed * 1e6, 3),
                    "pid": os.getpid(),
                    "args": merged,
                }
            )

    # -- exit histograms -----------------------------------------------------

    def exit_cycle(self, proc: str, head: str, cycle: int) -> None:
        """Record that a superblock execution exited at ``cycle``."""
        key = (
            self._labels.get("workload"),
            self._labels.get("scheme"),
            proc,
            head,
        )
        hist = self.exit_histograms.get(key)
        if hist is None:
            hist = self.exit_histograms[key] = {}
        hist[cycle] = hist.get(cycle, 0) + 1

    def histogram(self, proc: str, head: str) -> Dict[int, int]:
        """Exit histogram for one superblock, summed over label contexts."""
        total: Dict[int, int] = {}
        for (_, _, hproc, hhead), hist in self.exit_histograms.items():
            if hproc == proc and hhead == head:
                for cycle, count in hist.items():
                    total[cycle] = total.get(cycle, 0) + count
        return total

    # -- aggregation ---------------------------------------------------------

    def merge(self, other: "Tracer") -> None:
        """Fold another tracer (e.g. shipped back from a worker process)
        into this one: decisions and spans concatenate, histograms sum.
        Merging per-worker tracers in request order reproduces the
        serial decision stream exactly."""
        self.decisions.extend(other.decisions)
        self.spans.extend(other.spans)
        for key, hist in other.exit_histograms.items():
            mine = self.exit_histograms.get(key)
            if mine is None:
                mine = self.exit_histograms[key] = {}
            for cycle, count in hist.items():
                mine[cycle] = mine.get(cycle, 0) + count
