"""Reproduction of *Better Global Scheduling Using Path Profiles*
(Cliff Young and Michael D. Smith, MICRO-31, 1998).

The package implements the paper's full tool chain on a virtual
Alpha-flavoured VLIW target: a MiniC frontend, an IR interpreter, edge and
general-path profilers, edge- and path-profile-driven superblock formation,
a compacting top-down cycle scheduler with register renaming, linear-scan
register allocation, Pettis–Hansen-style code layout, and a cycle-accurate
simulator with an instruction-cache model.  See DESIGN.md for the system
inventory and the per-experiment index.
"""

__version__ = "0.1.0"
