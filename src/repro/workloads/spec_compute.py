"""SPEC substitutes, compute-bound group: com(press), eqn(tott),
esp(resso), ijpeg.

Each stand-in mirrors the control-flow property the paper calls out for the
original benchmark:

* **com** — compress's run time is "dominated by few loops"; the stand-in is
  a greedy LZ-style hash compressor with one dominant match/literal loop.
* **eqn** — eqntott "contains a very high-frequency correlated branch [Pan
  et al.], but the block guarded by this branch is very small.  Hence, loop
  unrolling is more important"; the stand-in compares bit vectors with long
  equal prefixes (early-out compare loop + tiny correlated guard).
* **esp** — espresso does boolean minimization; the stand-in runs cube
  containment checks with bitwise operations and data-dependent early exits.
* **ijpeg** — loop-dominated numeric kernels; the stand-in runs separable
  8x8 integer transforms with a biased quantization branch.
"""

from __future__ import annotations

import random
from typing import List

from .base import Workload, sized

COM_SRC = """
// com: greedy LZ-style compressor with a hash table of 2-byte contexts.
func main() {
    var n = 0;
    var c = read();
    while (c >= 0) {
        mem[5000 + n] = c;
        n = n + 1;
        c = read();
    }
    var literals = 0;
    var matches = 0;
    var checksum = 0;
    var i = 0;
    while (i + 1 < n) {
        var h = (mem[5000 + i] * 31 + mem[5000 + i + 1]) % 509;
        var cand = mem[1000 + h] - 1;
        mem[1000 + h] = i + 1;
        var matched = 0;
        if (cand >= 0) {
            if (mem[5000 + cand] == mem[5000 + i]) {
                if (mem[5000 + cand + 1] == mem[5000 + i + 1]) {
                    var len = 2;
                    while (i + len < n && len < 18
                           && mem[5000 + cand + len] == mem[5000 + i + len]) {
                        len = len + 1;
                    }
                    matches = matches + 1;
                    checksum = checksum + len * 7 + (i - cand);
                    i = i + len;
                    matched = 1;
                }
            }
        }
        if (matched == 0) {
            literals = literals + 1;
            checksum = checksum + mem[5000 + i];
            i = i + 1;
        }
    }
    print(literals);
    print(matches);
    print(checksum);
}
"""


def _compressible_tape(seed: int, length: int) -> List[int]:
    """Byte stream with heavy repetition (so the match loop dominates)."""
    rng = random.Random(seed)
    phrases = [
        [rng.randint(97, 105) for _ in range(rng.randint(3, 9))]
        for _ in range(6)
    ]
    tape: List[int] = []
    while len(tape) < length:
        if rng.random() < 0.75:
            tape.extend(rng.choice(phrases))
        else:
            tape.append(rng.randint(97, 122))
    tape = tape[:length]
    tape.append(-1)
    return tape


EQN_SRC = """
// eqn: bit-vector comparison with long equal prefixes (early-out loop)
// plus a tiny correlated flip counter.
func main() {
    var width = read();
    var pairs = read();
    // load 2*pairs vectors of `width` words
    var total = 2 * pairs * width;
    var i = 0;
    while (i < total) {
        mem[4000 + i] = read();
        i = i + 1;
    }
    var equal = 0;
    var less = 0;
    var greater = 0;
    var flips = 0;
    var lastcmp = 0;
    for (var p = 0; p < pairs; p = p + 1) {
        var a = 4000 + p * 2 * width;
        var b = a + width;
        var cmp = 0;
        for (var j = 0; j < width; j = j + 1) {
            var x = mem[a + j];
            var y = mem[b + j];
            if (x != y) {
                if (x < y) { cmp = -1; } else { cmp = 1; }
                break;
            }
        }
        if (cmp == 0) { equal = equal + 1; }
        else if (cmp < 0) { less = less + 1; }
        else { greater = greater + 1; }
        if (cmp != lastcmp) { flips = flips + 1; }
        lastcmp = cmp;
    }
    print(equal);
    print(less);
    print(greater);
    print(flips);
}
"""


def _eqn_tape(seed: int, pairs: int, width: int = 12) -> List[int]:
    """Vector pairs that are mostly equal for a long prefix."""
    rng = random.Random(seed)
    tape = [width, pairs]
    for _ in range(pairs):
        a = [rng.randint(0, 3) for _ in range(width)]
        b = list(a)
        if rng.random() < 0.4:
            # diverge near the end: long equal prefix
            pos = rng.randint(max(0, width - 4), width - 1)
            b[pos] = a[pos] + rng.choice([-1, 1])
        tape.extend(a)
        tape.extend(b)
    return tape


ESP_SRC = """
// esp: cube containment in a boolean cover, word-parallel AND/OR checks.
func main() {
    var words = read();
    var cubes = read();
    var total = cubes * words;
    var i = 0;
    while (i < total) {
        mem[2000 + i] = read();
        i = i + 1;
    }
    var contained = 0;
    var tests = 0;
    for (var a = 0; a < cubes; a = a + 1) {
        for (var b = 0; b < cubes; b = b + 1) {
            if (a != b) {
                tests = tests + 1;
                var ok = 1;
                for (var w = 0; w < words; w = w + 1) {
                    var x = mem[2000 + a * words + w];
                    var y = mem[2000 + b * words + w];
                    if ((x & y) != x) {
                        ok = 0;
                        break;
                    }
                }
                if (ok == 1) { contained = contained + 1; }
            }
        }
    }
    print(tests);
    print(contained);
}
"""


def _esp_tape(seed: int, cubes: int, words: int = 6) -> List[int]:
    """Cube covers in the espresso style: wide bit vectors whose prefixes
    coincide (don't-care words are all-ones), so containment scans usually
    run deep into the word loop before diverging."""
    rng = random.Random(seed)
    tape = [words, cubes]
    shared_prefix = words - 2
    for _ in range(cubes):
        cube = [255] * shared_prefix  # don't-care prefix: always contained
        for _ in range(words - shared_prefix):
            if rng.random() < 0.3:
                cube.append(255)
            else:
                cube.append(rng.randint(0, 255))
        tape.extend(cube)
    return tape


IJPEG_SRC = """
// ijpeg: separable 8x8 integer transform + biased quantization.
func main() {
    var blocks = read();
    var checksum = 0;
    var kept = 0;
    var zeroed = 0;
    for (var blk = 0; blk < blocks; blk = blk + 1) {
        // load one 8x8 block
        for (var i = 0; i < 64; i = i + 1) {
            mem[100 + i] = read();
        }
        // row pass: butterfly-ish accumulation
        for (var r = 0; r < 8; r = r + 1) {
            for (var cidx = 0; cidx < 8; cidx = cidx + 1) {
                var acc = 0;
                for (var k = 0; k < 8; k = k + 1) {
                    acc = acc + mem[100 + r * 8 + k] * ((k + cidx * 3) % 7 - 3);
                }
                mem[200 + r * 8 + cidx] = acc >> 2;
            }
        }
        // quantize: most coefficients are small (biased branch)
        for (var q = 0; q < 64; q = q + 1) {
            var v = mem[200 + q];
            if (v < 0) { v = -v; }
            if (v < 40) {
                zeroed = zeroed + 1;
            } else {
                kept = kept + 1;
                checksum = checksum + v;
            }
        }
    }
    print(kept);
    print(zeroed);
    print(checksum);
}
"""


def _ijpeg_tape(seed: int, blocks: int) -> List[int]:
    rng = random.Random(seed)
    tape = [blocks]
    for _ in range(blocks):
        # smooth-ish image data: small values with occasional edges
        base = rng.randint(0, 30)
        for _ in range(64):
            if rng.random() < 0.1:
                base = rng.randint(0, 60)
            tape.append(base + rng.randint(-3, 3))
    return tape


def compute_workloads():
    """com, eqn, esp, ijpeg stand-ins."""
    return [
        Workload(
            name="com",
            description="Lempel/Ziv file compression (stand-in)",
            category="spec92",
            source=COM_SRC,
            train=lambda scale: _compressible_tape(101, sized(1500, scale)),
            test=lambda scale: _compressible_tape(202, sized(2200, scale)),
            notes=(
                "compress substitute: one dominant hash-match loop over a"
                " highly compressible stream; run time is dominated by few"
                " loops, as the paper notes for compress."
            ),
        ),
        Workload(
            name="eqn",
            description="Boolean equations to truth tables (stand-in)",
            category="spec92",
            source=EQN_SRC,
            train=lambda scale: _eqn_tape(303, sized(120, scale)),
            test=lambda scale: _eqn_tape(404, sized(170, scale)),
            notes=(
                "eqntott substitute: the hot loop is an early-out vector"
                " compare whose guarded block is tiny and whose outcome"
                " correlates across iterations — the regime where the paper"
                " finds unrolling more important than correlation."
            ),
        ),
        Workload(
            name="esp",
            description="Boolean minimization (stand-in)",
            category="spec92",
            source=ESP_SRC,
            train=lambda scale: _esp_tape(505, sized(26, scale)),
            test=lambda scale: _esp_tape(606, sized(32, scale)),
            notes=(
                "espresso substitute: quadratic cube-containment testing"
                " with word-parallel bit operations and data-dependent"
                " early exits."
            ),
        ),
        Workload(
            name="ijpeg",
            description="JPEG encoder (stand-in)",
            category="spec95",
            source=IJPEG_SRC,
            train=lambda scale: _ijpeg_tape(707, sized(6, scale)),
            test=lambda scale: _ijpeg_tape(808, sized(9, scale)),
            notes=(
                "ijpeg substitute: regular nested numeric loops (separable"
                " block transform) with a single dominant path and a biased"
                " quantization branch — unrolling-friendly, as the paper"
                " observes for ijpeg."
            ),
        ),
    ]
