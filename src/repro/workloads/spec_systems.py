"""SPEC substitutes, systems group: gcc, go, li, m88k(sim), perl, vortex.

These programs are interpreter/traversal shaped: large multiway dispatch,
frequent procedure calls, low-iteration loops, and pointer chasing — the
regimes where the paper reports that unrolling alone is insufficient (go,
li) and where path-based code expansion can hurt the I-cache (gcc, go).
"""

from __future__ import annotations

import random
from typing import List

from .base import Workload, sized

GCC_SRC = """
// gcc: recursive expression-tree folder with a wide multiway dispatch.
// Nodes live in mem[] as (kind, left, right, value) records; the input is
// a preorder stream of node kinds.  Many kinds are cold, as in a compiler.
func build(pos) {
    // reads one subtree starting at record slot `pos`; returns next slot
    var kind = read();
    if (kind < 0) { kind = 0; }
    mem[8000 + pos * 4] = kind;
    mem[8000 + pos * 4 + 3] = read();
    var next = pos + 1;
    if (kind >= 4) {
        mem[8000 + pos * 4 + 1] = next;
        next = build(next);
        mem[8000 + pos * 4 + 2] = next;
        next = build(next);
    }
    return next;
}

func fold(pos) {
    var kind = mem[8000 + pos * 4];
    var value = mem[8000 + pos * 4 + 3];
    if (kind < 4) {
        switch (kind) {
            case 0: { return value; }
            case 1: { return -value; }
            case 2: { return value & 255; }
            case 3: { return value * 3 + 1; }
        }
        return value;
    }
    var l = fold(mem[8000 + pos * 4 + 1]);
    var r = fold(mem[8000 + pos * 4 + 2]);
    switch (kind) {
        case 4: { return l + r; }
        case 5: { return l - r; }
        case 6: { return l * r; }
        case 7: { if (l < r) { return l; } return r; }
        case 8: { if (l > r) { return l; } return r; }
        case 9: { return (l & r) ^ 85; }
        case 10: { return (l | r) + 1; }
        case 11: { return (l ^ r) - 2; }
        case 12: { if (l == r) { return 1; } return 0; }
        case 13: { return l + r * 2; }
        case 14: { return l * 2 - r; }
        default: { return l ^ r; }
    }
}

func main() {
    var trees = read();
    var total = 0;
    for (var t = 0; t < trees; t = t + 1) {
        build(0);
        total = total + fold(0);
    }
    print(total);
}
"""


def _gcc_tape(seed: int, trees: int) -> List[int]:
    rng = random.Random(seed)
    tape = [trees]

    def emit_tree(depth: int) -> None:
        # Hot kinds dominate; kinds 9..15 are cold, like rare IR nodes.
        if depth >= 4 or rng.random() < 0.35:
            kind = rng.choices([0, 1, 2, 3], weights=[70, 10, 10, 10])[0]
            tape.append(kind)
            tape.append(rng.randint(0, 99))
            return
        kind = rng.choices(
            [4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15],
            weights=[30, 20, 12, 8, 8, 2, 2, 2, 2, 5, 5, 2],
        )[0]
        tape.append(kind)
        tape.append(rng.randint(0, 99))
        emit_tree(depth + 1)
        emit_tree(depth + 1)

    for _ in range(trees):
        emit_tree(0)
    return tape


GO_SRC = """
// go: board scanning with tiny loops and frequent helper calls.
func neighbors_free(pos, size) {
    var free = 0;
    for (var d = 0; d < 4; d = d + 1) {
        var np = pos;
        if (d == 0) { np = pos - size; }
        if (d == 1) { np = pos + size; }
        if (d == 2) { np = pos - 1; }
        if (d == 3) { np = pos + 1; }
        if (np >= 0 && np < size * size) {
            if (mem[3000 + np] == 0) { free = free + 1; }
        }
    }
    return free;
}

func influence(pos, size) {
    var score = 0;
    var stone = mem[3000 + pos];
    // short, early-exit pattern scan
    for (var r = 1; r < 4; r = r + 1) {
        var look = pos + r;
        if (look >= size * size) { break; }
        var other = mem[3000 + look];
        if (other == 0) { score = score + 1; }
        else {
            if (other == stone) { score = score + 3; }
            else { break; }
        }
    }
    return score;
}

func main() {
    var size = read();
    var passes = read();
    var cells = size * size;
    for (var i = 0; i < cells; i = i + 1) {
        mem[3000 + i] = read();
    }
    var total = 0;
    for (var p = 0; p < passes; p = p + 1) {
        for (var pos = 0; pos < cells; pos = pos + 1) {
            var stone = mem[3000 + pos];
            if (stone != 0) {
                var libs = neighbors_free(pos, size);
                if (libs == 0) {
                    mem[3000 + pos] = 0;  // capture
                    total = total - 5;
                } else {
                    total = total + influence(pos, size) + libs;
                }
            }
        }
    }
    print(total);
}
"""


def _go_tape(seed: int, size: int, passes: int) -> List[int]:
    rng = random.Random(seed)
    tape = [size, passes]
    for _ in range(size * size):
        tape.append(rng.choices([0, 1, 2], weights=[40, 30, 30])[0])
    return tape


LI_SRC = """
// li: a recursive list interpreter over cons cells.
// Cells: mem[base + 2k] = car, mem[base + 2k + 1] = cdr (0 = nil).
// Programs are expression trees encoded as lists: (op lhs rhs).
func eval(cell) {
    if (cell == 0) { return 0; }
    var car = mem[6000 + cell * 2];
    var cdr = mem[6000 + cell * 2 + 1];
    if (car < 100) {
        return car;   // atom: small integer
    }
    var op = car - 100;
    var lhs = eval(mem[6000 + cdr * 2]);
    var rest = mem[6000 + cdr * 2 + 1];
    var rhs = eval(mem[6000 + rest * 2]);
    if (op == 0) { return lhs + rhs; }
    if (op == 1) { return lhs - rhs; }
    if (op == 2) { return lhs * rhs; }
    if (op == 3) { if (lhs < rhs) { return rhs; } return lhs; }
    return lhs ^ rhs;
}

func list_length(cell) {
    var n = 0;
    while (cell != 0) {
        n = n + 1;
        cell = mem[6000 + cell * 2 + 1];
    }
    return n;
}

func main() {
    var cells = read();
    for (var i = 1; i <= cells; i = i + 1) {
        mem[6000 + i * 2] = read();
        mem[6000 + i * 2 + 1] = read();
    }
    var roots = read();
    var total = 0;
    for (var r = 0; r < roots; r = r + 1) {
        var root = read();
        total = total + eval(root);
        total = total + list_length(root);
    }
    print(total);
}
"""


def _li_tape(seed: int, exprs: int) -> List[int]:
    """Encode `exprs` random expression trees as cons cells."""
    rng = random.Random(seed)
    cars: List[int] = [0]  # cell 0 = nil sentinel (unused slot)
    cdrs: List[int] = [0]

    def new_cell(car: int, cdr: int) -> int:
        cars.append(car)
        cdrs.append(cdr)
        return len(cars) - 1

    def build(depth: int) -> int:
        if depth >= 4 or rng.random() < 0.4:
            return new_cell(rng.randint(0, 99), 0)
        op = 100 + rng.choices([0, 1, 2, 3, 4], weights=[40, 25, 15, 15, 5])[0]
        lhs = build(depth + 1)
        rhs = build(depth + 1)
        tail2 = new_cell(rhs, 0)
        tail1 = new_cell(lhs, tail2)
        return new_cell(op, tail1)

    roots = [build(0) for _ in range(exprs)]
    ncells = len(cars) - 1
    tape = [ncells]
    for i in range(1, ncells + 1):
        tape.append(cars[i])
        tape.append(cdrs[i])
    tape.append(len(roots))
    tape.extend(roots)
    return tape


M88K_SRC = """
// m88k: microprocessor simulator: fetch/decode/execute over a synthetic
// instruction memory.  Registers live in mem[100..115].
func main() {
    var ninstr = read();
    for (var i = 0; i < ninstr; i = i + 1) {
        mem[9000 + i * 4] = read();      // opcode
        mem[9000 + i * 4 + 1] = read();  // rd
        mem[9000 + i * 4 + 2] = read();  // rs
        mem[9000 + i * 4 + 3] = read();  // imm / target
    }
    var fuel = read();
    var pc = 0;
    var executed = 0;
    while (fuel > 0) {
        if (pc < 0 || pc >= ninstr) { pc = 0; }  // wrap: restart program
        fuel = fuel - 1;
        executed = executed + 1;
        var op = mem[9000 + pc * 4];
        var rd = mem[9000 + pc * 4 + 1];
        var rs = mem[9000 + pc * 4 + 2];
        var imm = mem[9000 + pc * 4 + 3];
        pc = pc + 1;
        switch (op) {
            case 0: { mem[100 + rd] = imm; }
            case 1: { mem[100 + rd] = (mem[100 + rd] + mem[100 + rs]) & 65535; }
            case 2: { mem[100 + rd] = (mem[100 + rd] - mem[100 + rs]) & 65535; }
            case 3: { mem[100 + rd] = mem[200 + ((mem[100 + rs] + imm) & 63)]; }
            case 4: { mem[200 + ((mem[100 + rd] + imm) & 63)] = mem[100 + rs]; }
            case 5: { if (mem[100 + rd] == mem[100 + rs]) { pc = imm; } }
            case 6: { if (mem[100 + rd] != mem[100 + rs]) { pc = imm; } }
            case 7: { mem[100 + rd] = (mem[100 + rd] * 3 + 1) & 65535; }
            default: { pc = 0; }
        }
    }
    var sum = 0;
    for (var r = 0; r < 16; r = r + 1) {
        sum = sum + mem[100 + r];
    }
    print(executed);
    print(sum);
}
"""


def _m88k_tape(seed: int, ninstr: int, fuel: int) -> List[int]:
    rng = random.Random(seed)
    tape = [ninstr]
    for index in range(ninstr):
        op = rng.choices(
            [0, 1, 2, 3, 4, 5, 6, 7, 9],
            weights=[10, 30, 15, 15, 10, 8, 8, 4, 1],
        )[0]
        rd = rng.randint(0, 15)
        rs = rng.randint(0, 15)
        if op in (5, 6):
            imm = rng.randint(max(0, index - 6), min(ninstr - 1, index + 6))
        else:
            imm = rng.randint(0, 63)
        tape.extend([op, rd, rs, imm])
    tape.append(fuel)
    return tape


PERL_SRC = """
// perl: a stack-machine interpreter with an association table
// (linear-probe hash) — hash ops and stack churn like a script runtime.
func main() {
    var nops = read();
    var sp = 0;
    var steps = 0;
    var result = 0;
    for (var i = 0; i < nops; i = i + 1) {
        var op = read();
        var arg = read();
        steps = steps + 1;
        switch (op) {
            case 0: {  // push
                mem[500 + sp] = arg;
                sp = sp + 1;
            }
            case 1: {  // add top two
                if (sp >= 2) {
                    mem[500 + sp - 2] = mem[500 + sp - 2] + mem[500 + sp - 1];
                    sp = sp - 1;
                }
            }
            case 2: {  // dup
                if (sp >= 1) {
                    mem[500 + sp] = mem[500 + sp - 1];
                    sp = sp + 1;
                }
            }
            case 3: {  // assoc store: key=arg, value=top
                if (sp >= 1) {
                    var h = (arg * 17) % 97;
                    while (mem[700 + h * 2] != 0 && mem[700 + h * 2] != arg + 1) {
                        h = (h + 1) % 97;
                    }
                    mem[700 + h * 2] = arg + 1;
                    mem[700 + h * 2 + 1] = mem[500 + sp - 1];
                    sp = sp - 1;
                }
            }
            case 4: {  // assoc load: push value for key=arg (0 if absent)
                var h2 = (arg * 17) % 97;
                var probes = 0;
                var value = 0;
                while (mem[700 + h2 * 2] != 0 && probes < 97) {
                    if (mem[700 + h2 * 2] == arg + 1) {
                        value = mem[700 + h2 * 2 + 1];
                        break;
                    }
                    h2 = (h2 + 1) % 97;
                    probes = probes + 1;
                }
                mem[500 + sp] = value;
                sp = sp + 1;
            }
            default: {  // pop into result
                if (sp >= 1) {
                    sp = sp - 1;
                    result = result ^ mem[500 + sp];
                }
            }
        }
        if (sp > 200) { sp = 200; }
    }
    print(steps);
    print(result);
    print(sp);
}
"""


def _perl_tape(seed: int, nops: int) -> List[int]:
    rng = random.Random(seed)
    tape = [nops]
    for _ in range(nops):
        op = rng.choices([0, 1, 2, 3, 4, 5], weights=[35, 20, 10, 12, 15, 8])[0]
        tape.extend([op, rng.randint(0, 60)])
    return tape


VORTEX_SRC = """
// vortex: an object store: records in a singly linked list ordered by key,
// with insert/lookup/update transactions (pointer chasing, biased
// comparisons).  Record: mem[p]=key, mem[p+1]=value, mem[p+2]=next.
func main() {
    var head = 0;       // 0 = empty list
    var next_free = 1;  // record slots at mem[7000 + 3*slot]
    var ntx = read();
    var hits = 0;
    var inserts = 0;
    var checksum = 0;
    for (var t = 0; t < ntx; t = t + 1) {
        var kind = read();
        var key = read();
        if (kind == 0) {  // insert (keep sorted by key)
            var slot = next_free;
            next_free = next_free + 1;
            mem[7000 + slot * 3] = key;
            mem[7000 + slot * 3 + 1] = key * 7 + t;
            inserts = inserts + 1;
            if (head == 0 || mem[7000 + head * 3] >= key) {
                mem[7000 + slot * 3 + 2] = head;
                head = slot;
            } else {
                var cur = head;
                while (mem[7000 + cur * 3 + 2] != 0
                       && mem[7000 + mem[7000 + cur * 3 + 2] * 3] < key) {
                    cur = mem[7000 + cur * 3 + 2];
                }
                mem[7000 + slot * 3 + 2] = mem[7000 + cur * 3 + 2];
                mem[7000 + cur * 3 + 2] = slot;
            }
        } else {  // lookup / update
            var cur2 = head;
            while (cur2 != 0 && mem[7000 + cur2 * 3] < key) {
                cur2 = mem[7000 + cur2 * 3 + 2];
            }
            if (cur2 != 0 && mem[7000 + cur2 * 3] == key) {
                hits = hits + 1;
                if (kind == 2) {
                    mem[7000 + cur2 * 3 + 1] = mem[7000 + cur2 * 3 + 1] + 1;
                }
                checksum = checksum + mem[7000 + cur2 * 3 + 1];
            }
        }
    }
    print(inserts);
    print(hits);
    print(checksum);
}
"""


def _vortex_tape(seed: int, ntx: int) -> List[int]:
    rng = random.Random(seed)
    tape = [ntx]
    known: List[int] = []
    for _ in range(ntx):
        kind = rng.choices([0, 1, 2], weights=[30, 50, 20])[0]
        if kind == 0 or not known:
            kind = 0
            key = rng.randint(0, 500)
            known.append(key)
            tape.extend([0, key])
        else:
            key = rng.choice(known) if rng.random() < 0.7 else rng.randint(0, 500)
            tape.extend([kind, key])
    return tape


def systems_workloads():
    """gcc, go, li, m88k, perl, vortex stand-ins."""
    return [
        Workload(
            name="gcc",
            description="GNU C compiler (stand-in)",
            category="spec95",
            source=GCC_SRC,
            train=lambda scale: _gcc_tape(111, sized(90, scale)),
            test=lambda scale: _gcc_tape(222, sized(130, scale)),
            notes=(
                "gcc substitute: recursive tree walking over a wide multiway"
                " dispatch with many cold arms — large static code with a"
                " non-trivial I-cache footprint, the property the paper's"
                " gcc miss-rate discussion hinges on."
            ),
        ),
        Workload(
            name="go",
            description="Plays the game of Go (stand-in)",
            category="spec95",
            source=GO_SRC,
            train=lambda scale: _go_tape(333, 9, sized(4, scale)),
            test=lambda scale: _go_tape(444, 9, sized(6, scale)),
            notes=(
                "go substitute: low-iteration-count loops and frequent"
                " procedure calls with irregular branch behaviour — the"
                " regime where the paper notes unrolling alone is"
                " insufficient and path expansion can hurt the I-cache."
            ),
        ),
        Workload(
            name="li",
            description="XLISP interpreter (stand-in)",
            category="spec95",
            source=LI_SRC,
            train=lambda scale: _li_tape(555, sized(60, scale)),
            test=lambda scale: _li_tape(666, sized(90, scale)),
            notes=(
                "li substitute: recursive evaluation over cons cells —"
                " call-dominated with short lists, like the paper's li."
            ),
        ),
        Workload(
            name="m88k",
            description="Microprocessor simulator (stand-in)",
            category="spec95",
            source=M88K_SRC,
            train=lambda scale: _m88k_tape(777, 40, sized(1400, scale)),
            test=lambda scale: _m88k_tape(888, 40, sized(2000, scale)),
            notes=(
                "m88ksim substitute: a fetch/decode/execute dispatch loop"
                " over a synthetic instruction memory with a biased opcode"
                " mix."
            ),
        ),
        Workload(
            name="perl",
            description="Interpreted programming language (stand-in)",
            category="spec95",
            source=PERL_SRC,
            train=lambda scale: _perl_tape(999, sized(500, scale)),
            test=lambda scale: _perl_tape(1212, sized(700, scale)),
            notes=(
                "perl substitute: a stack-machine interpreter with hash"
                " (association table) traffic and data-dependent probe"
                " loops."
            ),
        ),
        Workload(
            name="vortex",
            description="Object-oriented database (stand-in)",
            category="spec95",
            source=VORTEX_SRC,
            train=lambda scale: _vortex_tape(1313, sized(180, scale)),
            test=lambda scale: _vortex_tape(1414, sized(260, scale)),
            notes=(
                "vortex substitute: sorted-list object store with"
                " insert/lookup/update transactions — pointer chasing with"
                " highly biased comparison branches."
            ),
        ),
    ]
