"""Workload descriptions: the reproduction's benchmark suite.

Each :class:`Workload` bundles a MiniC source program with training and
testing input generators.  The paper profiles on a *training* data set and
measures on a distinct *testing* set (Section 3.3); our generators use
different seeds (and sizes) for the two roles.

SPEC sources and inputs are not available offline, so the SPEC92/SPEC95
entries are synthetic stand-ins whose control-flow character matches what
the paper says matters for each program; see each workload's ``notes`` and
DESIGN.md Section 3 for the substitution rationale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..frontend import compile_source
from ..ir.cfg import Program

#: Input generator: takes a scale factor, returns the input tape.
TapeMaker = Callable[[float], List[int]]


@dataclass
class Workload:
    """One benchmark: program source plus train/test input generators."""

    name: str
    description: str
    #: "micro", "spec92", or "spec95" — Table 1's grouping.
    category: str
    source: str
    train: TapeMaker
    test: TapeMaker
    #: What the original benchmark was and why this stand-in preserves the
    #: behaviour the paper's mechanisms react to.
    notes: str = ""
    _program: Optional[Program] = field(default=None, repr=False)

    def program(self) -> Program:
        """Compile (and cache) the workload's IR program."""
        if self._program is None:
            self._program = compile_source(self.source)
        return self._program

    def fresh_program(self) -> Program:
        """Compile a fresh, uncached copy (for mutation-safe uses)."""
        return compile_source(self.source)

    def train_tape(self, scale: float = 1.0) -> List[int]:
        """Training input at the given size scale."""
        return self.train(scale)

    def test_tape(self, scale: float = 1.0) -> List[int]:
        """Testing input at the given size scale."""
        return self.test(scale)


def sized(base: int, scale: float, minimum: int = 1) -> int:
    """Scale an input-size knob, staying above a floor."""
    return max(minimum, int(base * scale))


def words_tape(
    seed: int, word_count: int, alphabet: str = "abcdefgh"
) -> List[int]:
    """Pseudo-text as character codes: words separated by spaces/newlines."""
    rng = random.Random(seed)
    chars: List[int] = []
    for index in range(word_count):
        for _ in range(rng.randint(1, 7)):
            chars.append(ord(rng.choice(alphabet)))
        if rng.random() < 0.15:
            chars.append(10)  # newline
        else:
            chars.append(32)  # space
        if rng.random() < 0.02:
            chars.append(32)  # occasional double separator
    chars.append(-1)
    return chars


def uniform_tape(seed: int, count: int, low: int, high: int) -> List[int]:
    """``count`` uniform integers in [low, high], then the -1 terminator."""
    rng = random.Random(seed)
    tape = [rng.randint(low, high) for _ in range(count)]
    tape.append(-1)
    return tape
