"""Benchmark workloads: the paper's microbenchmarks plus SPEC stand-ins."""

from .base import TapeMaker, Workload, sized, uniform_tape, words_tape
from .micro import micro_workloads
from .spec_compute import compute_workloads
from .spec_systems import systems_workloads
from .suite import (
    MICRO_NAMES,
    SPEC_NAMES,
    SUITE_ORDER,
    all_workloads,
    get_workload,
    workload_map,
)

__all__ = [
    "MICRO_NAMES",
    "SPEC_NAMES",
    "SUITE_ORDER",
    "TapeMaker",
    "Workload",
    "all_workloads",
    "compute_workloads",
    "get_workload",
    "micro_workloads",
    "sized",
    "systems_workloads",
    "uniform_tape",
    "words_tape",
    "workload_map",
]
