"""The paper's microbenchmarks: alt, ph, corr, wc (Table 1, "micro" rows).

``alt``, ``ph``, and ``corr`` are idealized behaviours that path profiles
capture and point profiles cannot (Section 3.3): a repeating branch pattern,
a phased branch, and a correlated branch pair.  ``wc`` is the UNIX word
count program.  The first three take only a size knob (the paper lists their
input as "null"); wc reads text.
"""

from __future__ import annotations

from .base import Workload, sized, words_tape

ALT_SRC = """
// alt: a single loop whose conditional repeats the pattern T,T,T,F.
func main() {
    var n = read();
    var light = 0;
    var heavy = 0;
    for (var i = 0; i < n; i = i + 1) {
        if (i % 4 != 3) {
            light = light + i;
        } else {
            heavy = heavy + i * 3 - 1;
        }
    }
    print(light);
    print(heavy);
}
"""

PH_SRC = """
// ph: a single loop whose conditional is phased: T,T,...,T,F,F,...,F.
func main() {
    var n = read();
    var cut = n * 2 / 3;
    var first = 0;
    var second = 0;
    for (var i = 0; i < n; i = i + 1) {
        if (i < cut) {
            first = first + i;
        } else {
            second = second + i * 3 - 1;
        }
    }
    print(first);
    print(second);
}
"""

CORR_SRC = """
// corr: the Young/Smith correlation example.  The second branch's direction
// is fully determined by the first branch's direction; an edge profile sees
// two independent 50/50 branches, a path profile sees two paths.
func main() {
    var n = read();
    var acc = 0;
    for (var i = 0; i < n; i = i + 1) {
        var x = 0;
        if (i % 2 == 0) {
            x = 1;
            acc = acc + 1;
        } else {
            x = 0;
            acc = acc + 2;
        }
        // ... intervening work ...
        var noise = (i * 7) & 15;
        acc = acc + noise;
        if (x == 1) {
            acc = acc + 3;     // taken exactly when the first branch was
        } else {
            acc = acc - 1;
        }
    }
    print(acc);
}
"""

WC_SRC = """
// wc: the UNIX word count program over the input text.
func main() {
    var lines = 0;
    var words = 0;
    var chars = 0;
    var in_word = 0;
    var c = read();
    while (c >= 0) {
        chars = chars + 1;
        if (c == 10) {
            lines = lines + 1;
        }
        if (c == 32 || c == 10 || c == 9) {
            in_word = 0;
        } else {
            if (in_word == 0) {
                words = words + 1;
            }
            in_word = 1;
        }
        c = read();
    }
    print(lines);
    print(words);
    print(chars);
}
"""


def micro_workloads():
    """The four microbenchmarks, sized through the scale knob."""
    return [
        Workload(
            name="alt",
            description="Sorted example: branch repeats T,T,T,F",
            category="micro",
            source=ALT_SRC,
            train=lambda scale: [sized(1200, scale)],
            test=lambda scale: [sized(1600, scale)],
            notes=(
                "Matches the paper's alt microbenchmark: a single loop whose"
                " conditional follows the repeated TTTF pattern, i.e. the"
                " Path1 behaviour of Figure 3."
            ),
        ),
        Workload(
            name="ph",
            description="Phased example: branch is T...T then F...F",
            category="micro",
            source=PH_SRC,
            train=lambda scale: [sized(1200, scale)],
            test=lambda scale: [sized(1650, scale)],
            notes=(
                "Matches the paper's ph microbenchmark: one loop whose"
                " conditional holds for the first phase and fails for the"
                " rest — Figure 3's Path2 behaviour."
            ),
        ),
        Workload(
            name="corr",
            description="Branch correlation example (Young & Smith)",
            category="micro",
            source=CORR_SRC,
            train=lambda scale: [sized(900, scale)],
            test=lambda scale: [sized(1300, scale)],
            notes=(
                "The simple correlation example of Young and Smith [20]: the"
                " second branch repeats the first's direction, invisible to"
                " point profiles."
            ),
        ),
        Workload(
            name="wc",
            description="UNIX word count program",
            category="micro",
            source=WC_SRC,
            train=lambda scale: words_tape(11, sized(700, scale)),
            test=lambda scale: words_tape(29, sized(900, scale)),
            notes=(
                "wc itself, reading synthetic text; the paper's testing input"
                " was a PostScript conference paper, ours is seeded"
                " pseudo-text with a different seed for train and test."
            ),
        ),
    ]
