"""The full benchmark suite (Table 1's 14 programs)."""

from __future__ import annotations

from typing import Dict, List

from .base import Workload
from .micro import micro_workloads
from .spec_compute import compute_workloads
from .spec_systems import systems_workloads

#: Table 1 row order.
SUITE_ORDER = [
    "alt",
    "ph",
    "corr",
    "wc",
    "com",
    "eqn",
    "esp",
    "gcc",
    "go",
    "ijpeg",
    "li",
    "m88k",
    "perl",
    "vortex",
]

#: The microbenchmark subset.
MICRO_NAMES = ["alt", "ph", "corr", "wc"]

#: The SPEC-substitute subset (Figures 5 and 6 exclude the micros).
SPEC_NAMES = [n for n in SUITE_ORDER if n not in MICRO_NAMES]


def all_workloads() -> List[Workload]:
    """Every workload, in Table 1 order."""
    by_name = {
        w.name: w
        for w in (
            micro_workloads() + compute_workloads() + systems_workloads()
        )
    }
    return [by_name[name] for name in SUITE_ORDER]


def workload_map() -> Dict[str, Workload]:
    """Name -> workload for the whole suite."""
    return {w.name: w for w in all_workloads()}


def get_workload(name: str) -> Workload:
    """Look one workload up by name."""
    table = workload_map()
    if name not in table:
        raise KeyError(
            f"unknown workload {name!r}; choose from {SUITE_ORDER}"
        )
    return table[name]
