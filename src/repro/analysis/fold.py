"""Superblock-local constant folding and strength reduction.

Runs together with value numbering before renaming (the paper's back end
performs classical clean-up on each superblock before compaction).  The
pass is purely local and always semantics-preserving:

* operations whose sources are known constants are folded to ``li``
  (faulting operations — division/modulo by a known zero — are left alone);
* algebraic identities are strength-reduced: ``x+0``, ``x-0``, ``x*1``,
  ``x*0``, ``x&0``, ``x|0``, ``x^0``, ``x<<0``, ``x>>0``, ``x/1``;
* conditional branches whose condition is a known constant keep their
  instruction (control structure is formation's business) — only the data
  computation is simplified.

Constant knowledge is killed at each definition, so the single forward
pass needs no fixed point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..ir import instructions as ins
from ..interp.ops import BINARY_EVAL, MachineFault, UNARY_EVAL
from ..ir.instructions import Instruction, Opcode

#: Identities of the form  op(x, c) == x.
_RIGHT_IDENTITY = {
    Opcode.ADD: 0,
    Opcode.SUB: 0,
    Opcode.MUL: 1,
    Opcode.DIV: 1,
    Opcode.OR: 0,
    Opcode.XOR: 0,
    Opcode.SHL: 0,
    Opcode.SHR: 0,
}

#: Identities of the form  op(c, x) == x.
_LEFT_IDENTITY = {
    Opcode.ADD: 0,
    Opcode.MUL: 1,
    Opcode.OR: 0,
    Opcode.XOR: 0,
}

#: Annihilators: op(x, c) == c.
_RIGHT_ZERO = {
    Opcode.MUL: 0,
    Opcode.AND: 0,
}


def _inherit(replacement: Instruction, original: Instruction) -> Instruction:
    """Provenance: a folded instruction stands in for the original."""
    replacement.origin = original.origin
    return replacement


def fold_constants(instrs: Sequence[Instruction]) -> List[Instruction]:
    """Fold and strength-reduce a straight-line region.

    Returns a new instruction list; instructions that change are replaced
    by fresh ``li``/``mov`` objects, unchanged instructions keep their
    identity (so exit annotations keyed by instruction survive).
    """
    known: Dict[int, int] = {}
    result: List[Instruction] = []

    def value_of(reg: int) -> Optional[int]:
        return known.get(reg)

    for instr in instrs:
        op = instr.opcode
        replacement = instr

        if op is Opcode.LI:
            known[instr.dest] = instr.imm
            result.append(instr)
            continue

        if op is Opcode.MOV:
            src_value = value_of(instr.srcs[0])
            if src_value is not None:
                replacement = _inherit(ins.li(instr.dest, src_value), instr)
                known[instr.dest] = src_value
            else:
                known.pop(instr.dest, None)
            result.append(replacement)
            continue

        if op in UNARY_EVAL and instr.dest is not None:
            src_value = value_of(instr.srcs[0])
            if src_value is not None:
                folded = UNARY_EVAL[op](src_value)
                replacement = _inherit(ins.li(instr.dest, folded), instr)
                known[instr.dest] = folded
            else:
                known.pop(instr.dest, None)
            result.append(replacement)
            continue

        binop = BINARY_EVAL.get(op)
        if binop is not None and instr.dest is not None:
            a, b = instr.srcs
            va, vb = value_of(a), value_of(b)
            if va is not None and vb is not None:
                try:
                    folded = binop(va, vb)
                except MachineFault:
                    folded = None  # leave the faulting op in place
                if folded is not None:
                    replacement = _inherit(ins.li(instr.dest, folded), instr)
                    known[instr.dest] = folded
                    result.append(replacement)
                    continue
            if vb is not None and _RIGHT_IDENTITY.get(op) == vb:
                replacement = _inherit(ins.mov(instr.dest, a), instr)
            elif va is not None and _LEFT_IDENTITY.get(op) == va:
                replacement = _inherit(ins.mov(instr.dest, b), instr)
            elif vb is not None and _RIGHT_ZERO.get(op) == vb:
                replacement = _inherit(ins.li(instr.dest, 0), instr)
                known[instr.dest] = 0
                result.append(replacement)
                continue
            known.pop(instr.dest, None)
            result.append(replacement)
            continue

        # Everything else: kill knowledge of the destination.
        if instr.dest is not None:
            known.pop(instr.dest, None)
        result.append(instr)
    return result
