"""Static analyses over the IR: dominators, loops, liveness, local opts."""

from .dominators import DominatorTree, immediate_dominators
from .liveness import (
    LivenessInfo,
    block_use_def,
    compute_liveness,
    instruction_defs,
    instruction_uses,
)
from .fold import fold_constants
from .local_opt import eliminate_dead_code, local_value_number
from .loops import NaturalLoop, back_edges, loop_headers, natural_loops

__all__ = [
    "DominatorTree",
    "LivenessInfo",
    "NaturalLoop",
    "back_edges",
    "block_use_def",
    "compute_liveness",
    "eliminate_dead_code",
    "fold_constants",
    "immediate_dominators",
    "instruction_defs",
    "instruction_uses",
    "local_value_number",
    "loop_headers",
    "natural_loops",
]
