"""Back-edge and natural-loop identification.

The paper's trace selectors terminate a trace rather than cross a back edge,
and the classical enlargements (loop peeling, loop unrolling) need loop
structure.  Back edges are defined the standard way: an edge ``u -> v`` is a
back edge when ``v`` dominates ``u``.  For irreducible regions (possible in
principle, not produced by the MiniC frontend) we additionally treat any edge
to an already-visited DFS ancestor as a back edge so that trace selection
always terminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from ..ir.cfg import Edge, Procedure
from .dominators import DominatorTree


def back_edges(proc: Procedure) -> Set[Edge]:
    """The set of back edges of ``proc`` (dominance-based, with a DFS
    fallback for irreducible shapes)."""
    dom = DominatorTree(proc)
    result: Set[Edge] = set()
    for src, dst in proc.edges():
        if src in dom.idom and dst in dom.idom and dom.dominates(dst, src):
            result.add((src, dst))
    # DFS fallback: mark retreating edges in irreducible regions.
    colour: Dict[str, int] = {}
    order: List[str] = []

    def dfs(start: str) -> None:
        stack: List[Tuple[str, int]] = [(start, 0)]
        colour[start] = 1
        while stack:
            label, i = stack.pop()
            succs = proc.successors(label)
            if i < len(succs):
                stack.append((label, i + 1))
                nxt = succs[i]
                if colour.get(nxt, 0) == 0:
                    colour[nxt] = 1
                    stack.append((nxt, 0))
                elif colour.get(nxt) == 1:
                    result.add((label, nxt))
            else:
                colour[label] = 2
                order.append(label)

    dfs(proc.entry_label)
    return result


@dataclass
class NaturalLoop:
    """A natural loop: header plus the body blocks that can reach the back
    edge source without passing through the header."""

    header: str
    back_edge_sources: Tuple[str, ...]
    body: FrozenSet[str] = field(default_factory=frozenset)

    def contains(self, label: str) -> bool:
        """True when ``label`` belongs to the loop (header included)."""
        return label == self.header or label in self.body


def natural_loops(proc: Procedure) -> List[NaturalLoop]:
    """Find all natural loops, merging loops that share a header."""
    preds = proc.predecessors()
    by_header: Dict[str, Set[str]] = {}
    sources: Dict[str, List[str]] = {}
    for src, dst in back_edges(proc):
        body = by_header.setdefault(dst, set())
        sources.setdefault(dst, []).append(src)
        # Walk backwards from the back-edge source collecting the body.
        work = [src]
        while work:
            label = work.pop()
            if label == dst or label in body:
                continue
            body.add(label)
            work.extend(preds.get(label, ()))
    return [
        NaturalLoop(
            header=header,
            back_edge_sources=tuple(sorted(sources[header])),
            body=frozenset(body),
        )
        for header, body in sorted(by_header.items())
    ]


def loop_headers(proc: Procedure) -> Set[str]:
    """Labels that are targets of at least one back edge."""
    return {dst for _, dst in back_edges(proc)}
