"""Superblock-local optimizations: value numbering and dead-code elimination.

The paper's back end runs value numbering and dead-code elimination on each
superblock before scheduling (Section 2.3).  Both passes here operate on a
straight-line instruction sequence annotated with *escape* liveness: for each
side exit (branch) the set of registers the off-trace world reads, plus the
set live at the fallthrough end.  That is exactly the shape of a superblock,
but the passes are usable on any linear region.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..ir import instructions as ins
from ..ir.instructions import Instruction, Opcode

#: For each instruction index that is a branch, the registers that must hold
#: their architectural values should that exit be taken.
ExitLiveness = Dict[int, Set[int]]


def eliminate_dead_code(
    instrs: Sequence[Instruction],
    exit_live: ExitLiveness,
    final_live: Set[int],
) -> List[Instruction]:
    """Drop pure instructions whose results no later consumer can observe.

    An instruction survives when it has side effects, transfers control, or
    defines a register needed by a later on-trace use, a later side exit, or
    the fallthrough successor.
    """
    needed: Set[int] = set(final_live)
    kept_reversed: List[Instruction] = []
    for index in range(len(instrs) - 1, -1, -1):
        instr = instrs[index]
        if instr.is_branch or instr.is_terminator:
            needed |= exit_live.get(index, set())
        removable = (
            instr.is_pure
            and instr.dest is not None
            and instr.dest not in needed
        )
        if removable:
            continue
        if instr.dest is not None:
            needed.discard(instr.dest)
        needed.update(instr.srcs)
        kept_reversed.append(instr)
    return list(reversed(kept_reversed))


_COMMUTATIVE = frozenset(
    {
        Opcode.ADD,
        Opcode.MUL,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.CMPEQ,
        Opcode.CMPNE,
    }
)


def _reuse_mov(instr: Instruction, holder_reg: int) -> Instruction:
    """Move from the value's existing holder, standing in for ``instr``
    (which keeps its provenance)."""
    replacement = ins.mov(instr.dest, holder_reg)
    replacement.origin = instr.origin
    return replacement


def local_value_number(instrs: Sequence[Instruction]) -> List[Instruction]:
    """Classic local value numbering over a straight-line region.

    Redundant pure computations are replaced by register moves from the
    existing holder of the value.  Loads are value-numbered against a memory
    epoch that advances at stores and calls; ``read`` and other side-effecting
    operations are never numbered.  The pass is conservative and always
    semantics-preserving; it never removes instructions (pair it with
    :func:`eliminate_dead_code` to reap the moves it leaves behind).
    """
    next_vn = 0

    def fresh_vn() -> int:
        nonlocal next_vn
        next_vn += 1
        return next_vn

    reg_vn: Dict[int, int] = {}
    expr_table: Dict[tuple, int] = {}
    holder: Dict[int, int] = {}  # value number -> register currently holding it
    memory_epoch = 0
    result: List[Instruction] = []

    def vn_of(reg: int) -> int:
        if reg not in reg_vn:
            reg_vn[reg] = fresh_vn()
            holder.setdefault(reg_vn[reg], reg)
        return reg_vn[reg]

    def define(reg: int, vn: int) -> None:
        # Any value previously held only in ``reg`` loses its holder.
        for value, where in list(holder.items()):
            if where == reg and value != vn:
                del holder[value]
        reg_vn[reg] = vn
        holder.setdefault(vn, reg)

    for instr in instrs:
        op = instr.opcode
        if op is Opcode.LI:
            key = ("li", instr.imm)
            vn = expr_table.setdefault(key, fresh_vn())
            known = holder.get(vn)
            if known is not None and known != instr.dest and reg_vn.get(known) == vn:
                result.append(_reuse_mov(instr, known))
            else:
                result.append(instr)
            define(instr.dest, vn)
            continue
        if op is Opcode.MOV:
            vn = vn_of(instr.srcs[0])
            result.append(instr)
            define(instr.dest, vn)
            continue
        if instr.is_pure and instr.dest is not None and op is not Opcode.LOAD_S:
            src_vns = tuple(vn_of(s) for s in instr.srcs)
            if op in _COMMUTATIVE:
                src_vns = tuple(sorted(src_vns))
            key = (op.value,) + src_vns
            vn = expr_table.setdefault(key, fresh_vn())
            known = holder.get(vn)
            if known is not None and known != instr.dest and reg_vn.get(known) == vn:
                result.append(_reuse_mov(instr, known))
            else:
                result.append(instr)
            define(instr.dest, vn)
            continue
        if op in (Opcode.LOAD, Opcode.LOAD_S):
            key = ("load", vn_of(instr.srcs[0]), memory_epoch)
            vn = expr_table.setdefault(key, fresh_vn())
            known = holder.get(vn)
            if known is not None and known != instr.dest and reg_vn.get(known) == vn:
                result.append(_reuse_mov(instr, known))
            else:
                result.append(instr)
            define(instr.dest, vn)
            continue
        if op in (Opcode.STORE, Opcode.CALL, Opcode.READ, Opcode.PRINT):
            if op in (Opcode.STORE, Opcode.CALL):
                memory_epoch += 1
            result.append(instr)
            if instr.dest is not None:
                define(instr.dest, fresh_vn())
            continue
        # DIV/MOD (may fault) and control instructions: keep, give fresh vns.
        result.append(instr)
        if instr.dest is not None:
            src_vns = tuple(vn_of(s) for s in instr.srcs)
            key = (op.value,) + src_vns
            vn = expr_table.setdefault(key, fresh_vn())
            define(instr.dest, vn)
    return result
