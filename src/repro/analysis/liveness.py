"""Backward liveness dataflow over a procedure CFG.

Liveness answers the question the superblock compactor keeps asking: *which
registers does the off-trace world expect to find intact at this side exit?*
Any instruction whose destination is live on an off-trace path may only move
above that exit after live-off-trace renaming (Section 2.3 of the paper).
Liveness also powers dead-code elimination and the linear-scan register
allocator.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from ..ir.cfg import Procedure
from ..ir.instructions import Instruction


def instruction_uses(instr: Instruction) -> Tuple[int, ...]:
    """Registers read by ``instr``."""
    return instr.srcs


def instruction_defs(instr: Instruction) -> Tuple[int, ...]:
    """Registers written by ``instr``."""
    return (instr.dest,) if instr.dest is not None else ()


def block_use_def(proc: Procedure, label: str) -> Tuple[Set[int], Set[int]]:
    """Upward-exposed uses and defs of one block."""
    uses: Set[int] = set()
    defs: Set[int] = set()
    for instr in proc.block(label).instructions:
        for reg in instruction_uses(instr):
            if reg not in defs:
                uses.add(reg)
        for reg in instruction_defs(instr):
            defs.add(reg)
    return uses, defs


class LivenessInfo:
    """Computed live-in / live-out sets for every block of a procedure."""

    def __init__(
        self,
        live_in: Dict[str, FrozenSet[int]],
        live_out: Dict[str, FrozenSet[int]],
    ) -> None:
        self.live_in = live_in
        self.live_out = live_out

    def live_in_at(self, label: str) -> FrozenSet[int]:
        """Registers live on entry to block ``label``."""
        return self.live_in.get(label, frozenset())

    def live_out_at(self, label: str) -> FrozenSet[int]:
        """Registers live on exit from block ``label``."""
        return self.live_out.get(label, frozenset())


def compute_liveness(proc: Procedure) -> LivenessInfo:
    """Iterative backward may-analysis to a fixed point.

    The return instruction's source is naturally treated as a use; nothing is
    live out of a ``ret`` block beyond that.
    """
    labels = list(proc.labels)
    use: Dict[str, Set[int]] = {}
    define: Dict[str, Set[int]] = {}
    for label in labels:
        u, d = block_use_def(proc, label)
        use[label] = u
        define[label] = d

    live_in: Dict[str, Set[int]] = {label: set(use[label]) for label in labels}
    live_out: Dict[str, Set[int]] = {label: set() for label in labels}

    changed = True
    while changed:
        changed = False
        for label in reversed(labels):
            out: Set[int] = set()
            for succ in proc.successors(label):
                out |= live_in[succ]
            if out != live_out[label]:
                live_out[label] = out
                changed = True
            new_in = use[label] | (out - define[label])
            if new_in != live_in[label]:
                live_in[label] = new_in
                changed = True

    return LivenessInfo(
        {label: frozenset(live_in[label]) for label in labels},
        {label: frozenset(live_out[label]) for label in labels},
    )
