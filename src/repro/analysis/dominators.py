"""Dominator computation (Cooper–Harvey–Kennedy iterative algorithm).

Dominators are used to identify back edges, which both trace selectors must
refuse to cross (a trace may not contain a back edge — Section 2.1 of the
paper), and to find natural loops for the classical peeling/unrolling
enlargements.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.cfg import Procedure, reachable_labels


def immediate_dominators(proc: Procedure) -> Dict[str, Optional[str]]:
    """Compute the immediate dominator of every reachable block.

    Returns a map ``label -> idom label``; the entry maps to ``None``.
    Unreachable blocks are omitted.
    """
    rpo = reachable_labels(proc)
    index = {label: i for i, label in enumerate(rpo)}
    preds = proc.predecessors()
    entry = proc.entry_label

    idom: Dict[str, Optional[str]] = {entry: entry}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for label in rpo:
            if label == entry:
                continue
            candidates = [p for p in preds[label] if p in idom and p in index]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = intersect(new_idom, p)
            if idom.get(label) != new_idom:
                idom[label] = new_idom
                changed = True

    result: Dict[str, Optional[str]] = {}
    for label in rpo:
        if label == entry:
            result[label] = None
        elif label in idom:
            result[label] = idom[label]
    return result


class DominatorTree:
    """Queryable dominator relation for one procedure."""

    def __init__(self, proc: Procedure) -> None:
        self.proc = proc
        self.idom = immediate_dominators(proc)
        self._depth: Dict[str, int] = {}
        for label in self.idom:
            self._depth[label] = self._compute_depth(label)

    def _compute_depth(self, label: str) -> int:
        depth = 0
        cursor: Optional[str] = label
        while cursor is not None:
            cursor = self.idom.get(cursor)
            depth += 1
        return depth

    def dominates(self, a: str, b: str) -> bool:
        """True when block ``a`` dominates block ``b`` (reflexive)."""
        cursor: Optional[str] = b
        while cursor is not None:
            if cursor == a:
                return True
            cursor = self.idom.get(cursor)
        return False

    def dominators_of(self, label: str) -> List[str]:
        """All dominators of ``label``, from itself up to the entry."""
        chain = []
        cursor: Optional[str] = label
        while cursor is not None:
            chain.append(cursor)
            cursor = self.idom.get(cursor)
        return chain
