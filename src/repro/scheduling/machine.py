"""The experimental machine model (Section 3.2 of the paper).

A very powerful VLIW based on the Alpha ISA: 8 universal functional units
(any unit executes any operation), at most one control instruction per cycle,
single-cycle latencies, a 128-entry integer register file, and non-excepting
variants of faulting instructions so the compiler can speculate freely.

``REALISTIC_MACHINE`` provides the paper's "more realistic instruction
latencies" variant used for the sensitivity experiment the authors mention
(they found path profiles helped *more* under realistic latencies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from ..ir.instructions import Opcode


@dataclass(frozen=True)
class MachineModel:
    """Resource and latency description of the target VLIW."""

    #: Operations issued per cycle (universal functional units).
    issue_width: int = 8
    #: Control instructions (branches, jumps, calls, returns) per cycle.
    control_per_cycle: int = 1
    #: Integer registers available to the allocator.
    num_registers: int = 128
    #: Per-opcode latency overrides; anything absent defaults to 1 cycle.
    latencies: Mapping[Opcode, int] = field(default_factory=dict)
    #: Human-readable name used in reports.
    name: str = "paper-vliw"

    def latency(self, opcode: Opcode) -> int:
        """Result latency of ``opcode`` in cycles (>= 1)."""
        return self.latencies.get(opcode, 1)


#: The paper's primary machine: 8-wide, unit latencies, 128 registers.
PAPER_MACHINE = MachineModel()

#: A machine with more realistic latencies (multiplies, divides, loads).
REALISTIC_MACHINE = MachineModel(
    latencies={
        Opcode.MUL: 3,
        Opcode.DIV: 12,
        Opcode.MOD: 12,
        Opcode.LOAD: 2,
        Opcode.LOAD_S: 2,
    },
    name="realistic-vliw",
)
