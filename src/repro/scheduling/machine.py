"""The experimental machine model (Section 3.2 of the paper).

A very powerful VLIW based on the Alpha ISA: 8 universal functional units
(any unit executes any operation), at most one control instruction per cycle,
single-cycle latencies, a 128-entry integer register file, and non-excepting
variants of faulting instructions so the compiler can speculate freely.

``REALISTIC_MACHINE`` provides the paper's "more realistic instruction
latencies" variant used for the sensitivity experiment the authors mention
(they found path profiles helped *more* under realistic latencies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from ..ir.instructions import Opcode


@dataclass(frozen=True)
class MachineModel:
    """Resource and latency description of the target VLIW.

    Instruction latencies are *result* latencies and must be >= 1: an
    operation's value is available to consumers no earlier than the next
    cycle.  Latency overrides below 1 are rejected at construction.  Note
    that the dependence graph still carries latency-0 *edges* — those are
    intentional and express same-cycle orderings under the machine's
    read-before-write semantics (anti-dependences, and the producer-shares-
    the-exit's-cycle rule for off-trace consumers), not a zero-cycle result
    latency.
    """

    #: Operations issued per cycle (universal functional units).
    issue_width: int = 8
    #: Control instructions (branches, jumps, calls, returns) per cycle.
    control_per_cycle: int = 1
    #: Integer registers available to the allocator.
    num_registers: int = 128
    #: Per-opcode latency overrides; anything absent defaults to 1 cycle.
    latencies: Mapping[Opcode, int] = field(default_factory=dict)
    #: Human-readable name used in reports.
    name: str = "paper-vliw"

    def __post_init__(self) -> None:
        for opcode, value in self.latencies.items():
            if value < 1:
                raise ValueError(
                    f"latency override {opcode.value}={value} is invalid:"
                    " result latencies must be >= 1 (latency-0 scheduling"
                    " edges are a dependence-graph concept, not a machine"
                    " property)"
                )

    def latency(self, opcode: Opcode) -> int:
        """Result latency of ``opcode`` in cycles (>= 1)."""
        return self.latencies.get(opcode, 1)


#: The paper's primary machine: 8-wide, unit latencies, 128 registers.
PAPER_MACHINE = MachineModel()

#: A machine with more realistic latencies (multiplies, divides, loads).
REALISTIC_MACHINE = MachineModel(
    latencies={
        Opcode.MUL: 3,
        Opcode.DIV: 12,
        Opcode.MOD: 12,
        Opcode.LOAD: 2,
        Opcode.LOAD_S: 2,
    },
    name="realistic-vliw",
)
