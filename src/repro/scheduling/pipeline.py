"""Software pipelining of hot single-superblock loops (modulo scheduling).

A superblock whose last instruction branches back to its own head is a
loop whose iterations the list scheduler executes strictly back to back:
every iteration costs the full schedule length ``L`` even when latency
stalls leave most slots empty.  Modulo scheduling overlaps iterations so
the steady state costs one *initiation interval* ``II <= L`` per
iteration instead.

The implementation follows Rau's iterative modulo scheduling:

1. **Cross-iteration dependences** come from the existing
   :func:`~repro.scheduling.depgraph.build_dependence_graph` run on the
   loop body concatenated with a copy of itself — an edge into the copy
   is a distance-1 (next-iteration) dependence, an edge inside the first
   copy is a distance-0 one.  This reuses the exact register, memory,
   spill-slot, control, side-effect, and exit-liveness semantics of the
   list scheduler's graph instead of re-deriving them.
2. **MII** is the larger of the resource bound (ops over issue width,
   controls over the control slot) and the recurrence bound, probed per
   candidate ``II`` by positive-cycle detection over edge weights
   ``latency - II * distance``.
3. **Scheduling** places ops in priority order (critical-path height),
   each at the earliest feasible cycle with a free slot in the modulo
   reservation table, evicting conflicting or violated ops under a
   budget when no slot is free.

A valid modulo schedule is rotated into a **kernel** of ``II`` cycles
(entered once per iteration via the rewritten back edge) plus a
**prologue** that fills the software pipeline and jumps into the kernel.
Ops scheduled before the kernel window of their own iteration execute
speculatively for future iterations and are flagged as such, reusing the
machine's non-excepting semantics.  Every accepted loop is re-validated
by expanding several iterations back into a straight-line schedule and
running it through the list scheduler's :func:`verify_schedule`; any
failed invariant falls back silently to the list schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir.instructions import Instruction, Opcode
from .config import SchedConfig
from .depgraph import build_dependence_graph
from .list_scheduler import (
    ScheduledOp,
    SuperblockSchedule,
    _mark_speculative,
    verify_schedule,
)
from .machine import MachineModel
from .sbcode import ExitInfo, SuperblockCode

#: (src, dst, latency, iteration distance); distance is 0 or 1.
LoopEdge = Tuple[int, int, int, int]


@dataclass
class PipelinedLoop:
    """One successfully modulo-scheduled loop superblock."""

    #: The (post-allocation) loop body the schedule was derived from.
    code: SuperblockCode
    machine: MachineModel
    #: Initiation interval: steady-state cycles per iteration.
    ii: int
    #: Cycles before the first kernel window (prologue length).
    phase: int
    #: Modulo schedule time of each body op (normalized, min 0).
    times: List[int]
    #: Kernel window offset of each body op (0 = own iteration,
    #: -1 = executes one window early for the next iteration, ...).
    offsets: List[int]
    #: List-schedule length this loop improved on.
    list_length: int
    #: Steady-state kernel schedule (``ii`` bundles, re-entered per
    #: iteration through the rewritten back edge).
    kernel: SuperblockSchedule
    #: Pipeline-fill schedule registered at the original head; ``None``
    #: when ``phase == 0`` and the kernel itself sits at the head.
    prologue: Optional[SuperblockSchedule]


def loop_candidate(code: SuperblockCode, sched: SchedConfig) -> bool:
    """True when ``code`` is a single-superblock loop we can pipeline.

    The last instruction must be a non-call control transfer whose
    targets include the superblock's own head (the loop back edge), and
    the body must be call-free: a call is a scheduling barrier that
    defeats overlap and would let callee side effects escape the
    speculation model.
    """
    n = len(code.instructions)
    if n < 2 or n > sched.pipeline_max_ops:
        return False
    last = code.instructions[-1]
    if not last.is_control or last.opcode is Opcode.CALL:
        return False
    if code.head not in last.targets:
        return False
    return all(
        instr.opcode is not Opcode.CALL for instr in code.instructions
    )


def _loop_edges(
    code: SuperblockCode, machine: MachineModel
) -> List[LoopEdge]:
    """Dependence edges of the loop body with iteration distances.

    Builds the ordinary dependence graph over the body followed by a
    fresh copy of itself; edges landing in the copy are the distance-1
    (cross-iteration) dependences.  Adjacent iterations suffice: the
    builder's state when entering the copy is isomorphic to its state
    when entering any later iteration, so constraints between iterations
    further apart are implied transitively.
    """
    n = len(code.instructions)
    copies = [instr.copy() for instr in code.instructions]
    exits: Dict[Instruction, ExitInfo] = dict(code.exits)
    block_of: Dict[Instruction, str] = dict(code.block_of)
    for orig, cp in zip(code.instructions, copies):
        info = code.exits.get(orig)
        if info is not None:
            exits[cp] = ExitInfo(info.on_trace_target, set(info.live))
        block_of[cp] = code.block_of.get(orig, code.head)
    doubled = SuperblockCode(
        proc=code.proc,
        head=code.head,
        labels=list(code.labels),
        instructions=list(code.instructions) + copies,
        block_of=block_of,
        exits=exits,
    )
    graph = build_dependence_graph(doubled, machine)
    edges: List[LoopEdge] = []
    for u in range(n):
        for v, lat in graph.succs[u]:
            if v < n:
                edges.append((u, v, lat, 0))
            else:
                edges.append((u, v - n, lat, 1))
    # The back edge must issue last within its own iteration so that the
    # kernel window ends on it; expressed as a zero-latency edge from
    # every op to the branch.  (Cycles this creates with distance-1
    # edges out of the branch have weight <= lat - II <= 0 for any
    # II >= 1, so the recurrence bound is unaffected.)
    for j in range(n - 1):
        edges.append((j, n - 1, 0, 0))
    return edges


def _has_positive_cycle(n: int, edges: Sequence[LoopEdge], ii: int) -> bool:
    """True when some recurrence needs more than ``ii`` cycles.

    Bellman-Ford longest-path relaxation over edge weights
    ``latency - ii * distance``: relaxation still progressing after
    ``n`` full passes implies a positive-weight cycle, i.e. the
    recurrence bound exceeds ``ii``.
    """
    dist = [0] * n
    for _ in range(n + 1):
        changed = False
        for u, v, lat, d in edges:
            w = dist[u] + lat - ii * d
            if w > dist[v]:
                dist[v] = w
                changed = True
        if not changed:
            return False
    return True


def _body_heights(n: int, edges: Sequence[LoopEdge]) -> List[int]:
    """Critical-path heights over the distance-0 (intra-iteration) edges.

    Distance-0 edges always point forward in program order, so a single
    reverse pass computes longest paths.
    """
    succs0: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    for u, v, lat, d in edges:
        if d == 0:
            succs0[u].append((v, lat))
    heights = [1] * n
    for i in range(n - 1, -1, -1):
        best = 1
        for j, lat in succs0[i]:
            if lat + heights[j] > best:
                best = lat + heights[j]
        heights[i] = best
    return heights


def _modulo_schedule(
    n: int,
    edges: Sequence[LoopEdge],
    heights: Sequence[int],
    is_control: Sequence[bool],
    ii: int,
    machine: MachineModel,
    budget: int,
) -> Optional[List[int]]:
    """Iterative modulo scheduling at a fixed ``ii`` (Rau's algorithm).

    Returns the op issue times, or ``None`` when the eviction budget
    runs out before a fixed point is reached.
    """
    width = machine.issue_width
    cpc = machine.control_per_cycle
    preds: List[List[Tuple[int, int, int]]] = [[] for _ in range(n)]
    succs: List[List[Tuple[int, int, int]]] = [[] for _ in range(n)]
    for u, v, lat, d in edges:
        preds[v].append((u, lat, d))
        succs[u].append((v, lat, d))

    order = sorted(range(n), key=lambda i: (-heights[i], i))
    time: List[Optional[int]] = [None] * n
    prev: List[int] = [-1] * n
    slot_ops: List[List[int]] = [[] for _ in range(ii)]
    unscheduled: Set[int] = set(range(n))

    def unplace(j: int) -> None:
        slot_ops[time[j] % ii].remove(j)
        time[j] = None
        unscheduled.add(j)

    while unscheduled:
        if budget <= 0:
            return None
        budget -= 1
        i = next(k for k in order if k in unscheduled)
        est = 0
        for u, lat, d in preds[i]:
            tu = time[u]
            if tu is not None and u != i:
                c = tu + lat - ii * d
                if c > est:
                    est = c
        t = None
        for c in range(est, est + ii):
            s = c % ii
            if len(slot_ops[s]) >= width:
                continue
            if is_control[i] and (
                sum(1 for j in slot_ops[s] if is_control[j]) >= cpc
            ):
                continue
            t = c
            break
        forced = t is None
        if forced:
            t = est if prev[i] < 0 else max(est, prev[i] + 1)
        unscheduled.discard(i)
        time[i] = t
        prev[i] = t
        s = t % ii
        slot_ops[s].append(i)
        if forced:
            # Evict lowest-priority occupants of the contested slot
            # until the reservation is feasible again.
            while True:
                others = [j for j in slot_ops[s] if j != i]
                ctrl_over = is_control[i] and (
                    sum(1 for j in slot_ops[s] if is_control[j]) > cpc
                )
                if ctrl_over:
                    pool = [j for j in others if is_control[j]]
                elif len(slot_ops[s]) > width:
                    pool = others
                else:
                    break
                unplace(min(pool, key=lambda j: (heights[j], -j)))
        # Un-place any scheduled successor whose constraint i now breaks.
        for v, lat, d in succs[i]:
            tv = time[v]
            if v != i and tv is not None and tv < t + lat - ii * d:
                unplace(v)
    # Self-dependences (op to its own next-iteration instance) are not
    # part of est/eviction above; II feasibility was checked up front,
    # but verify defensively.
    for u, v, lat, d in edges:
        if u == v and lat - ii * d > 0:
            return None
    return [t for t in time]  # type: ignore[misc]


def _offset_problems(
    code: SuperblockCode, offsets: Sequence[int]
) -> List[str]:
    """Sanity of kernel window offsets (all should hold by construction).

    Controls and side effects must stay in their own iteration's window,
    and definitions of exit-live registers may run at most one window
    early — otherwise prologue copies or overlapped kernel windows could
    clobber a value an off-trace exit still needs.
    """
    problems: List[str] = []
    exit_live = code.exit_live_by_index()
    exit_indices = sorted(exit_live)
    for i, instr in enumerate(code.instructions):
        o = offsets[i]
        if (instr.is_control or instr.has_side_effects) and o != 0:
            problems.append(
                f"op {i} ({instr.opcode.value}): control/side effect at"
                f" window offset {o}"
            )
        dest = instr.dest
        if dest is None or o == 0:
            continue
        if any(e < i and dest in exit_live[e] for e in exit_indices):
            problems.append(
                f"op {i}: def of r{dest} (live at an earlier exit) at"
                f" window offset {o}"
            )
        elif o < -1 and any(dest in exit_live[e] for e in exit_indices):
            problems.append(
                f"op {i}: def of exit-live r{dest} at window offset {o}"
            )
    return problems


def _finish_bundles(
    bundles: List[List[ScheduledOp]], width: int
) -> List[str]:
    """Sort bundles into program order, assign slots, check resources."""
    problems: List[str] = []
    for cycle, bundle in enumerate(bundles):
        bundle.sort(key=lambda op: op.orig_index)
        for slot, op in enumerate(bundle):
            op.slot = slot
            if op.cycle != cycle:
                problems.append(
                    f"cycle {cycle}: op tagged with cycle {op.cycle}"
                )
        if len(bundle) > width:
            problems.append(f"cycle {cycle}: {len(bundle)} ops issued")
        if sum(1 for op in bundle if op.instr.is_control) > 1:
            problems.append(f"cycle {cycle}: multiple control ops")
    return problems


def _build_kernel(
    code: SuperblockCode,
    machine: MachineModel,
    times: Sequence[int],
    offsets: Sequence[int],
    ii: int,
    phase: int,
    kernel_head: str,
) -> Optional[SuperblockSchedule]:
    """Rotate the modulo schedule into the steady-state kernel window.

    Kernel program order is iteration-major — current-iteration ops
    (offset 0) first, then ops running early for later iterations — so
    the back-edge branch (last offset-0 op, final kernel cycle) precedes
    exactly the speculative future-iteration ops, and
    :func:`_mark_speculative` flags them with its ordinary rule.
    """
    n = len(code.instructions)
    order = sorted(range(n), key=lambda i: (-offsets[i], i))
    instrs: List[Instruction] = []
    block_of: Dict[Instruction, str] = {}
    exits: Dict[Instruction, ExitInfo] = {}
    ops: List[ScheduledOp] = []
    for pos, i in enumerate(order):
        orig = code.instructions[i]
        cp = orig.copy()
        if i == n - 1 and kernel_head != code.head:
            cp.targets = tuple(
                kernel_head if t == code.head else t for t in cp.targets
            )
        src_block = code.block_of.get(orig, code.head)
        block_of[cp] = kernel_head if src_block == code.head else src_block
        info = code.exits.get(orig)
        if info is not None:
            exits[cp] = ExitInfo(info.on_trace_target, set(info.live))
        instrs.append(cp)
        ops.append(
            ScheduledOp(
                instr=cp,
                orig_index=pos,
                cycle=times[i] - phase - offsets[i] * ii,
                slot=0,
            )
        )
    kcode = SuperblockCode(
        proc=code.proc,
        head=kernel_head,
        labels=[kernel_head] + list(code.labels[1:]),
        instructions=instrs,
        block_of=block_of,
        exits=exits,
    )
    bundles: List[List[ScheduledOp]] = [[] for _ in range(ii)]
    for op in ops:
        if not 0 <= op.cycle < ii:
            return None
        bundles[op.cycle].append(op)
    if _finish_bundles(bundles, machine.issue_width):
        return None
    if not any(op.instr.is_control for op in bundles[-1]):
        return None  # the back edge must close the window
    schedule = SuperblockSchedule(
        code=kcode, ops=ops, bundles=bundles, machine=machine
    )
    _mark_speculative(schedule)
    return schedule


def _build_prologue(
    code: SuperblockCode,
    machine: MachineModel,
    times: Sequence[int],
    offsets: Sequence[int],
    ii: int,
    phase: int,
    kernel_head: str,
) -> Optional[SuperblockSchedule]:
    """Build the pipeline-fill schedule registered at the loop head.

    Iteration ``m``'s instance of op ``i`` runs here when the kernel
    expects it already done on entry (``m <= -offset[i] - 1``), at the
    same absolute cycle ``m * ii + times[i]`` the infinite expansion
    assigns it, so every dependence latency carries over unchanged.  A
    synthetic jump then enters the kernel.  Copies for iterations past
    the first, and copies above a body exit, are speculative.
    """
    n = len(code.instructions)
    exit_indices = code.exit_indices()
    fills = max(-o for o in offsets)
    instrs: List[Instruction] = []
    block_of: Dict[Instruction, str] = {}
    ops: List[ScheduledOp] = []
    for m in range(fills):
        for i in range(n):
            if m > -offsets[i] - 1:
                continue
            orig = code.instructions[i]
            cp = orig.copy()
            instrs.append(cp)
            block_of[cp] = code.block_of.get(orig, code.head)
            ops.append(
                ScheduledOp(
                    instr=cp,
                    orig_index=len(instrs) - 1,
                    cycle=m * ii + times[i],
                    slot=0,
                    speculative=(
                        m >= 1 or any(e < i for e in exit_indices)
                    ),
                )
            )
    bundles: List[List[ScheduledOp]] = [[] for _ in range(phase)]
    for op in ops:
        if not 0 <= op.cycle < phase:
            return None
        bundles[op.cycle].append(op)
    # Jump into the kernel, sharing the last fill cycle when a slot is
    # free (the prologue contains no other control ops).
    jmp = Instruction(Opcode.JMP, targets=(kernel_head,))
    if len(bundles[phase - 1]) < machine.issue_width:
        jmp_cycle = phase - 1
    else:
        jmp_cycle = phase
        bundles.append([])
    live: Set[int] = set()
    for info in code.exits.values():
        live |= info.live
    exits: Dict[Instruction, ExitInfo] = {
        jmp: ExitInfo(on_trace_target=None, live=live)
    }
    jop = ScheduledOp(
        instr=jmp, orig_index=len(instrs), cycle=jmp_cycle, slot=0
    )
    instrs.append(jmp)
    block_of[jmp] = code.head
    ops.append(jop)
    bundles[jmp_cycle].append(jop)
    if _finish_bundles(bundles, machine.issue_width):
        return None
    pcode = SuperblockCode(
        proc=code.proc,
        head=code.head,
        labels=list(code.labels),
        instructions=instrs,
        block_of=block_of,
        exits=exits,
    )
    return SuperblockSchedule(
        code=pcode, ops=ops, bundles=bundles, machine=machine
    )


def expansion_problems(loop: PipelinedLoop, trips: int = 0) -> List[str]:
    """Re-validate a pipelined loop by flattening it back out.

    Expands ``trips`` iterations at the modulo schedule's absolute
    cycles (iteration ``m``'s op ``i`` at ``m * ii + times[i]``) into
    one straight-line schedule over fresh instruction copies and runs
    the list scheduler's :func:`verify_schedule` on it: every register,
    memory, spill, control, side-effect, exit-liveness, and resource
    invariant is checked on the overlapped execution itself.
    """
    code, ii, times = loop.code, loop.ii, loop.times
    n = len(code.instructions)
    if trips <= 0:
        trips = max(3, max(-o for o in loop.offsets) + 2)
    instrs: List[Instruction] = []
    block_of: Dict[Instruction, str] = {}
    exits: Dict[Instruction, ExitInfo] = {}
    ops: List[ScheduledOp] = []
    for m in range(trips):
        for i in range(n):
            orig = code.instructions[i]
            cp = orig.copy()
            instrs.append(cp)
            block_of[cp] = code.block_of.get(orig, code.head)
            info = code.exits.get(orig)
            if info is not None:
                exits[cp] = ExitInfo(
                    on_trace_target=None, live=set(info.live)
                )
            ops.append(
                ScheduledOp(
                    instr=cp,
                    orig_index=len(instrs) - 1,
                    cycle=m * ii + times[i],
                    slot=0,
                )
            )
    xcode = SuperblockCode(
        proc=code.proc,
        head=code.head,
        labels=list(code.labels),
        instructions=instrs,
        block_of=block_of,
        exits=exits,
    )
    last_cycle = max(op.cycle for op in ops)
    bundles: List[List[ScheduledOp]] = [[] for _ in range(last_cycle + 1)]
    for op in ops:
        bundles[op.cycle].append(op)
    for bundle in bundles:
        bundle.sort(key=lambda op: op.orig_index)
        for slot, op in enumerate(bundle):
            op.slot = slot
    schedule = SuperblockSchedule(
        code=xcode, ops=ops, bundles=bundles, machine=loop.machine
    )
    _mark_speculative(schedule)
    return verify_schedule(schedule)


def try_pipeline_loop(
    code: SuperblockCode,
    list_schedule: SuperblockSchedule,
    machine: MachineModel,
    sched: SchedConfig,
    used_labels: Set[str],
) -> Optional[PipelinedLoop]:
    """Attempt to modulo-schedule one loop superblock.

    Returns a :class:`PipelinedLoop` strictly faster in steady state
    than ``list_schedule`` (``ii < length``) whose expansion passes
    :func:`verify_schedule`, or ``None`` to keep the list schedule —
    ineligibility, infeasibility, and any failed invariant all land on
    the same safe fallback.
    """
    if not loop_candidate(code, sched):
        return None
    n = len(code.instructions)
    length = list_schedule.length
    edges = _loop_edges(code, machine)
    heights = _body_heights(n, edges)
    is_control = [instr.is_control for instr in code.instructions]
    n_controls = sum(1 for c in is_control if c)
    res_mii = max(
        -(-n // machine.issue_width),
        -(-n_controls // machine.control_per_cycle),
        1,
    )
    for ii in range(res_mii, length):
        if _has_positive_cycle(n, edges, ii):
            continue
        times = _modulo_schedule(
            n, edges, heights, is_control, ii, machine, budget=25 * n + 100
        )
        if times is None:
            continue
        tmin = min(times)
        times = [t - tmin for t in times]
        t_branch = times[n - 1]
        if t_branch != max(times):
            continue
        phase = t_branch + 1 - ii
        if phase < 0:
            continue
        offsets = [(times[i] - phase) // ii for i in range(n)]
        if _offset_problems(code, offsets):
            continue

        if phase == 0:
            kernel_head = code.head
        else:
            kernel_head = f"{code.head}@pipe"
            while kernel_head in used_labels:
                kernel_head += "+"
        kernel = _build_kernel(
            code, machine, times, offsets, ii, phase, kernel_head
        )
        if kernel is None:
            continue
        prologue = None
        if phase > 0:
            prologue = _build_prologue(
                code, machine, times, offsets, ii, phase, kernel_head
            )
            if prologue is None:
                continue
        loop = PipelinedLoop(
            code=code,
            machine=machine,
            ii=ii,
            phase=phase,
            times=times,
            offsets=offsets,
            list_length=length,
            kernel=kernel,
            prologue=prologue,
        )
        if expansion_problems(loop):
            continue
        return loop
    return None
