"""Linearized superblock code and its exit structure.

The compactor works on a straight-line view of each superblock:

* the member blocks' instructions are *copied* and concatenated (the
  formation result stays intact as the semantic reference);
* an internal unconditional jump to the next member block is dropped (the
  fall-through is implicit in the trace — this is the fetch benefit of
  forming traces);
* every remaining control instruction is an *exit point* annotated with the
  registers the off-trace world needs intact at that exit (the live-in set
  of each exit target), which is what the renamer and the dependence graph
  use to keep speculative code motion safe.

Exit metadata is keyed by instruction identity so it survives the
optimization passes (value numbering, dead-code elimination, renaming) that
insert and remove non-control instructions around the exits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..analysis.liveness import LivenessInfo
from ..formation.superblock import Superblock
from ..ir.cfg import Procedure
from ..ir.instructions import Instruction, Opcode


@dataclass
class ExitInfo:
    """Exit annotations of one control instruction."""

    #: Label execution continues at inside the superblock when the branch
    #: does not exit; ``None`` when every target leaves the superblock.
    on_trace_target: Optional[str]
    #: Architectural registers the off-trace world reads if control leaves
    #: the superblock here.
    live: Set[int] = field(default_factory=set)


@dataclass
class SuperblockCode:
    """Straight-line instruction view of one superblock."""

    proc: str
    head: str
    #: All member block labels, in trace order.
    labels: List[str]
    #: The linearized instructions (internal fall-through jumps removed).
    instructions: List[Instruction]
    #: Source member block of each instruction (identity-keyed).
    block_of: Dict[Instruction, str]
    #: Exit annotations of control instructions (identity-keyed).
    exits: Dict[Instruction, ExitInfo]

    @property
    def size(self) -> int:
        """Instruction count of the linearized code."""
        return len(self.instructions)

    def exit_live_by_index(self) -> Dict[int, Set[int]]:
        """Index-keyed exit liveness for the current instruction list."""
        return {
            i: self.exits[instr].live
            for i, instr in enumerate(self.instructions)
            if instr in self.exits
        }

    def exit_indices(self) -> List[int]:
        """Indices (in the current list) of instructions that may exit."""
        return [
            i
            for i, instr in enumerate(self.instructions)
            if instr in self.exits
        ]


def extract_superblock_code(
    proc: Procedure,
    sb: Superblock,
    liveness: LivenessInfo,
) -> SuperblockCode:
    """Linearize ``sb`` and annotate its exits with off-trace liveness.

    ``liveness`` must have been computed on the same (transformed)
    procedure.
    """
    instructions: List[Instruction] = []
    block_of: Dict[Instruction, str] = {}
    exits: Dict[Instruction, ExitInfo] = {}

    for position, label in enumerate(sb.labels):
        block = proc.block(label)
        next_label = (
            sb.labels[position + 1] if position + 1 < len(sb.labels) else None
        )
        for source in block.instructions:
            if (
                source.opcode is Opcode.JMP
                and next_label is not None
                and source.targets[0] == next_label
            ):
                continue  # implicit fall-through inside the trace
            instr = source.copy()
            instructions.append(instr)
            block_of[instr] = label
            if instr.is_terminator:
                exit_targets = [t for t in instr.targets if t != next_label]
                live: Set[int] = set()
                for target in exit_targets:
                    live |= liveness.live_in_at(target)
                exits[instr] = ExitInfo(
                    on_trace_target=(
                        next_label if next_label in instr.targets else None
                    ),
                    live=live,
                )
    return SuperblockCode(
        proc=proc.name,
        head=sb.head,
        labels=list(sb.labels),
        instructions=instructions,
        block_of=block_of,
        exits=exits,
    )
