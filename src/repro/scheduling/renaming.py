"""Register renaming within a superblock (Section 2.3 of the paper).

``compact`` implements three forms of renaming; this pass realizes all of
them with one mechanism:

* **anti/output dependence renaming** — every definition gets a fresh
  virtual register and later on-trace uses read the fresh name, so WAR/WAW
  hazards between on-trace instructions vanish;
* **live off-trace renaming** — when the *architectural* register must still
  be correct at a later exit, a ``mov arch <- fresh`` is placed at the
  definition's original position.  The defining instruction is then free to
  move above earlier exits; only the cheap move stays pinned;
* **move renaming** — consumers are rewritten to read the move's source
  (the fresh register) directly, so they never wait on the move.

The pass mutates the instruction list of a :class:`SuperblockCode` in place
(instruction objects for control transfers keep their identity, preserving
the exit annotations).
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir import instructions as ins
from ..ir.cfg import Procedure
from ..ir.instructions import Instruction, Opcode
from .sbcode import SuperblockCode


def rename_superblock(code: SuperblockCode, proc: Procedure) -> None:
    """Apply combined renaming to ``code`` in place.

    ``proc`` supplies fresh virtual register numbers (so renamed registers
    never collide with architectural ones).
    """
    instrs = code.instructions
    n = len(instrs)

    # For each definition site, does the architectural register need to be
    # materialized before the next definition?  It does iff some exit
    # strictly between this definition and the register's next definition
    # lists it live.  (Exits never define registers, so the bounds are
    # unambiguous; the final terminator is an exit position after every
    # definition.)
    last_seen: Dict[int, int] = {}
    next_def_at: List[int] = [n] * n
    for i in range(n - 1, -1, -1):
        dest = instrs[i].dest
        if dest is not None:
            next_def_at[i] = last_seen.get(dest, n)
            last_seen[dest] = i

    exit_positions: List[int] = code.exit_indices()

    def needs_materialization(def_index: int, reg: int) -> bool:
        limit = next_def_at[def_index]
        for e in exit_positions:
            if def_index < e < limit and reg in code.exits[instrs[e]].live:
                return True
        return False

    current: Dict[int, int] = {}
    #: registers written exactly once by this pass (fresh temps): safe for
    #: consumers to read directly, bypassing any move that copies them.
    stable: set = set()
    result: List[Instruction] = []
    for index, instr in enumerate(instrs):
        # Rewrite sources through the current renaming map.
        if instr.srcs:
            instr.srcs = tuple(current.get(s, s) for s in instr.srcs)
        dest = instr.dest
        if dest is None:
            result.append(instr)
            continue
        materialize = needs_materialization(index, dest)
        if instr.opcode is Opcode.MOV and materialize:
            # The instruction is itself the materializing move.  Move
            # renaming: when its source is a single-definition temporary,
            # later consumers read the source directly and never wait on
            # the move; otherwise they keep reading the architectural
            # register.
            src = instr.srcs[0]
            current[dest] = src if src in stable else dest
            result.append(instr)
            continue
        fresh = proc.fresh_reg()
        instr.dest = fresh
        current[dest] = fresh
        stable.add(fresh)
        result.append(instr)
        if materialize:
            compensation = ins.mov(dest, fresh)
            # Provenance: the compensation mov stands in for the renamed
            # instruction's architectural write.
            compensation.origin = instr.origin
            result.append(compensation)
    code.instructions = result
