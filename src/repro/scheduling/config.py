"""Scheduler configuration threaded through the experiment engine.

A :class:`SchedConfig` bundles the optional scheduler features so one
value can travel from the CLI through :func:`repro.pipeline.run_scheme`,
the parallel workers, and the result cache:

* ``weights`` — tuned list-scheduler priority terms (the ``tune``
  subcommand's search space); ``None`` keeps the classic height-priority
  scheduler byte-for-byte.
* ``pipeline`` — modulo-schedule eligible loop superblocks (see
  :mod:`repro.scheduling.pipeline`); default off, and off is guaranteed
  byte-identical to the pre-pipelining compiler.

The frozen dataclass repr is stable, so it participates directly in
:func:`repro.experiments.cache.outcome_key` — changing any knob changes
the cache key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .list_scheduler import ScheduleWeights


@dataclass(frozen=True)
class SchedConfig:
    """Optional scheduler features for one compilation."""

    #: Tuned list-scheduler priority weights (``None`` = classic).
    weights: Optional[ScheduleWeights] = None
    #: Software-pipeline eligible loop superblocks.
    pipeline: bool = False
    #: Loops with more instructions than this are never pipelined.
    pipeline_max_ops: int = 200

    @property
    def is_default(self) -> bool:
        """True when this config changes nothing about compilation."""
        return (
            (self.weights is None or self.weights.is_default)
            and not self.pipeline
        )


#: The do-nothing configuration (classic scheduler, no pipelining).
DEFAULT_SCHED = SchedConfig()
