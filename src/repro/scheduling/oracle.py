"""Exact superblock scheduling by branch and bound (the ``gapcheck`` oracle).

The list scheduler is a greedy heuristic; this module computes the true
optimal schedule length of a superblock on the same
:class:`~repro.scheduling.depgraph.DepGraph` /
:class:`~repro.scheduling.machine.MachineModel`, so experiments can report
the heuristic's *gap from optimal* per superblock.

The search space is restricted to **non-delay** schedules: whenever at most
``issue_width`` ops are ready, all of them issue.  On this machine the
restriction is lossless — every op occupies a universal functional unit for
exactly one cycle, so moving a ready op into a free slot of an earlier
cycle never delays anything else (its successors only get slack, and the
slot it vacates frees up); and at most one control op is ever ready at a
time (control ops form a latency-1 program-order chain), so the single
control slot never forces idling either.  Branching therefore happens only
when *more* than ``issue_width`` ops are ready, over the choice of the
width-sized subset to issue.

Pruning: a node is cut when a lower bound (critical-path height of the
remaining ops, and remaining-op count over the issue width) cannot beat the
incumbent, which is seeded with the list schedule.  A configurable node
budget bounds the worst case; exhausting it downgrades the result from
*proved optimal* to *best found*.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List, Optional, Tuple

from .depgraph import DepGraph, build_dependence_graph
from .list_scheduler import schedule_superblock
from .machine import MachineModel
from .sbcode import SuperblockCode

#: Default instruction-count ceiling: larger superblocks are not searched.
DEFAULT_MAX_OPS = 48

#: Default search-node budget (one node = one scheduled cycle in the DFS).
DEFAULT_NODE_BUDGET = 200_000


@dataclass(frozen=True)
class OracleResult:
    """Outcome of one branch-and-bound search."""

    #: Best schedule length found (== the optimum when ``proved``).
    length: int
    #: The search ran to completion: ``length`` is provably optimal.
    proved: bool
    #: ``"optimal"``, ``"budget"`` (node budget exhausted), or
    #: ``"skipped"`` (superblock larger than the op budget).
    status: str
    #: Search nodes expanded.
    nodes: int


def oracle_schedule_length(
    code: SuperblockCode,
    machine: MachineModel,
    graph: Optional[DepGraph] = None,
    max_ops: int = DEFAULT_MAX_OPS,
    node_budget: int = DEFAULT_NODE_BUDGET,
    upper_bound: Optional[int] = None,
) -> OracleResult:
    """Exact (or budget-bounded) optimal schedule length of ``code``.

    ``upper_bound`` seeds the incumbent (typically the list schedule's
    length); when absent the list scheduler runs internally.  The result's
    ``length`` is always achievable — on budget exhaustion it is the best
    schedule found so far, a valid upper bound on the optimum.
    """
    instrs = code.instructions
    n = len(instrs)
    if graph is None:
        graph = build_dependence_graph(code, machine)
    if upper_bound is None:
        upper_bound = schedule_superblock(code, machine, graph=graph).length
    if n == 0:
        return OracleResult(length=0, proved=True, status="optimal", nodes=0)
    if n > max_ops:
        return OracleResult(
            length=upper_bound, proved=False, status="skipped", nodes=0
        )

    width = machine.issue_width
    heights = graph.critical_heights()
    succs = graph.succs
    npreds = [len(graph.preds[i]) for i in range(n)]
    full_mask = (1 << n) - 1

    # Count lower bound never changes shape: ceil(remaining / width).
    incumbent = upper_bound
    nodes = 0
    exhausted = False

    # Iterative DFS.  Each stack entry restores (cycle, mask, earliest,
    # pending-pred counts) and an iterator over issue choices.
    def search(
        cycle: int,
        done: int,
        earliest: List[int],
        pending: List[int],
    ) -> None:
        nonlocal incumbent, nodes, exhausted
        if exhausted:
            return
        if done == full_mask:
            # `cycle` is one past the last issued bundle.
            if cycle < incumbent:
                incumbent = cycle
            return
        nodes += 1
        if nodes > node_budget:
            exhausted = True
            return

        # Lower bounds over the unscheduled ops.
        remaining = 0
        best_tail = 0
        min_ready = None
        for i in range(n):
            if done >> i & 1:
                continue
            remaining += 1
            start = earliest[i] if earliest[i] > cycle else cycle
            tail = start + heights[i]
            if tail > best_tail:
                best_tail = tail
            if pending[i] == 0 and (
                min_ready is None or earliest[i] < min_ready
            ):
                min_ready = earliest[i]
        count_bound = cycle + (remaining + width - 1) // width
        bound = best_tail if best_tail > count_bound else count_bound
        if bound >= incumbent:
            return

        # Advance to the first cycle with ready work (latency stalls).
        if min_ready is not None and min_ready > cycle:
            search(min_ready, done, earliest, pending)
            return

        ready = [
            i
            for i in range(n)
            if not (done >> i & 1) and pending[i] == 0 and earliest[i] <= cycle
        ]

        def issue(chosen: Tuple[int, ...]) -> None:
            new_done = done
            new_earliest = list(earliest)
            new_pending = list(pending)
            for i in chosen:
                new_done |= 1 << i
                for j, lat in succs[i]:
                    t = cycle + lat
                    if t > new_earliest[j]:
                        new_earliest[j] = t
                    new_pending[j] -= 1
            search(cycle + 1, new_done, new_earliest, new_pending)

        if len(ready) <= width:
            # Non-delay restriction: issuing every ready op is optimal
            # (see module docstring) — no branching at this node.
            issue(tuple(ready))
            return

        # Branch over width-subsets, highest combined height first so the
        # first descent mirrors (and often improves on) the list schedule.
        ready.sort(key=lambda i: (-heights[i], i))
        for chosen in combinations(ready, width):
            issue(chosen)
            if exhausted:
                return

    search(0, 0, [0] * n, npreds)
    status = "budget" if exhausted else "optimal"
    return OracleResult(
        length=incumbent,
        proved=not exhausted,
        status=status,
        nodes=nodes,
    )
