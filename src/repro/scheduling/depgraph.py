"""Dependence graph over a superblock's linearized instructions.

The graph encodes everything the top-down cycle scheduler must respect:

* register true/anti/output dependences (on the renamed code);
* *virtual exit uses*: a control instruction "reads" every architectural
  register live on its off-trace paths, which (a) forces materializing moves
  to complete no later than the exits that need them and (b) pins
  redefinitions of exit-live registers below the exit — precisely the safety
  condition for speculative code motion above side exits;
* control order: control instructions stay in program order, one per cycle;
* side-effect pinning: stores, I/O, and calls never move across branches
  (no speculative side effects), while pure computations and loads may —
  loads that do are flagged speculative afterwards, modelling the machine's
  non-excepting instruction variants;
* memory ordering: store-store and store-load in order, load-load free
  ("we currently support only a limited load and store reordering");
* calls are full barriers for memory, I/O, and control.

Edge latencies are chosen for the VLIW's read-before-write cycle semantics:
a latency-0 edge permits the consumer to share the producer's cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..ir.instructions import Instruction, Opcode
from .machine import MachineModel
from .sbcode import SuperblockCode


@dataclass
class DepGraph:
    """Immutable dependence graph: adjacency with latencies."""

    #: number of instructions
    size: int
    #: succs[i] = list of (j, latency) meaning j must start >= start(i)+latency
    succs: List[List[Tuple[int, int]]]
    #: preds[j] = list of (i, latency)
    preds: List[List[Tuple[int, int]]]

    def critical_heights(self) -> List[int]:
        """Longest-path height of each node (scheduling priority)."""
        heights = [1] * self.size
        for i in range(self.size - 1, -1, -1):
            best = 1
            for j, lat in self.succs[i]:
                candidate = lat + heights[j]
                if candidate > best:
                    best = candidate
            heights[i] = best
        return heights


def build_dependence_graph(
    code: SuperblockCode, machine: MachineModel
) -> DepGraph:
    """Construct the dependence graph for ``code`` on ``machine``."""
    instrs = code.instructions
    n = len(instrs)
    succs: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    preds: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    #: (src, dst) -> (index in succs[src], index in preds[dst]); one record
    #: per edge, so a duplicate add updates *both* adjacency views (or
    #: neither) — they can never fall out of sync.
    edge_pos: Dict[Tuple[int, int], Tuple[int, int]] = {}

    def add_edge(src: int, dst: int, latency: int) -> None:
        if src == dst:
            return
        key = (src, dst)
        found = edge_pos.get(key)
        if found is not None:
            # Keep the max latency for duplicate edges, atomically in both
            # the successor and the predecessor list.
            s_idx, p_idx = found
            if latency > succs[src][s_idx][1]:
                succs[src][s_idx] = (dst, latency)
                preds[dst][p_idx] = (src, latency)
            return
        edge_pos[key] = (len(succs[src]), len(preds[dst]))
        succs[src].append((dst, latency))
        preds[dst].append((src, latency))

    last_def: Dict[int, int] = {}
    uses_since_def: Dict[int, List[int]] = {}
    last_control = -1
    last_store = -1
    loads_since_store: List[int] = []
    last_read = -1
    last_print = -1
    last_call = -1
    last_spill_st: Dict[int, int] = {}
    spill_lds_since_st: Dict[int, List[int]] = {}

    for i, instr in enumerate(instrs):
        op = instr.opcode
        latency = machine.latency(op)

        # -- register dependences ------------------------------------------
        for reg in instr.srcs:
            d = last_def.get(reg)
            if d is not None:
                add_edge(d, i, machine.latency(instrs[d].opcode))
            uses_since_def.setdefault(reg, []).append(i)
        exit_info = code.exits.get(instr)
        if exit_info is not None:
            for reg in exit_info.live:
                d = last_def.get(reg)
                if d is not None:
                    # The off-trace consumer runs at least one cycle after
                    # this exit, so the producer may share the exit's cycle.
                    add_edge(d, i, max(0, machine.latency(instrs[d].opcode) - 1))
                uses_since_def.setdefault(reg, []).append(i)
        dest = instr.dest
        if dest is not None:
            for use in uses_since_def.get(dest, ()):  # anti
                is_exit_use = instrs[use] in code.exits
                add_edge(use, i, 1 if is_exit_use else 0)
            d = last_def.get(dest)
            if d is not None:  # output
                add_edge(d, i, 1)
            last_def[dest] = i
            uses_since_def[dest] = []

        # -- control order ----------------------------------------------------
        if instr.is_control:
            if last_control >= 0:
                add_edge(last_control, i, 1)

        # -- side effects may not cross branches ------------------------------
        if op in (
            Opcode.STORE,
            Opcode.PRINT,
            Opcode.READ,
            Opcode.CALL,
            Opcode.SPILL_ST,
        ):
            if last_control >= 0:
                add_edge(last_control, i, 1)  # never speculate a side effect

        # -- memory and I/O ordering -----------------------------------------
        if op in (Opcode.LOAD, Opcode.LOAD_S):
            if last_store >= 0:
                add_edge(last_store, i, 1)
            if last_call >= 0:
                add_edge(last_call, i, 1)
            loads_since_store.append(i)
        elif op is Opcode.STORE:
            if last_store >= 0:
                add_edge(last_store, i, 1)
            for load in loads_since_store:
                add_edge(load, i, 0)
            if last_call >= 0:
                add_edge(last_call, i, 1)
            last_store = i
            loads_since_store = []
        elif op is Opcode.READ:
            if last_read >= 0:
                add_edge(last_read, i, 1)
            if last_call >= 0:
                add_edge(last_call, i, 1)
            last_read = i
        elif op is Opcode.PRINT:
            if last_print >= 0:
                add_edge(last_print, i, 1)
            if last_call >= 0:
                add_edge(last_call, i, 1)
            last_print = i
        elif op is Opcode.SPILL_LD:
            slot = instr.imm
            st = last_spill_st.get(slot)
            if st is not None:
                add_edge(st, i, 1)
            spill_lds_since_st.setdefault(slot, []).append(i)
            if last_call >= 0:
                add_edge(last_call, i, 1)
        elif op is Opcode.SPILL_ST:
            slot = instr.imm
            st = last_spill_st.get(slot)
            if st is not None:
                add_edge(st, i, 1)
            for ld in spill_lds_since_st.get(slot, ()):  # anti
                add_edge(ld, i, 0)
            last_spill_st[slot] = i
            spill_lds_since_st[slot] = []
            if last_call >= 0:
                add_edge(last_call, i, 1)
        elif op is Opcode.CALL:
            # Full barrier: everything before must complete, everything
            # after must wait.
            for j in range(i):
                add_edge(j, i, machine.latency(instrs[j].opcode))
            last_call = i
            last_store = i
            last_read = i
            last_print = i
            loads_since_store = []

        if last_call >= 0 and i > last_call and op is not Opcode.CALL:
            add_edge(last_call, i, 1)

        if instr.is_control:
            last_control = i

        # Side-effecting instructions must also execute before (or with) the
        # next control instruction; add when the *next* control arrives.
    # Second pass: pin side effects above their next control instruction.
    next_control = -1
    for i in range(n - 1, -1, -1):
        instr = instrs[i]
        if instr.is_control:
            next_control = i
            continue
        if instr.opcode in (
            Opcode.STORE,
            Opcode.PRINT,
            Opcode.READ,
            Opcode.SPILL_ST,
        ):
            if next_control >= 0:
                add_edge(i, next_control, 0)
    return DepGraph(size=n, succs=succs, preds=preds)
