"""Top-down cycle scheduling of one superblock (the ``compact`` pass).

Classic list scheduling in cycle order: each cycle, the ready instructions
(dependences satisfied, latency elapsed) compete for the machine's 8
universal slots and single control slot; priority is critical-path height
with program order as the tiebreak.  Instructions that end up at or above a
preceding exit are flagged *speculative* — the machine executes them with
the non-excepting instruction variants of Section 3.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..ir.instructions import Instruction, Opcode
from .depgraph import DepGraph, build_dependence_graph
from .machine import MachineModel
from .sbcode import SuperblockCode


@dataclass(frozen=True)
class ScheduleWeights:
    """Tunable priority terms for the list scheduler (the ``tune`` search
    space).

    The priority of a ready op is::

        height * heights[i] - slack * slacks[i] + path * descendants[i]

    where ``heights`` is the critical-path height, ``slacks`` is
    ``ALAP - ASAP`` (mobility: how far the op can slip without stretching
    the critical path), and ``descendants`` is the number of transitive
    dependents (the "path weight" of the op: how much downstream work it
    unlocks).  Whatever the weights, ties always break by original program
    order — determinism never depends on the tuning.

    The defaults reproduce the untuned scheduler byte-for-byte.
    """

    height: float = 1.0
    slack: float = 0.0
    path: float = 0.0

    @property
    def is_default(self) -> bool:
        return self.height == 1.0 and self.slack == 0.0 and self.path == 0.0


def _priority_scores(graph: DepGraph, weights: ScheduleWeights) -> List[float]:
    """Combined priority of every op under ``weights``."""
    n = graph.size
    heights = graph.critical_heights()
    # ASAP (longest path from the roots, in latency cycles).
    asap = [0] * n
    for i in range(n):
        for j, lat in graph.succs[i]:
            if asap[i] + lat > asap[j]:
                asap[j] = asap[i] + lat
    length = max((asap[i] + heights[i] for i in range(n)), default=0)
    # slack = ALAP - ASAP: zero on the critical path.
    slacks = [length - (asap[i] + heights[i]) for i in range(n)]
    # Transitive dependent count via reverse-topological bitset union
    # (program order is a topological order: every edge goes forward).
    reach = [0] * n
    for i in range(n - 1, -1, -1):
        mask = 0
        for j, _ in graph.succs[i]:
            mask |= reach[j] | (1 << j)
        reach[i] = mask
    return [
        weights.height * heights[i]
        - weights.slack * slacks[i]
        + weights.path * reach[i].bit_count()
        for i in range(n)
    ]


@dataclass
class ScheduledOp:
    """One instruction placed in the schedule."""

    instr: Instruction
    #: Index in the (renamed) linear code; preserves program order.
    orig_index: int
    cycle: int
    slot: int
    #: True when the op may execute although an earlier exit was taken.
    speculative: bool = False


@dataclass
class SuperblockSchedule:
    """The compacted form of one superblock."""

    code: SuperblockCode
    ops: List[ScheduledOp]
    #: ops grouped by cycle (no empty trailing bundles).
    bundles: List[List[ScheduledOp]]
    machine: MachineModel

    @property
    def length(self) -> int:
        """Cycles to execute the whole superblock (no early exit)."""
        return len(self.bundles)

    @property
    def head(self) -> str:
        return self.code.head

    def exit_cycle(self, instr: Instruction) -> int:
        """Cycle in which a given exit instruction issues."""
        for op in self.ops:
            if op.instr is instr:
                return op.cycle
        raise KeyError("instruction not in schedule")


def schedule_superblock(
    code: SuperblockCode,
    machine: MachineModel,
    graph: Optional[DepGraph] = None,
    weights: Optional[ScheduleWeights] = None,
) -> SuperblockSchedule:
    """Compact ``code`` with top-down cycle scheduling on ``machine``.

    ``weights`` reweights the ready-op priority terms (see
    :class:`ScheduleWeights`); ``None`` or the default weights reproduce
    the classic height-priority scheduler exactly.  Ties between equal
    priorities always break by original program order, whatever the
    weights.
    """
    instrs = code.instructions
    n = len(instrs)
    if graph is None:
        graph = build_dependence_graph(code, machine)
    if weights is not None and not weights.is_default:
        heights = _priority_scores(graph, weights)
    else:
        heights = graph.critical_heights()
    unscheduled_preds = [len(graph.preds[i]) for i in range(n)]
    earliest = [0] * n
    cycle_of: List[int] = [-1] * n

    #: instructions whose predecessors are all scheduled
    available: Set[int] = {i for i in range(n) if unscheduled_preds[i] == 0}
    remaining = n
    cycle = 0
    ops: List[ScheduledOp] = []
    bundles: List[List[ScheduledOp]] = []

    while remaining > 0:
        bundle: List[ScheduledOp] = []
        control_used = 0
        progressed = True
        while len(bundle) < machine.issue_width and progressed:
            progressed = False
            ready = [
                i
                for i in available
                if earliest[i] <= cycle
                and (
                    not instrs[i].is_control
                    or control_used < machine.control_per_cycle
                )
            ]
            if not ready:
                break
            best = max(ready, key=lambda i: (heights[i], -i))
            available.remove(best)
            cycle_of[best] = cycle
            op = ScheduledOp(
                instr=instrs[best],
                orig_index=best,
                cycle=cycle,
                slot=len(bundle),
            )
            bundle.append(op)
            ops.append(op)
            if instrs[best].is_control:
                control_used += 1
            remaining -= 1
            for succ, lat in graph.succs[best]:
                earliest[succ] = max(earliest[succ], cycle + lat)
                unscheduled_preds[succ] -= 1
                if unscheduled_preds[succ] == 0:
                    available.add(succ)
            progressed = True
        if bundle:
            # Keep a stable intra-bundle order: program order, so the
            # simulator's write phase resolves identically across runs.
            bundle.sort(key=lambda op: op.orig_index)
            for slot, op in enumerate(bundle):
                op.slot = slot
        bundles.append(bundle)
        cycle += 1

    # Trim trailing empty bundles (can happen when the last instruction's
    # latency padding was speculative) and drop empty bundles entirely by
    # re-normalizing cycles: empty bundles in the middle represent genuine
    # stall cycles and are preserved.
    while bundles and not bundles[-1]:
        bundles.pop()

    schedule = SuperblockSchedule(
        code=code, ops=ops, bundles=bundles, machine=machine
    )
    _mark_speculative(schedule)
    return schedule


def _mark_speculative(schedule: SuperblockSchedule) -> None:
    """Flag ops that execute although an earlier exit may already be taken.

    An op is speculative when some exit instruction that *precedes it in
    program order* is scheduled in the same or a later cycle.
    """
    exit_cycles: List[Tuple[int, int]] = [
        (op.orig_index, op.cycle)
        for op in schedule.ops
        if op.instr in schedule.code.exits
    ]
    for op in schedule.ops:
        if op.instr in schedule.code.exits:
            continue
        for exit_index, exit_cycle in exit_cycles:
            if exit_index < op.orig_index and exit_cycle >= op.cycle:
                op.speculative = True
                break


def verify_schedule(schedule: SuperblockSchedule) -> List[str]:
    """Check a schedule against the machine and its dependence graph.

    Used by tests: returns a list of violations (empty when legal).
    """
    problems: List[str] = []
    machine = schedule.machine
    code = schedule.code
    graph = build_dependence_graph(code, machine)
    cycle_of: Dict[int, int] = {op.orig_index: op.cycle for op in schedule.ops}

    if len(schedule.ops) != len(code.instructions):
        problems.append("schedule drops or duplicates instructions")
        return problems

    for i in range(graph.size):
        for j, lat in graph.succs[i]:
            if cycle_of[j] - cycle_of[i] < lat:
                problems.append(
                    f"dependence {i}->{j} (lat {lat}) violated:"
                    f" cycles {cycle_of[i]} -> {cycle_of[j]}"
                )

    for cycle, bundle in enumerate(schedule.bundles):
        if len(bundle) > machine.issue_width:
            problems.append(f"cycle {cycle}: {len(bundle)} ops issued")
        controls = sum(1 for op in bundle if op.instr.is_control)
        if controls > machine.control_per_cycle:
            problems.append(f"cycle {cycle}: {controls} control ops")
        for op in bundle:
            if op.cycle != cycle:
                problems.append(
                    f"cycle {cycle}: op tagged with cycle {op.cycle}"
                )

    # Side effects must never be speculative.
    for op in schedule.ops:
        if op.speculative and (
            op.instr.has_side_effects or op.instr.is_control
        ):
            problems.append(
                f"speculative side effect: {op.instr.opcode.value}"
                f" at cycle {op.cycle}"
            )
    return problems
