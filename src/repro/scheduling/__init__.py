"""Superblock compaction: machine model, dependences, renaming, scheduling."""

from .compactor import CompiledProcedure, CompiledProgram, compact_program
from .config import DEFAULT_SCHED, SchedConfig
from .depgraph import DepGraph, build_dependence_graph
from .list_scheduler import (
    ScheduledOp,
    ScheduleWeights,
    SuperblockSchedule,
    schedule_superblock,
    verify_schedule,
)
from .machine import MachineModel, PAPER_MACHINE, REALISTIC_MACHINE
from .oracle import OracleResult, oracle_schedule_length
from .pipeline import PipelinedLoop, loop_candidate, try_pipeline_loop
from .renaming import rename_superblock
from .sbcode import ExitInfo, SuperblockCode, extract_superblock_code

__all__ = [
    "CompiledProcedure",
    "CompiledProgram",
    "DEFAULT_SCHED",
    "DepGraph",
    "ExitInfo",
    "MachineModel",
    "OracleResult",
    "PAPER_MACHINE",
    "PipelinedLoop",
    "REALISTIC_MACHINE",
    "SchedConfig",
    "ScheduleWeights",
    "ScheduledOp",
    "SuperblockCode",
    "SuperblockSchedule",
    "build_dependence_graph",
    "compact_program",
    "extract_superblock_code",
    "loop_candidate",
    "oracle_schedule_length",
    "rename_superblock",
    "schedule_superblock",
    "try_pipeline_loop",
    "verify_schedule",
]
