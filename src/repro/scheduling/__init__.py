"""Superblock compaction: machine model, dependences, renaming, scheduling."""

from .compactor import CompiledProcedure, CompiledProgram, compact_program
from .depgraph import DepGraph, build_dependence_graph
from .list_scheduler import (
    ScheduledOp,
    SuperblockSchedule,
    schedule_superblock,
    verify_schedule,
)
from .machine import MachineModel, PAPER_MACHINE, REALISTIC_MACHINE
from .renaming import rename_superblock
from .sbcode import ExitInfo, SuperblockCode, extract_superblock_code

__all__ = [
    "CompiledProcedure",
    "CompiledProgram",
    "DepGraph",
    "ExitInfo",
    "MachineModel",
    "PAPER_MACHINE",
    "REALISTIC_MACHINE",
    "ScheduledOp",
    "SuperblockCode",
    "SuperblockSchedule",
    "build_dependence_graph",
    "compact_program",
    "extract_superblock_code",
    "rename_superblock",
    "schedule_superblock",
    "verify_schedule",
]
