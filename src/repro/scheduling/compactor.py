"""The ``compact`` pass: per-superblock optimization, renaming, scheduling,
register allocation, and rescheduling (Section 2.3 of the paper).

For each superblock the flow is::

    linearize -> value number -> dead-code eliminate -> rename
        -> preschedule (infinite registers)
        -> linear-scan allocate (128 registers)
        -> postschedule (restricted by allocation)

The output, :class:`CompiledProgram`, maps every superblock head to its
final :class:`~repro.scheduling.list_scheduler.SuperblockSchedule`; the
VLIW simulator executes it directly.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.fold import fold_constants
from ..analysis.liveness import compute_liveness
from ..analysis.local_opt import eliminate_dead_code, local_value_number
from ..formation.superblock import FormationResult
from ..ir.cfg import Program
from .list_scheduler import SuperblockSchedule, schedule_superblock
from .machine import MachineModel, PAPER_MACHINE
from .renaming import rename_superblock
from .sbcode import SuperblockCode, extract_superblock_code
from ..trace.tracer import tspan


@dataclass
class CompiledProcedure:
    """All scheduled superblocks of one procedure."""

    name: str
    #: Parameter registers of the *compiled* code (remapped by allocation).
    params: Tuple[int, ...]
    #: head label -> final schedule
    schedules: Dict[str, SuperblockSchedule]
    #: head label of the procedure entry superblock
    entry_head: str


@dataclass
class CompiledProgram:
    """A fully formed, compacted, and allocated program."""

    formation: FormationResult
    machine: MachineModel
    procedures: Dict[str, CompiledProcedure]
    entry: str
    #: Name of the formation scheme that produced this program.
    scheme: str = ""
    #: Per-procedure allocation statistics (None when allocation was off).
    allocation_stats: Dict[str, object] = field(default_factory=dict)

    def __getstate__(self):
        # The VLIW template JIT caches exec'd functions on the instance
        # (``_jit_cache``); they are neither picklable nor worth shipping
        # to worker processes, which recompile from source in one go.
        state = self.__dict__.copy()
        state.pop("_jit_cache", None)
        return state

    def schedule_at(self, proc: str, head: str) -> SuperblockSchedule:
        """Look up the schedule entered at superblock head ``head``."""
        return self.procedures[proc].schedules[head]

    def total_scheduled_instructions(self) -> int:
        """Static instruction count over all schedules (incl. spill code)."""
        return sum(
            len(schedule.ops)
            for proc in self.procedures.values()
            for schedule in proc.schedules.values()
        )


def _stage(metrics, name: str, **fields):
    """Metrics stage context, or a no-op context when metrics are off."""
    if metrics is None:
        return nullcontext(fields)
    return metrics.stage(name, **fields)


def compact_program(
    formation: FormationResult,
    machine: MachineModel = PAPER_MACHINE,
    optimize: bool = True,
    allocate: bool = True,
    validation=None,
    metrics=None,
    tracer=None,
    sched=None,
) -> CompiledProgram:
    """Compact every superblock of a formed program.

    Args:
        formation: output of :func:`repro.formation.form_superblocks`.
        machine: target machine model.
        optimize: run superblock-local value numbering and DCE first.
        allocate: run the preschedule/allocate/postschedule flow; when off,
            the preschedule (infinite virtual registers) is the final
            schedule, modelling a register file large enough to never
            constrain the code.
        validation: a :class:`~repro.validation.ValidationConfig` enabling
            stage checkpoints (renaming SSA-ness, schedule legality,
            allocation value-flow) that raise
            :class:`~repro.validation.ValidationError` on violation.
        metrics: a :class:`~repro.metrics.MetricsSink` recording per-phase
            timings per procedure plus compensation-copy, speculation,
            spill, and slot-occupancy counters.
        tracer: a :class:`~repro.trace.Tracer` recording a per-procedure
            compaction span plus one ``compact`` decision per superblock
            (schedule length, op/speculation/compensation counts) and a
            ``spill`` decision per allocated procedure.
        sched: a :class:`~repro.scheduling.config.SchedConfig` with the
            optional scheduler features: tuned list-scheduler priority
            weights and software pipelining of loop superblocks.
            ``None`` (or the default config) compiles exactly as before.

    Returns:
        The compiled program ready for simulation.
    """
    from ..regalloc.linear_scan import allocate_procedure

    weights = sched.weights if sched is not None else None

    if validation is not None and validation.any_compact_checks:
        # Imported lazily: repro.validation pulls in this package.
        from ..validation.invariants import (
            AllocationSnapshot,
            check_allocation_value_flow,
            check_renamed_code,
            check_schedule_legality,
            require,
        )
    else:
        validation = None

    program = formation.program
    compiled = CompiledProgram(
        formation=formation,
        machine=machine,
        procedures={},
        entry=program.entry,
        scheme=formation.scheme,
    )
    for proc in program.procedures():
        liveness = compute_liveness(proc)
        arch_bound = proc.max_reg
        sbs = formation.superblocks[proc.name]
        codes: List[SuperblockCode] = []
        compensation_movs = 0
        movs_by_head: Dict[str, int] = {}
        with tspan(tracer, "compact.local", proc=proc.name), _stage(
            metrics, "compact.local", proc=proc.name
        ) as out:
            for sb in sbs:
                code = extract_superblock_code(proc, sb, liveness)
                if optimize:
                    code.instructions = fold_constants(code.instructions)
                    code.instructions = local_value_number(code.instructions)
                    code.instructions = eliminate_dead_code(
                        code.instructions,
                        code.exit_live_by_index(),
                        set(),
                    )
                before_rename = len(code.instructions)
                rename_superblock(code, proc)
                movs = len(code.instructions) - before_rename
                compensation_movs += movs
                if tracer is not None:
                    movs_by_head[code.head] = movs
                if validation is not None and validation.check_renaming:
                    require(
                        "compact:renaming", check_renamed_code(code, arch_bound)
                    )
                codes.append(code)
            out["compensation_movs"] = compensation_movs
        if metrics is not None:
            metrics.add("compact.compensation_movs", compensation_movs)

        with tspan(tracer, "compact.preschedule", proc=proc.name), _stage(
            metrics, "compact.preschedule", proc=proc.name
        ):
            preschedules = [
                schedule_superblock(code, machine, weights=weights)
                for code in codes
            ]
        if validation is not None and validation.check_schedule:
            for presched in preschedules:
                require(
                    "compact:preschedule", check_schedule_legality(presched)
                )

        if allocate:
            snapshots = None
            if validation is not None and validation.check_allocation:
                snapshots = [AllocationSnapshot.capture(c) for c in codes]
            with tspan(tracer, "compact.allocate", proc=proc.name), _stage(
                metrics, "compact.allocate", proc=proc.name
            ):
                allocation = allocate_procedure(
                    proc.name,
                    proc.params,
                    codes,
                    preschedules,
                    machine,
                    arch_bound,
                )
            if tracer is not None:
                tracer.decision(
                    "spill",
                    proc=proc.name,
                    arch_spilled=allocation.stats.arch_spilled,
                    temps_spilled=allocation.stats.temps_spilled,
                    spill_instructions=allocation.stats.spill_instructions,
                )
            if metrics is not None:
                stats = allocation.stats
                metrics.add("compact.arch_spilled", stats.arch_spilled)
                metrics.add("compact.temps_spilled", stats.temps_spilled)
                metrics.add(
                    "compact.spill_instructions", stats.spill_instructions
                )
            if snapshots is not None:
                for code, snapshot in zip(codes, snapshots):
                    require(
                        "compact:allocation",
                        check_allocation_value_flow(
                            code,
                            snapshot,
                            allocation.arch_map,
                            allocation.arch_spilled,
                            machine.num_registers,
                        ),
                    )
            with tspan(tracer, "compact.postschedule", proc=proc.name), _stage(
                metrics, "compact.postschedule", proc=proc.name
            ):
                schedules = [
                    schedule_superblock(code, machine, weights=weights)
                    for code in codes
                ]
            if validation is not None and validation.check_schedule:
                for schedule in schedules:
                    require(
                        "compact:postschedule",
                        check_schedule_legality(schedule),
                    )
            params = allocation.params
            compiled.allocation_stats[proc.name] = allocation.stats
        else:
            schedules = preschedules
            params = proc.params

        if sched is not None and sched.pipeline:
            from .pipeline import try_pipeline_loop

            used_labels = {s.code.head for s in schedules}
            for code in codes:
                used_labels.update(code.labels)
            pipelined = []
            final: List[SuperblockSchedule] = []
            with tspan(tracer, "compact.pipeline", proc=proc.name), _stage(
                metrics, "compact.pipeline", proc=proc.name
            ):
                for code, schedule in zip(codes, schedules):
                    loop = try_pipeline_loop(
                        code, schedule, machine, sched, used_labels
                    )
                    if loop is None:
                        final.append(schedule)
                        continue
                    pipelined.append(loop)
                    used_labels.add(loop.kernel.code.head)
                    if loop.prologue is not None:
                        final.append(loop.prologue)
                    final.append(loop.kernel)
            schedules = final
            if validation is not None and validation.check_schedule:
                from ..validation.invariants import check_pipelined_loop

                for loop in pipelined:
                    require(
                        "compact:pipeline", check_pipelined_loop(loop)
                    )
            if tracer is not None:
                for loop in pipelined:
                    tracer.decision(
                        "pipeline",
                        proc=proc.name,
                        head=loop.code.head,
                        kernel=loop.kernel.code.head,
                        ii=loop.ii,
                        phase=loop.phase,
                        list_cycles=loop.list_length,
                    )
            if metrics is not None:
                metrics.add("compact.pipelined_loops", len(pipelined))
                metrics.add(
                    "compact.pipeline_cycles_saved",
                    sum(loop.list_length - loop.ii for loop in pipelined),
                )

        if tracer is not None:
            for schedule in schedules:
                tracer.decision(
                    "compact",
                    proc=proc.name,
                    head=schedule.code.head,
                    cycles=len(schedule.bundles),
                    ops=len(schedule.ops),
                    speculative=sum(
                        1 for op in schedule.ops if op.speculative
                    ),
                    compensation_movs=movs_by_head.get(
                        schedule.code.head, 0
                    ),
                )

        if metrics is not None:
            speculative = sum(
                1
                for schedule in schedules
                for op in schedule.ops
                if op.speculative
            )
            filled = sum(len(schedule.ops) for schedule in schedules)
            slots = machine.issue_width * sum(
                len(schedule.bundles) for schedule in schedules
            )
            metrics.add("compact.speculative_ops", speculative)
            metrics.add("compact.slots_filled", filled)
            metrics.add("compact.slots_total", slots)

        by_head = {
            schedule.code.head: schedule for schedule in schedules
        }
        compiled.procedures[proc.name] = CompiledProcedure(
            name=proc.name,
            params=tuple(params),
            schedules=by_head,
            entry_head=proc.entry_label,
        )
    return compiled
