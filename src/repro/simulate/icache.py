"""Instruction cache model (Section 3.2 of the paper).

A 32KB direct-mapped cache with 32-byte lines and a 6-cycle miss penalty —
the configuration used for Figures 5 and 6 and the gcc/go miss-rate
discussion.  The simulator probes it with the byte address of every fetched
instruction; code expansion from aggressive enlargement shows up here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass
class ICacheConfig:
    """Geometry and penalty of the instruction cache."""

    size_bytes: int = 32 * 1024
    line_bytes: int = 32
    miss_penalty: int = 6

    @property
    def num_lines(self) -> int:
        """Number of cache lines."""
        return self.size_bytes // self.line_bytes


class ICache:
    """Direct-mapped instruction cache with miss counting."""

    def __init__(self, config: Optional[ICacheConfig] = None) -> None:
        self.config = config or ICacheConfig()
        line = self.config.line_bytes
        size = self.config.size_bytes
        if not _is_pow2(line):
            raise ValueError(
                f"line size must be a positive power of two, got {line}"
            )
        if size <= 0 or size % line:
            raise ValueError(
                f"cache size must be a positive multiple of the"
                f" {line}-byte line size, got {size}"
            )
        if not _is_pow2(self.config.num_lines):
            raise ValueError(
                f"cache must have a power-of-two number of lines, got"
                f" {self.config.num_lines} ({size} / {line} bytes)"
            )
        self._tags = [None] * self.config.num_lines
        self.accesses = 0
        self.misses = 0

    def reset(self) -> None:
        """Invalidate the cache and clear statistics."""
        self._tags = [None] * self.config.num_lines
        self.accesses = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Probe one instruction fetch; returns True on a miss."""
        line = address // self.config.line_bytes
        index = line % self.config.num_lines
        self.accesses += 1
        if self._tags[index] != line:
            self._tags[index] = line
            self.misses += 1
            return True
        return False

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0.0 when never accessed)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses
