"""Instruction cache model (Section 3.2 of the paper).

A 32KB direct-mapped cache with 32-byte lines and a 6-cycle miss penalty —
the configuration used for Figures 5 and 6 and the gcc/go miss-rate
discussion.  The simulator probes it with the byte address of every fetched
instruction; code expansion from aggressive enlargement shows up here.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ICacheConfig:
    """Geometry and penalty of the instruction cache."""

    size_bytes: int = 32 * 1024
    line_bytes: int = 32
    miss_penalty: int = 6

    @property
    def num_lines(self) -> int:
        """Number of cache lines."""
        return self.size_bytes // self.line_bytes


class ICache:
    """Direct-mapped instruction cache with miss counting."""

    def __init__(self, config: ICacheConfig = None) -> None:
        self.config = config or ICacheConfig()
        if self.config.size_bytes % self.config.line_bytes:
            raise ValueError("cache size must be a multiple of the line size")
        self._tags = [None] * self.config.num_lines
        self.accesses = 0
        self.misses = 0

    def reset(self) -> None:
        """Invalidate the cache and clear statistics."""
        self._tags = [None] * self.config.num_lines
        self.accesses = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Probe one instruction fetch; returns True on a miss."""
        line = address // self.config.line_bytes
        index = line % self.config.num_lines
        self.accesses += 1
        if self._tags[index] != line:
            self._tags[index] = line
            self.misses += 1
            return True
        return False

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0.0 when never accessed)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses
