"""Cycle-level VLIW simulation with an instruction-cache model."""

from .icache import ICache, ICacheConfig
from .vliw_sim import (
    CycleLimitExceeded,
    SimulationError,
    SimulationResult,
    VLIWSimulator,
    simulate,
)

__all__ = [
    "CycleLimitExceeded",
    "ICache",
    "ICacheConfig",
    "SimulationError",
    "SimulationResult",
    "VLIWSimulator",
    "simulate",
]
