"""Cycle-level execution of compiled (scheduled) programs.

The simulator plays the role of the paper's compiled simulation (Section
3.2): it executes the VLIW schedules bundle by bundle, counting one cycle
per bundle plus instruction-cache miss penalties, with VLIW register
semantics (all reads happen before all writes within a cycle).  Speculative
operations — those the scheduler hoisted above a side exit — execute with
the machine's non-excepting semantics: a faulting speculative operation
produces 0 instead of trapping, exactly the trap-suppression trick the
paper's generated code plays on the real Alpha.

Besides cycles, the simulator gathers the dynamic superblock statistics of
Figure 7: how many (original) basic blocks execution covered per superblock
entry, against the superblock's size in blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..interp.ops import BINARY_EVAL, MachineFault, UNARY_EVAL
from ..ir.instructions import Instruction, Opcode
from ..layout.pettis_hansen import INSTRUCTION_BYTES, Layout
from ..scheduling.compactor import CompiledProcedure, CompiledProgram
from ..scheduling.list_scheduler import ScheduledOp, SuperblockSchedule
from .icache import ICache


class SimulationError(Exception):
    """Raised on malformed schedules or runaway executions."""


class CycleLimitExceeded(SimulationError):
    """The configured cycle budget was exhausted."""


@dataclass
class SimulationResult:
    """Outcome and statistics of one simulated run."""

    output: List[int]
    return_value: int
    cycles: int
    #: dynamic scheduled operations executed (speculative included)
    operations: int
    #: operations executed beyond a taken exit (wasted speculative work)
    wasted_operations: int
    branches: int
    calls: int
    #: dynamic superblock entries
    sb_entries: int
    #: sum over entries of original basic blocks executed before leaving
    blocks_executed: int
    #: sum over entries of the entered superblock's size in blocks
    sb_size_blocks: int
    #: instruction cache statistics (zero when no cache was simulated)
    icache_accesses: int = 0
    icache_misses: int = 0
    miss_penalty_cycles: int = 0

    @property
    def avg_blocks_per_entry(self) -> float:
        """Figure 7's gray bar: mean blocks executed per superblock entry."""
        if self.sb_entries == 0:
            return 0.0
        return self.blocks_executed / self.sb_entries

    @property
    def avg_superblock_size(self) -> float:
        """Figure 7's white bar: mean entered-superblock size in blocks."""
        if self.sb_entries == 0:
            return 0.0
        return self.sb_size_blocks / self.sb_entries

    @property
    def icache_miss_rate(self) -> float:
        """I-cache miss rate over the run."""
        if self.icache_accesses == 0:
            return 0.0
        return self.icache_misses / self.icache_accesses


class _Frame:
    __slots__ = (
        "cproc",
        "regs",
        "spill",
        "ret_dest",
        "schedule",
        "bundle_idx",
    )

    def __init__(
        self,
        cproc: CompiledProcedure,
        regs: Dict[int, int],
        ret_dest: Optional[int],
        schedule: SuperblockSchedule,
    ) -> None:
        self.cproc = cproc
        self.regs = regs
        self.spill: Dict[int, int] = {}
        self.ret_dest = ret_dest
        self.schedule = schedule
        self.bundle_idx = 0


class VLIWSimulator:
    """Executes a :class:`CompiledProgram`, optionally through an I-cache."""

    def __init__(
        self,
        compiled: CompiledProgram,
        icache: Optional[ICache] = None,
        layout: Optional[Layout] = None,
        cycle_limit: int = 100_000_000,
    ) -> None:
        if icache is not None and layout is None:
            raise SimulationError("an instruction cache needs a code layout")
        self.compiled = compiled
        self.icache = icache
        self.layout = layout
        self.cycle_limit = cycle_limit
        #: (proc, head) -> per-bundle fetch addresses
        self._bundle_addrs: Dict[Tuple[str, str], List[List[int]]] = {}
        #: (proc, head) -> instruction -> member block position
        self._block_pos: Dict[Tuple[str, str], Dict[Instruction, int]] = {}
        #: memoized wasted-op counts per (schedule id, exit op id)
        self._wasted_cache: Dict[Tuple[int, int], int] = {}
        self._prepare()

    def _prepare(self) -> None:
        for name, cproc in self.compiled.procedures.items():
            for head, schedule in cproc.schedules.items():
                key = (name, head)
                position = {
                    label: i for i, label in enumerate(schedule.code.labels)
                }
                self._block_pos[key] = {
                    instr: position[label]
                    for instr, label in schedule.code.block_of.items()
                    if label in position
                }
                if self.layout is not None:
                    base = self.layout.address_of(name, head)
                    addrs: List[List[int]] = []
                    seq = 0
                    for bundle in schedule.bundles:
                        row = []
                        for _ in bundle:
                            row.append(base + seq * INSTRUCTION_BYTES)
                            seq += 1
                        addrs.append(row)
                    self._bundle_addrs[key] = addrs

    # -- public API ---------------------------------------------------------

    def run(
        self, input_tape: Sequence[int] = (), args: Sequence[int] = ()
    ) -> SimulationResult:
        """Simulate the program on ``input_tape``; returns statistics."""
        compiled = self.compiled
        tape = list(input_tape)
        tape_pos = 0
        memory: Dict[int, int] = {}
        output: List[int] = []

        cycles = 0
        operations = 0
        wasted = 0
        branches = 0
        calls = 0
        sb_entries = 0
        blocks_executed = 0
        sb_size_blocks = 0
        miss_cycles = 0
        return_value = 0

        def enter_stats(schedule: SuperblockSchedule) -> None:
            nonlocal sb_entries, sb_size_blocks
            sb_entries += 1
            sb_size_blocks += len(schedule.code.labels)

        def make_frame(
            name: str, argv: Sequence[int], ret_dest: Optional[int]
        ) -> _Frame:
            cproc = compiled.procedures[name]
            if len(argv) != len(cproc.params):
                raise SimulationError(
                    f"{name} expects {len(cproc.params)} args, got {len(argv)}"
                )
            schedule = cproc.schedules[cproc.entry_head]
            enter_stats(schedule)
            return _Frame(cproc, dict(zip(cproc.params, argv)), ret_dest, schedule)

        stack: List[_Frame] = [
            make_frame(compiled.entry, list(args), None)
        ]

        while stack:
            frame = stack[-1]
            schedule = frame.schedule
            proc_name = frame.cproc.name
            key = (proc_name, schedule.code.head)
            bundles = schedule.bundles
            regs = frame.regs
            action: Optional[Tuple] = None

            while frame.bundle_idx < len(bundles):
                bundle = bundles[frame.bundle_idx]
                cycles += 1
                if cycles > self.cycle_limit:
                    raise CycleLimitExceeded(
                        f"exceeded {self.cycle_limit} cycles"
                    )
                if self.icache is not None:
                    for addr in self._bundle_addrs[key][frame.bundle_idx]:
                        if self.icache.access(addr):
                            penalty = self.icache.config.miss_penalty
                            cycles += penalty
                            miss_cycles += penalty
                operations += len(bundle)

                # ---- read phase --------------------------------------------
                reg_writes: List[Tuple[int, int]] = []
                mem_writes: List[Tuple[int, int]] = []
                spill_writes: List[Tuple[int, int]] = []
                prints: List[int] = []
                action = None
                for op in bundle:
                    instr = op.instr
                    opcode = instr.opcode
                    binop = BINARY_EVAL.get(opcode)
                    if binop is not None:
                        a, b = instr.srcs
                        try:
                            value = binop(regs[a], regs[b])
                        except MachineFault:
                            if not op.speculative:
                                raise
                            value = 0  # non-excepting variant
                        reg_writes.append((instr.dest, value))
                    elif opcode is Opcode.LI:
                        reg_writes.append((instr.dest, instr.imm))
                    elif opcode is Opcode.MOV:
                        reg_writes.append((instr.dest, regs[instr.srcs[0]]))
                    elif opcode in (Opcode.LOAD, Opcode.LOAD_S):
                        reg_writes.append(
                            (instr.dest, memory.get(regs[instr.srcs[0]], 0))
                        )
                    elif opcode is Opcode.STORE:
                        mem_writes.append(
                            (regs[instr.srcs[0]], regs[instr.srcs[1]])
                        )
                    elif opcode is Opcode.SPILL_LD:
                        reg_writes.append(
                            (instr.dest, frame.spill.get(instr.imm, 0))
                        )
                    elif opcode is Opcode.SPILL_ST:
                        spill_writes.append((instr.imm, regs[instr.srcs[0]]))
                    elif opcode is Opcode.READ:
                        if tape_pos < len(tape):
                            reg_writes.append((instr.dest, tape[tape_pos]))
                            tape_pos += 1
                        else:
                            reg_writes.append((instr.dest, -1))
                    elif opcode is Opcode.PRINT:
                        prints.append(regs[instr.srcs[0]])
                    elif opcode in UNARY_EVAL:
                        reg_writes.append(
                            (instr.dest, UNARY_EVAL[opcode](regs[instr.srcs[0]]))
                        )
                    elif opcode is Opcode.NOP:
                        pass
                    elif opcode is Opcode.BR:
                        branches += 1
                        target = instr.targets[0 if regs[instr.srcs[0]] else 1]
                        action = ("branch", op, target)
                    elif opcode is Opcode.MBR:
                        branches += 1
                        sel = regs[instr.srcs[0]]
                        if 0 <= sel < len(instr.targets) - 1:
                            target = instr.targets[sel]
                        else:
                            target = instr.targets[-1]
                        action = ("branch", op, target)
                    elif opcode is Opcode.JMP:
                        action = ("branch", op, instr.targets[0])
                    elif opcode is Opcode.CALL:
                        argv = [regs[s] for s in instr.srcs]
                        action = ("call", op, instr.callee, argv, instr.dest)
                    elif opcode is Opcode.RET:
                        value = regs[instr.srcs[0]] if instr.srcs else 0
                        action = ("ret", op, value)
                    else:  # pragma: no cover - exhaustive over Opcode
                        raise SimulationError(f"cannot simulate {opcode}")

                # ---- write phase -------------------------------------------
                for dest, value in reg_writes:
                    regs[dest] = value
                for addr, value in mem_writes:
                    memory[addr] = value
                for slot, value in spill_writes:
                    frame.spill[slot] = value
                output.extend(prints)

                frame.bundle_idx += 1
                if action is None:
                    continue

                kind = action[0]
                if kind == "branch":
                    op, target = action[1], action[2]
                    exit_info = schedule.code.exits.get(op.instr)
                    if (
                        exit_info is not None
                        and target == exit_info.on_trace_target
                    ):
                        continue  # stays inside the superblock
                    # Leaving the superblock.
                    blocks_executed += (
                        self._block_pos[key].get(op.instr, 0) + 1
                    )
                    wasted += self._wasted(schedule, op)
                    frame.schedule = frame.cproc.schedules[target]
                    frame.bundle_idx = 0
                    enter_stats(frame.schedule)
                    schedule = frame.schedule
                    key = (proc_name, schedule.code.head)
                    bundles = schedule.bundles
                elif kind == "call":
                    calls += 1
                    _, op, callee, argv, _dest = action
                    stack.append(make_frame(callee, argv, action[4]))
                    break
                elif kind == "ret":
                    op, value = action[1], action[2]
                    blocks_executed += (
                        self._block_pos[key].get(op.instr, 0) + 1
                    )
                    wasted += self._wasted(schedule, op)
                    stack.pop()
                    if stack:
                        caller = stack[-1]
                        if frame.ret_dest is not None:
                            caller.regs[frame.ret_dest] = value
                    else:
                        return_value = value
                    break
            else:
                raise SimulationError(
                    f"{proc_name}/{schedule.code.head}: fell off the end of"
                    f" the schedule"
                )

        return SimulationResult(
            output=output,
            return_value=return_value,
            cycles=cycles,
            operations=operations,
            wasted_operations=wasted,
            branches=branches,
            calls=calls,
            sb_entries=sb_entries,
            blocks_executed=blocks_executed,
            sb_size_blocks=sb_size_blocks,
            icache_accesses=self.icache.accesses if self.icache else 0,
            icache_misses=self.icache.misses if self.icache else 0,
            miss_penalty_cycles=miss_cycles,
        )


    def _wasted(
        self, schedule: SuperblockSchedule, exit_op: ScheduledOp
    ) -> int:
        key = (id(schedule), id(exit_op))
        cached = self._wasted_cache.get(key)
        if cached is None:
            cached = _wasted_ops(schedule, exit_op)
            self._wasted_cache[key] = cached
        return cached


def _wasted_ops(schedule: SuperblockSchedule, exit_op: ScheduledOp) -> int:
    """Operations already executed that follow ``exit_op`` in program order:
    the work thrown away by taking this exit."""
    count = 0
    for op in schedule.ops:
        if op.cycle <= exit_op.cycle and op.orig_index > exit_op.orig_index:
            count += 1
    return count


def simulate(
    compiled: CompiledProgram,
    input_tape: Sequence[int] = (),
    args: Sequence[int] = (),
    icache: Optional[ICache] = None,
    layout: Optional[Layout] = None,
    cycle_limit: int = 100_000_000,
) -> SimulationResult:
    """Convenience wrapper around :class:`VLIWSimulator`."""
    simulator = VLIWSimulator(
        compiled, icache=icache, layout=layout, cycle_limit=cycle_limit
    )
    return simulator.run(input_tape, args)
