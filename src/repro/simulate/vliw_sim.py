"""Cycle-level execution of compiled (scheduled) programs.

The simulator plays the role of the paper's compiled simulation (Section
3.2): it executes the VLIW schedules bundle by bundle, counting one cycle
per bundle plus instruction-cache miss penalties, with VLIW register
semantics (all reads happen before all writes within a cycle).  Speculative
operations — those the scheduler hoisted above a side exit — execute with
the machine's non-excepting semantics: a faulting speculative operation
produces 0 instead of trapping, exactly the trap-suppression trick the
paper's generated code plays on the real Alpha.

Besides cycles, the simulator gathers the dynamic superblock statistics of
Figure 7: how many (original) basic blocks execution covered per superblock
entry, against the superblock's size in blocks.

Schedules are *pre-decoded* on first entry: each bundle becomes a list of
flat dispatch tuples carrying the evaluation function, operand registers,
speculation flag, and (for control operations) the resolved on-trace target
and member-block position, so the per-operation ``Opcode`` ladder, the
:data:`BINARY_EVAL` probe, and the exit-table lookups all leave the inner
loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..interp.ops import BINARY_EVAL, MachineFault, UNARY_EVAL
from ..ir.instructions import Instruction, Opcode
from ..layout.pettis_hansen import INSTRUCTION_BYTES, Layout
from ..scheduling.compactor import CompiledProcedure, CompiledProgram
from ..scheduling.list_scheduler import ScheduledOp, SuperblockSchedule
from .icache import ICache


class SimulationError(Exception):
    """Raised on malformed schedules or runaway executions."""


class CycleLimitExceeded(SimulationError):
    """The configured cycle budget was exhausted."""


@dataclass
class SimulationResult:
    """Outcome and statistics of one simulated run."""

    output: List[int]
    return_value: int
    cycles: int
    #: dynamic scheduled operations executed (speculative included)
    operations: int
    #: operations executed beyond a taken exit (wasted speculative work)
    wasted_operations: int
    branches: int
    calls: int
    #: dynamic superblock entries
    sb_entries: int
    #: sum over entries of original basic blocks executed before leaving
    blocks_executed: int
    #: sum over entries of the entered superblock's size in blocks
    sb_size_blocks: int
    #: instruction cache statistics (zero when no cache was simulated)
    icache_accesses: int = 0
    icache_misses: int = 0
    miss_penalty_cycles: int = 0

    @property
    def avg_blocks_per_entry(self) -> float:
        """Figure 7's gray bar: mean blocks executed per superblock entry."""
        if self.sb_entries == 0:
            return 0.0
        return self.blocks_executed / self.sb_entries

    @property
    def avg_superblock_size(self) -> float:
        """Figure 7's white bar: mean entered-superblock size in blocks."""
        if self.sb_entries == 0:
            return 0.0
        return self.sb_size_blocks / self.sb_entries

    @property
    def icache_miss_rate(self) -> float:
        """I-cache miss rate over the run."""
        if self.icache_accesses == 0:
            return 0.0
        return self.icache_misses / self.icache_accesses


class _Frame:
    __slots__ = (
        "cproc",
        "regs",
        "spill",
        "ret_dest",
        "schedule",
        "bundle_idx",
    )

    def __init__(
        self,
        cproc: CompiledProcedure,
        regs: Dict[int, int],
        ret_dest: Optional[int],
        schedule: SuperblockSchedule,
    ) -> None:
        self.cproc = cproc
        self.regs = regs
        self.spill: Dict[int, int] = {}
        self.ret_dest = ret_dest
        self.schedule = schedule
        self.bundle_idx = 0


# Decoded-operation kind codes (small-int dispatch, as in the interpreter).
_K_BINOP = 0
_K_LI = 1
_K_MOV = 2
_K_LOAD = 3
_K_STORE = 4
_K_SPILL_LD = 5
_K_SPILL_ST = 6
_K_READ = 7
_K_PRINT = 8
_K_NOP = 9
_K_UNOP = 10
_K_BR = 11
_K_MBR = 12
_K_JMP = 13
_K_CALL = 14
_K_RET = 15


def _decode_schedule(
    schedule: SuperblockSchedule, block_pos: Dict[Instruction, int]
) -> List[List[tuple]]:
    """Translate one superblock schedule into per-bundle dispatch tuples.

    Control tuples carry the originating :class:`ScheduledOp` (for the
    wasted-work computation), the pre-resolved on-trace target, and the
    1-based member-block position charged to Figure 7 when the exit leaves
    the superblock.
    """
    exits = schedule.code.exits
    decoded: List[List[tuple]] = []
    for bundle in schedule.bundles:
        row: List[tuple] = []
        for op in bundle:
            instr = op.instr
            opcode = instr.opcode
            binop = BINARY_EVAL.get(opcode)
            exit_info = exits.get(instr)
            on_trace = (
                exit_info.on_trace_target if exit_info is not None else None
            )
            pos1 = block_pos.get(instr, 0) + 1
            if binop is not None:
                a, b = instr.srcs
                row.append(
                    (_K_BINOP, binop, instr.dest, a, b, op.speculative)
                )
            elif opcode is Opcode.LI:
                row.append((_K_LI, instr.dest, instr.imm))
            elif opcode is Opcode.MOV:
                row.append((_K_MOV, instr.dest, instr.srcs[0]))
            elif opcode in (Opcode.LOAD, Opcode.LOAD_S):
                row.append((_K_LOAD, instr.dest, instr.srcs[0]))
            elif opcode is Opcode.STORE:
                row.append((_K_STORE, instr.srcs[0], instr.srcs[1]))
            elif opcode is Opcode.SPILL_LD:
                row.append((_K_SPILL_LD, instr.dest, instr.imm))
            elif opcode is Opcode.SPILL_ST:
                row.append((_K_SPILL_ST, instr.imm, instr.srcs[0]))
            elif opcode is Opcode.READ:
                row.append((_K_READ, instr.dest))
            elif opcode is Opcode.PRINT:
                row.append((_K_PRINT, instr.srcs[0]))
            elif opcode in UNARY_EVAL:
                row.append(
                    (_K_UNOP, UNARY_EVAL[opcode], instr.dest, instr.srcs[0])
                )
            elif opcode is Opcode.NOP:
                row.append((_K_NOP,))
            elif opcode is Opcode.BR:
                row.append(
                    (
                        _K_BR,
                        instr.srcs[0],
                        instr.targets[0],
                        instr.targets[1],
                        op,
                        on_trace,
                        pos1,
                    )
                )
            elif opcode is Opcode.MBR:
                row.append(
                    (
                        _K_MBR,
                        instr.srcs[0],
                        tuple(instr.targets),
                        op,
                        on_trace,
                        pos1,
                    )
                )
            elif opcode is Opcode.JMP:
                row.append(
                    (_K_JMP, instr.targets[0], op, on_trace, pos1)
                )
            elif opcode is Opcode.CALL:
                row.append(
                    (_K_CALL, instr.callee, tuple(instr.srcs), instr.dest)
                )
            elif opcode is Opcode.RET:
                row.append(
                    (
                        _K_RET,
                        instr.srcs[0] if instr.srcs else None,
                        op,
                        pos1,
                    )
                )
            else:  # pragma: no cover - exhaustive over Opcode
                raise SimulationError(f"cannot simulate {opcode}")
        decoded.append(row)
    return decoded


class VLIWSimulator:
    """Executes a :class:`CompiledProgram`, optionally through an I-cache."""

    def __init__(
        self,
        compiled: CompiledProgram,
        icache: Optional[ICache] = None,
        layout: Optional[Layout] = None,
        cycle_limit: int = 100_000_000,
        tracer=None,
        jit: Optional[bool] = None,
    ) -> None:
        if icache is not None and layout is None:
            raise SimulationError("an instruction cache needs a code layout")
        self.compiled = compiled
        self.icache = icache
        self.layout = layout
        self.cycle_limit = cycle_limit
        #: optional repro.trace.Tracer collecting exit-cycle histograms
        self.tracer = tracer
        #: ``True``/``False`` forces the template JIT on or off for this
        #: instance; ``None`` defers to :func:`repro.jit.jit_enabled` (the
        #: ``REPRO_JIT`` env toggle / ``--no-jit``).  The JIT only covers
        #: plain runs: an instruction cache or exit tracer always selects
        #: the reference loop, which observes every bundle.
        self.jit = jit
        #: (proc, head) -> per-bundle fetch addresses
        self._bundle_addrs: Dict[Tuple[str, str], List[List[int]]] = {}
        #: (proc, head) -> instruction -> member block position
        self._block_pos: Dict[Tuple[str, str], Dict[Instruction, int]] = {}
        #: (proc, head) -> decoded bundles (built lazily on first entry)
        self._decoded: Dict[Tuple[str, str], List[List[tuple]]] = {}
        #: memoized wasted-op counts per (schedule id, exit op id)
        self._wasted_cache: Dict[Tuple[int, int], int] = {}
        self._prepare()

    def _prepare(self) -> None:
        for name, cproc in self.compiled.procedures.items():
            for head, schedule in cproc.schedules.items():
                key = (name, head)
                position = {
                    label: i for i, label in enumerate(schedule.code.labels)
                }
                self._block_pos[key] = {
                    instr: position[label]
                    for instr, label in schedule.code.block_of.items()
                    if label in position
                }
                if self.layout is not None:
                    base = self.layout.address_of(name, head)
                    addrs: List[List[int]] = []
                    seq = 0
                    for bundle in schedule.bundles:
                        row = []
                        for _ in bundle:
                            row.append(base + seq * INSTRUCTION_BYTES)
                            seq += 1
                        addrs.append(row)
                    self._bundle_addrs[key] = addrs

    def _decoded_bundles(
        self, key: Tuple[str, str], schedule: SuperblockSchedule
    ) -> List[List[tuple]]:
        decoded = self._decoded.get(key)
        if decoded is None:
            decoded = self._decoded[key] = _decode_schedule(
                schedule, self._block_pos[key]
            )
        return decoded

    def _use_jit(self) -> bool:
        if self.icache is not None or self.tracer is not None:
            return False
        if self.jit is not None:
            return self.jit
        from ..jit import jit_enabled

        return jit_enabled()

    # -- public API ---------------------------------------------------------

    def run(
        self, input_tape: Sequence[int] = (), args: Sequence[int] = ()
    ) -> SimulationResult:
        """Simulate the program on ``input_tape``; returns statistics."""
        if self._use_jit():
            from ..jit.vliw_jit import run_vliw_jit

            return run_vliw_jit(
                self.compiled, input_tape, args, self.cycle_limit
            )
        compiled = self.compiled
        icache = self.icache
        tape = list(input_tape)
        tape_pos = 0
        tape_len = len(tape)
        memory: Dict[int, int] = {}
        output: List[int] = []

        cycles = 0
        operations = 0
        wasted = 0
        branches = 0
        calls = 0
        sb_entries = 0
        blocks_executed = 0
        sb_size_blocks = 0
        miss_cycles = 0
        return_value = 0
        cycle_limit = self.cycle_limit
        tracer = self.tracer

        def enter_stats(schedule: SuperblockSchedule) -> None:
            nonlocal sb_entries, sb_size_blocks
            sb_entries += 1
            sb_size_blocks += len(schedule.code.labels)

        def make_frame(
            name: str, argv: Sequence[int], ret_dest: Optional[int]
        ) -> _Frame:
            cproc = compiled.procedures[name]
            if len(argv) != len(cproc.params):
                raise SimulationError(
                    f"{name} expects {len(cproc.params)} args, got {len(argv)}"
                )
            schedule = cproc.schedules[cproc.entry_head]
            enter_stats(schedule)
            return _Frame(cproc, dict(zip(cproc.params, argv)), ret_dest, schedule)

        stack: List[_Frame] = [
            make_frame(compiled.entry, list(args), None)
        ]

        while stack:
            frame = stack[-1]
            schedule = frame.schedule
            proc_name = frame.cproc.name
            key = (proc_name, schedule.code.head)
            bundles = self._decoded_bundles(key, schedule)
            n_bundles = len(bundles)
            regs = frame.regs
            spill = frame.spill
            action: Optional[tuple] = None

            while frame.bundle_idx < n_bundles:
                bundle = bundles[frame.bundle_idx]
                cycles += 1
                if cycles > cycle_limit:
                    raise CycleLimitExceeded(
                        f"exceeded {cycle_limit} cycles"
                    )
                if icache is not None:
                    for addr in self._bundle_addrs[key][frame.bundle_idx]:
                        if icache.access(addr):
                            penalty = icache.config.miss_penalty
                            cycles += penalty
                            miss_cycles += penalty
                operations += len(bundle)

                # ---- read phase --------------------------------------------
                reg_writes: List[Tuple[int, int]] = []
                mem_writes = None
                spill_writes = None
                prints = None
                action = None
                for d in bundle:
                    k = d[0]
                    if k == 0:  # _K_BINOP
                        try:
                            value = d[1](regs[d[3]], regs[d[4]])
                        except MachineFault:
                            if not d[5]:
                                raise
                            value = 0  # non-excepting variant
                        reg_writes.append((d[2], value))
                    elif k == 1:  # _K_LI
                        reg_writes.append((d[1], d[2]))
                    elif k == 2:  # _K_MOV
                        reg_writes.append((d[1], regs[d[2]]))
                    elif k == 3:  # _K_LOAD
                        reg_writes.append((d[1], memory.get(regs[d[2]], 0)))
                    elif k == 4:  # _K_STORE
                        if mem_writes is None:
                            mem_writes = []
                        mem_writes.append((regs[d[1]], regs[d[2]]))
                    elif k == 5:  # _K_SPILL_LD
                        reg_writes.append((d[1], spill.get(d[2], 0)))
                    elif k == 6:  # _K_SPILL_ST
                        if spill_writes is None:
                            spill_writes = []
                        spill_writes.append((d[1], regs[d[2]]))
                    elif k == 7:  # _K_READ
                        if tape_pos < tape_len:
                            reg_writes.append((d[1], tape[tape_pos]))
                            tape_pos += 1
                        else:
                            reg_writes.append((d[1], -1))
                    elif k == 8:  # _K_PRINT
                        if prints is None:
                            prints = []
                        prints.append(regs[d[1]])
                    elif k == 10:  # _K_UNOP
                        reg_writes.append((d[2], d[1](regs[d[3]])))
                    elif k == 9:  # _K_NOP
                        pass
                    elif k == 11:  # _K_BR
                        branches += 1
                        target = d[2] if regs[d[1]] else d[3]
                        action = (1, target, d[4], d[5], d[6])
                    elif k == 12:  # _K_MBR
                        branches += 1
                        targets = d[2]
                        sel = regs[d[1]]
                        if 0 <= sel < len(targets) - 1:
                            target = targets[sel]
                        else:
                            target = targets[-1]
                        action = (1, target, d[3], d[4], d[5])
                    elif k == 13:  # _K_JMP
                        action = (1, d[1], d[2], d[3], d[4])
                    elif k == 14:  # _K_CALL
                        argv = [regs[s] for s in d[2]]
                        action = (2, d[1], argv, d[3])
                    else:  # _K_RET
                        value = regs[d[1]] if d[1] is not None else 0
                        action = (3, value, d[2], d[3])

                # ---- write phase -------------------------------------------
                for dest, value in reg_writes:
                    regs[dest] = value
                if mem_writes is not None:
                    for addr, value in mem_writes:
                        memory[addr] = value
                if spill_writes is not None:
                    for slot, value in spill_writes:
                        spill[slot] = value
                if prints is not None:
                    output.extend(prints)

                frame.bundle_idx += 1
                if action is None:
                    continue

                kind = action[0]
                if kind == 1:  # branch / jump
                    target = action[1]
                    if target == action[3]:
                        continue  # stays inside the superblock
                    # Leaving the superblock.
                    blocks_executed += action[4]
                    wasted += self._wasted(schedule, action[2])
                    if tracer is not None:
                        tracer.exit_cycle(
                            proc_name, schedule.code.head, action[2].cycle
                        )
                    frame.schedule = frame.cproc.schedules[target]
                    frame.bundle_idx = 0
                    enter_stats(frame.schedule)
                    schedule = frame.schedule
                    key = (proc_name, schedule.code.head)
                    bundles = self._decoded_bundles(key, schedule)
                    n_bundles = len(bundles)
                elif kind == 2:  # call
                    calls += 1
                    stack.append(make_frame(action[1], action[2], action[3]))
                    break
                else:  # return
                    value = action[1]
                    blocks_executed += action[3]
                    wasted += self._wasted(schedule, action[2])
                    if tracer is not None:
                        tracer.exit_cycle(
                            proc_name, schedule.code.head, action[2].cycle
                        )
                    stack.pop()
                    if stack:
                        caller = stack[-1]
                        if frame.ret_dest is not None:
                            caller.regs[frame.ret_dest] = value
                    else:
                        return_value = value
                    break
            else:
                raise SimulationError(
                    f"{proc_name}/{schedule.code.head}: fell off the end of"
                    f" the schedule"
                )

        return SimulationResult(
            output=output,
            return_value=return_value,
            cycles=cycles,
            operations=operations,
            wasted_operations=wasted,
            branches=branches,
            calls=calls,
            sb_entries=sb_entries,
            blocks_executed=blocks_executed,
            sb_size_blocks=sb_size_blocks,
            icache_accesses=self.icache.accesses if self.icache else 0,
            icache_misses=self.icache.misses if self.icache else 0,
            miss_penalty_cycles=miss_cycles,
        )

    def _wasted(
        self, schedule: SuperblockSchedule, exit_op: ScheduledOp
    ) -> int:
        key = (id(schedule), id(exit_op))
        cached = self._wasted_cache.get(key)
        if cached is None:
            cached = _wasted_ops(schedule, exit_op)
            self._wasted_cache[key] = cached
        return cached


def _wasted_ops(schedule: SuperblockSchedule, exit_op: ScheduledOp) -> int:
    """Operations already executed that follow ``exit_op`` in program order:
    the work thrown away by taking this exit."""
    count = 0
    for op in schedule.ops:
        if op.cycle <= exit_op.cycle and op.orig_index > exit_op.orig_index:
            count += 1
    return count


def simulate(
    compiled: CompiledProgram,
    input_tape: Sequence[int] = (),
    args: Sequence[int] = (),
    icache: Optional[ICache] = None,
    layout: Optional[Layout] = None,
    cycle_limit: int = 100_000_000,
    tracer=None,
    jit: Optional[bool] = None,
) -> SimulationResult:
    """Convenience wrapper around :class:`VLIWSimulator`."""
    simulator = VLIWSimulator(
        compiled,
        icache=icache,
        layout=layout,
        cycle_limit=cycle_limit,
        tracer=tracer,
        jit=jit,
    )
    return simulator.run(input_tape, args)
