"""Edge (point) profiling.

An edge profile independently aggregates the execution count of every CFG
edge.  It is the information the classical mutual-most-likely trace selector
and the IMPACT-style enlargement heuristics consume — and, as Figure 1 of the
paper shows, it can only bound (not determine) the frequency with which a
multi-block trace executes to completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..ir.cfg import Edge, Program
from ..interp.interpreter import ExecutionObserver
from ..interp.trace import ExecutionTrace


@dataclass
class EdgeProfile:
    """Finalized per-procedure edge and block counts."""

    #: proc name -> (src, dst) -> count
    edges: Dict[str, Dict[Edge, int]] = field(default_factory=dict)
    #: proc name -> label -> count
    blocks: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: proc name -> number of activations
    entries: Dict[str, int] = field(default_factory=dict)

    def edge_count(self, proc: str, src: str, dst: str) -> int:
        """Dynamic traversal count of edge ``src -> dst``."""
        return self.edges.get(proc, {}).get((src, dst), 0)

    def block_count(self, proc: str, label: str) -> int:
        """Dynamic execution count of block ``label``."""
        return self.blocks.get(proc, {}).get(label, 0)

    def entry_count(self, proc: str) -> int:
        """Number of activations of procedure ``proc``."""
        return self.entries.get(proc, 0)

    def successors_by_count(
        self, proc: str, label: str
    ) -> List[Tuple[str, int]]:
        """Successor labels of ``label`` with counts, most frequent first."""
        items = [
            (dst, count)
            for (src, dst), count in self.edges.get(proc, {}).items()
            if src == label
        ]
        items.sort(key=lambda kv: (-kv[1], kv[0]))
        return items

    def predecessors_by_count(
        self, proc: str, label: str
    ) -> List[Tuple[str, int]]:
        """Predecessor labels of ``label`` with counts, most frequent first."""
        items = [
            (src, count)
            for (src, dst), count in self.edges.get(proc, {}).items()
            if dst == label
        ]
        items.sort(key=lambda kv: (-kv[1], kv[0]))
        return items

    def most_likely_successor(
        self, proc: str, label: str
    ) -> Optional[Tuple[str, int]]:
        """The successor with the highest edge count, or ``None``."""
        ranked = self.successors_by_count(proc, label)
        return ranked[0] if ranked else None

    def most_likely_predecessor(
        self, proc: str, label: str
    ) -> Optional[Tuple[str, int]]:
        """The predecessor with the highest edge count, or ``None``."""
        ranked = self.predecessors_by_count(proc, label)
        return ranked[0] if ranked else None

    def branch_probability(self, proc: str, src: str, dst: str) -> float:
        """Fraction of ``src`` executions that left along ``src -> dst``."""
        total = sum(c for _, c in self.successors_by_count(proc, src))
        if total == 0:
            return 0.0
        return self.edge_count(proc, src, dst) / total

    def blocks_by_count(self, proc: str) -> List[Tuple[str, int]]:
        """Blocks of ``proc`` ranked by execution count (descending)."""
        items = list(self.blocks.get(proc, {}).items())
        items.sort(key=lambda kv: (-kv[1], kv[0]))
        return items

    def total_edges(self) -> int:
        """Total dynamic edges observed across the program."""
        return sum(
            count
            for per_proc in self.edges.values()
            for count in per_proc.values()
        )


class EdgeProfiler(ExecutionObserver):
    """Observer that accumulates an :class:`EdgeProfile` during execution.

    Frames are tracked independently so recursion does not fuse the edge
    streams of distinct activations.
    """

    def __init__(self) -> None:
        self._last: Dict[int, Tuple[str, str]] = {}
        self._edges: Dict[str, Dict[Edge, int]] = {}
        self._blocks: Dict[str, Dict[str, int]] = {}
        self._entries: Dict[str, int] = {}

    def enter_procedure(self, proc_name: str, frame_id: int) -> None:
        self._entries[proc_name] = self._entries.get(proc_name, 0) + 1

    def exit_procedure(self, proc_name: str, frame_id: int) -> None:
        self._last.pop(frame_id, None)

    def block_executed(self, proc_name: str, frame_id: int, label: str) -> None:
        blocks = self._blocks.setdefault(proc_name, {})
        blocks[label] = blocks.get(label, 0) + 1
        prev = self._last.get(frame_id)
        if prev is not None and prev[0] == proc_name:
            edges = self._edges.setdefault(proc_name, {})
            key = (prev[1], label)
            edges[key] = edges.get(key, 0) + 1
        self._last[frame_id] = (proc_name, label)

    def finalize(self) -> EdgeProfile:
        """Produce the immutable profile."""
        return EdgeProfile(
            edges={p: dict(e) for p, e in self._edges.items()},
            blocks={p: dict(b) for p, b in self._blocks.items()},
            entries=dict(self._entries),
        )


def edge_profile_from_trace(trace: ExecutionTrace) -> EdgeProfile:
    """Batch pass: derive an :class:`EdgeProfile` from a recorded trace.

    Produces results identical to running an :class:`EdgeProfiler` observer
    during execution.  The inner loop works entirely on interned block ids
    — integer-keyed dicts, ``(src, dst)`` tuples of ints — and labels are
    rematerialized only once per distinct block/edge at the end, so the
    cost per dynamic block is two dict operations with no Python call
    overhead.
    """
    nprocs = len(trace.proc_names)
    entries = [0] * nprocs
    block_counts: List[Dict[int, int]] = [{} for _ in range(nprocs)]
    edge_counts: List[Dict[Tuple[int, int], int]] = [{} for _ in range(nprocs)]

    for pidx, buf in trace.frames:
        entries[pidx] += 1
        bc = block_counts[pidx]
        ec = edge_counts[pidx]
        prev = -1
        for lid in buf.tolist() if hasattr(buf, "tolist") else buf:
            bc[lid] = bc.get(lid, 0) + 1
            if prev >= 0:
                key = (prev, lid)
                ec[key] = ec.get(key, 0) + 1
            prev = lid

    edges: Dict[str, Dict[Edge, int]] = {}
    blocks: Dict[str, Dict[str, int]] = {}
    out_entries: Dict[str, int] = {}
    for pidx, name in enumerate(trace.proc_names):
        table = trace.labels[pidx]
        if entries[pidx]:
            out_entries[name] = entries[pidx]
        if block_counts[pidx]:
            blocks[name] = {
                table[lid]: count for lid, count in block_counts[pidx].items()
            }
        if edge_counts[pidx]:
            edges[name] = {
                (table[src], table[dst]): count
                for (src, dst), count in edge_counts[pidx].items()
            }
    return EdgeProfile(edges=edges, blocks=blocks, entries=out_entries)
