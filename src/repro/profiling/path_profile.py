"""General path profiling (Section 2.2 and 3.1 of the paper).

A *general path* is any contiguous sequence of executed basic blocks holding
at most ``depth`` conditional or multiway branches (the paper uses a depth of
15).  Unlike Ball–Larus forward paths, general paths may cross back edges, so
they remain exact across loop iterations and capture correlation spanning
iterations.

Collection follows the paper's efficient algorithm: the profiler maintains
the *current path* — the maximal in-depth window ending at the most recently
executed block — as a node in a lazily built path graph.  Because the
successors of a path are exactly the CFG successors of its last block, each
node memoizes its successor nodes, and after warm-up every executed edge is
one dictionary lookup plus one counter increment: O(n_paths + n_edges) total
work, the same asymptotic overhead as edge profiling.

At finalization, each window's count is attributed to every *suffix* of the
window.  A dynamic occurrence of a path ``p`` ends at exactly one execution
step, and at that step ``p`` is a suffix of the current window; therefore the
suffix-sum table gives the exact number of dynamic occurrences of every path
within the profiling depth — the quantity ``f(t)`` the formation algorithms
of Figure 2 query.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple
from weakref import WeakKeyDictionary

from ..ir.cfg import Program
from ..interp.interpreter import ExecutionObserver
from ..interp.trace import ExecutionTrace
from .edge_profile import EdgeProfile

Path = Tuple[str, ...]

#: Profiling depth used throughout the paper: up to 15 branches per path.
DEFAULT_DEPTH = 15


@dataclass
class PathProfile:
    """Finalized path-frequency tables, queryable per procedure."""

    #: proc name -> path tuple -> exact dynamic occurrence count
    paths: Dict[str, Dict[Path, int]] = field(default_factory=dict)
    #: maximum number of branch blocks per recorded path
    depth: int = DEFAULT_DEPTH
    #: proc name -> label -> True when the block ends in a conditional or
    #: multiway branch (consumes path depth)
    branch_blocks: Dict[str, Set[str]] = field(default_factory=dict)

    def freq(self, proc: str, path: Sequence[str]) -> int:
        """Exact dynamic occurrence count of ``path`` (0 when never seen)."""
        return self.paths.get(proc, {}).get(tuple(path), 0)

    def block_count(self, proc: str, label: str) -> int:
        """Dynamic execution count of a single block."""
        return self.freq(proc, (label,))

    def blocks_by_count(self, proc: str) -> List[Tuple[str, int]]:
        """Blocks ranked by execution count (descending, label tiebreak)."""
        items = [
            (path[0], count)
            for path, count in self.paths.get(proc, {}).items()
            if len(path) == 1
        ]
        items.sort(key=lambda kv: (-kv[1], kv[0]))
        return items

    def _is_branch_block(self, proc: str, label: str) -> bool:
        return label in self.branch_blocks.get(proc, set())

    def in_depth_suffix(self, proc: str, path: Sequence[str]) -> Path:
        """The longest suffix of ``path`` within the profiling depth."""
        path = tuple(path)
        branches = sum(
            1 for label in path if self._is_branch_block(proc, label)
        )
        start = 0
        while branches > self.depth and start < len(path) - 1:
            if self._is_branch_block(proc, path[start]):
                branches -= 1
            start += 1
        return path[start:]

    def known_suffix(self, proc: str, path: Sequence[str]) -> Path:
        """The longest suffix of ``path`` with a recorded (nonzero) frequency.

        This realizes the paper's rule: *"we use the longest suffix of the
        superblock for which we have exact frequencies to choose the next
        block."*  Falls back to the final block alone.
        """
        suffix = self.in_depth_suffix(proc, path)
        while len(suffix) > 1 and self.freq(proc, suffix) == 0:
            suffix = suffix[1:]
        return suffix

    def successor_frequencies(
        self, proc: str, path: Sequence[str], successors: Iterable[str]
    ) -> Dict[str, int]:
        """``f(t . s)`` for each candidate successor ``s`` of trace ``t``.

        The trace is first reduced to its longest known suffix so the
        frequencies are exact within the profiling depth.
        """
        suffix = self.known_suffix(proc, path)
        return {
            succ: self.freq(proc, suffix + (succ,)) for succ in successors
        }

    def most_likely_path_successor(
        self, proc: str, path: Sequence[str], successors: Iterable[str]
    ) -> Optional[Tuple[str, int]]:
        """Figure 2's ``most_likely_path_successor``: the successor whose
        extension of the trace has the highest path frequency.

        Returns ``(label, frequency)``, or ``None`` when every extension has
        zero observed frequency (the paper's ``nil``).  Ties break toward the
        CFG successor order for determinism.
        """
        best: Optional[Tuple[str, int]] = None
        for succ, f in self.successor_frequencies(
            proc, path, successors
        ).items():
            if f > 0 and (best is None or f > best[1]):
                best = (succ, f)
        return best

    def completion_ratio(self, proc: str, path: Sequence[str]) -> float:
        """Fraction of entries at ``path[0]`` that execute ``path`` in full.

        For traces longer than the profiling depth the numerator uses the
        longest in-depth suffix, making the ratio an upper-bound estimate
        exactly as available to the paper's enlarger.
        """
        path = tuple(path)
        if not path:
            return 0.0
        head_count = self.freq(proc, path[:1])
        if head_count == 0:
            return 0.0
        suffix = self.in_depth_suffix(proc, path)
        return self.freq(proc, suffix) / head_count

    def to_edge_counts(self, proc: str) -> Dict[Tuple[str, str], int]:
        """Marginalize the path table to edge counts (length-2 paths).

        Used by invariant tests: path profiles are a superset of edge
        profiles (Section 2.2).
        """
        return {
            (path[0], path[1]): count
            for path, count in self.paths.get(proc, {}).items()
            if len(path) == 2
        }


class _PathNode:
    """A node of the lazily built path graph: one distinct window."""

    __slots__ = ("labels", "count", "succ", "branches")

    def __init__(self, labels: Path, branches: int) -> None:
        self.labels = labels
        self.branches = branches
        self.count = 0
        self.succ: Dict[str, "_PathNode"] = {}


class GeneralPathProfiler(ExecutionObserver):
    """Observer that collects a general path profile during execution.

    One sliding window is kept per active procedure frame, so recursive
    activations do not interleave their paths.  Windows do not cross
    procedure boundaries; a caller's window resumes unchanged after a call
    returns, mirroring the per-procedure CFG scope of the formation phase.
    """

    def __init__(self, program: Program, depth: int = DEFAULT_DEPTH) -> None:
        if depth < 1:
            raise ValueError("path profiling depth must be >= 1")
        self.depth = depth
        self._branch_blocks: Dict[str, Set[str]] = {}
        for proc in program.procedures():
            self._branch_blocks[proc.name] = {
                b.label for b in proc.blocks() if b.ends_in_branch
            }
        #: intern table: (proc, labels) -> node, so identical windows share
        #: one counter no matter how they were reached.
        self._nodes: Dict[Tuple[str, Path], _PathNode] = {}
        #: frame id -> (proc name, current node)
        self._current: Dict[int, Tuple[str, _PathNode]] = {}

    # -- window maintenance -------------------------------------------------

    def _intern(self, proc: str, labels: Path) -> _PathNode:
        key = (proc, labels)
        node = self._nodes.get(key)
        if node is None:
            branch_set = self._branch_blocks.get(proc, set())
            branches = sum(1 for lab in labels if lab in branch_set)
            node = _PathNode(labels, branches)
            self._nodes[key] = node
        return node

    def _extend(self, proc: str, node: _PathNode, label: str) -> _PathNode:
        nxt = node.succ.get(label)
        if nxt is None:
            labels = node.labels + (label,)
            branch_set = self._branch_blocks.get(proc, set())
            branches = node.branches + (1 if label in branch_set else 0)
            start = 0
            while branches > self.depth and start < len(labels) - 1:
                if labels[start] in branch_set:
                    branches -= 1
                start += 1
            nxt = self._intern(proc, labels[start:])
            node.succ[label] = nxt
        return nxt

    # -- observer hooks -------------------------------------------------------

    def enter_procedure(self, proc_name: str, frame_id: int) -> None:
        """New activation: its window starts empty (filled at first block)."""

    def exit_procedure(self, proc_name: str, frame_id: int) -> None:
        self._current.pop(frame_id, None)

    def block_executed(self, proc_name: str, frame_id: int, label: str) -> None:
        state = self._current.get(frame_id)
        if state is None or state[0] != proc_name:
            node = self._intern(proc_name, (label,))
        else:
            node = self._extend(proc_name, state[1], label)
        node.count += 1
        self._current[frame_id] = (proc_name, node)

    # -- finalization -----------------------------------------------------------

    def finalize(self) -> PathProfile:
        """Expand window counts into the exact suffix-frequency table."""
        tables: Dict[str, Dict[Path, int]] = {}
        for (proc, labels), node in self._nodes.items():
            if node.count == 0:
                continue
            table = tables.setdefault(proc, {})
            for start in range(len(labels)):
                suffix = labels[start:]
                table[suffix] = table.get(suffix, 0) + node.count
        return PathProfile(
            paths=tables,
            depth=self.depth,
            branch_blocks={p: set(s) for p, s in self._branch_blocks.items()},
        )

    @property
    def distinct_windows(self) -> int:
        """Number of distinct windows materialized (the paper's n_paths)."""
        return sum(1 for node in self._nodes.values() if node.count > 0)


# -- batch replay over encoded traces ----------------------------------------


class _IntPathNode:
    """A path-graph node over interned block ids (batch-replay twin of
    :class:`_PathNode`)."""

    __slots__ = ("labels", "branches", "count", "succ")

    def __init__(self, labels: Tuple[int, ...], branches: int) -> None:
        self.labels = labels
        self.branches = branches
        self.count = 0
        self.succ: Dict[int, "_IntPathNode"] = {}


#: Static CFG facts keyed weakly by program, so repeated trace replays
#: (multi-depth sweeps, benchmark rounds) do not re-derive them.
_BRANCH_LABEL_CACHE: "WeakKeyDictionary[Program, Dict[str, Set[str]]]" = (
    WeakKeyDictionary()
)


def branch_block_labels(program: Program) -> Dict[str, Set[str]]:
    """Per procedure: labels of blocks ending in a conditional/multiway
    branch (the blocks that consume path depth)."""
    labels = _BRANCH_LABEL_CACHE.get(program)
    if labels is None:
        labels = _BRANCH_LABEL_CACHE[program] = {
            proc.name: {b.label for b in proc.blocks() if b.ends_in_branch}
            for proc in program.procedures()
        }
    return labels


def _int_branch_sets(
    trace: ExecutionTrace, branch_labels: Dict[str, Set[str]]
) -> List[Set[int]]:
    """Interned-id image of ``branch_labels`` under the trace string table."""
    sets: List[Set[int]] = []
    for pidx, name in enumerate(trace.proc_names):
        labs = branch_labels.get(name, set())
        sets.append(
            {
                lid
                for lid, label in enumerate(trace.labels[pidx])
                if label in labs
            }
        )
    return sets


def _path_graph_from_trace(
    trace: ExecutionTrace,
    depth: int,
    branch_sets: List[Set[int]],
    reset_edges: Optional[List[Set[Tuple[int, int]]]] = None,
) -> List[Dict[Tuple[int, ...], _IntPathNode]]:
    """The shared batch inner loop: lazy path graph over interned ids.

    Runs the same lazy successor-pointer algorithm as the streaming
    profilers — one dict probe plus one counter increment per executed
    block after warm-up — but over ints, with no observer call overhead.
    ``reset_edges`` (per procedure index) chops the window at back edges,
    turning the general profile into a forward one.
    """
    nprocs = len(trace.proc_names)
    nodes_per_proc: List[Dict[Tuple[int, ...], _IntPathNode]] = [
        {} for _ in range(nprocs)
    ]

    for pidx, buf in trace.frames:
        nodes = nodes_per_proc[pidx]
        branch_set = branch_sets[pidx]
        resets = reset_edges[pidx] if reset_edges is not None else None
        node: Optional[_IntPathNode] = None
        # Two copies of the per-block body: the general walk (the hot
        # multi-depth replay path) skips the back-edge test entirely.
        if resets is None:
            for lid in buf.tolist():
                if node is None:
                    key = (lid,)
                    node = nodes.get(key)
                    if node is None:
                        node = nodes[key] = _IntPathNode(
                            key, 1 if lid in branch_set else 0
                        )
                else:
                    nxt = node.succ.get(lid)
                    if nxt is None:
                        nxt = _extend_node(
                            nodes, node, lid, branch_set, depth
                        )
                    node = nxt
                node.count += 1
            continue
        for lid in buf.tolist():
            if node is not None and (node.labels[-1], lid) in resets:
                # Crossing a back edge ends the forward path.
                node = None
            if node is None:
                key = (lid,)
                node = nodes.get(key)
                if node is None:
                    node = nodes[key] = _IntPathNode(
                        key, 1 if lid in branch_set else 0
                    )
            else:
                nxt = node.succ.get(lid)
                if nxt is None:
                    nxt = _extend_node(nodes, node, lid, branch_set, depth)
                node = nxt
            node.count += 1

    return nodes_per_proc


def _extend_node(
    nodes: Dict[Tuple[int, ...], _IntPathNode],
    node: _IntPathNode,
    lid: int,
    branch_set: Set[int],
    depth: int,
) -> _IntPathNode:
    """Cold path of the walk: intern ``node``'s successor under ``lid``."""
    labels = node.labels + (lid,)
    branches = node.branches + (1 if lid in branch_set else 0)
    start = 0
    while branches > depth and start < len(labels) - 1:
        if labels[start] in branch_set:
            branches -= 1
        start += 1
    key = labels[start:]
    nxt = nodes.get(key)
    if nxt is None:
        nxt = nodes[key] = _IntPathNode(key, branches)
    node.succ[lid] = nxt
    return nxt


def _tables_at_depth(
    trace: ExecutionTrace,
    nodes_per_proc: List[Dict[Tuple[int, ...], _IntPathNode]],
    branch_sets: List[Set[int]],
    depth: int,
) -> Dict[str, Dict[Path, int]]:
    """Suffix-expand a path graph into the table for ``depth``.

    The graph may have been walked at a *larger* depth D: the depth-d
    window at any execution step is the in-depth trim of the depth-D
    window at that step (trimming is monotone in depth, and the trim
    point depends only on the window's own labels), so trimming each
    node's key to ``depth`` before suffix expansion yields a table
    bit-identical to walking the trace again at ``depth``.  Cost per
    extra depth is O(distinct windows), not O(trace length).
    """
    tables: Dict[str, Dict[Path, int]] = {}
    for pidx in range(len(trace.proc_names)):
        nodes = nodes_per_proc[pidx]
        if not nodes:
            continue
        branch_set = branch_sets[pidx]
        int_table: Dict[Tuple[int, ...], int] = {}
        for key, node in nodes.items():
            count = node.count
            if count == 0:
                continue
            branches = node.branches
            start = 0
            klen = len(key)
            while branches > depth and start < klen - 1:
                if key[start] in branch_set:
                    branches -= 1
                start += 1
            for s in range(start, klen):
                suffix = key[s:]
                int_table[suffix] = int_table.get(suffix, 0) + count
        table = trace.labels[pidx]
        tables[trace.proc_names[pidx]] = {
            tuple(table[lid] for lid in path): count
            for path, count in int_table.items()
        }
    return tables


def _path_tables_from_trace(
    trace: ExecutionTrace,
    depth: int,
    branch_sets: List[Set[int]],
    reset_edges: Optional[List[Set[Tuple[int, int]]]] = None,
) -> Dict[str, Dict[Path, int]]:
    """Walk the trace at ``depth`` and suffix-expand: the one-depth case."""
    nodes_per_proc = _path_graph_from_trace(
        trace, depth, branch_sets, reset_edges=reset_edges
    )
    return _tables_at_depth(trace, nodes_per_proc, branch_sets, depth)


def _forward_node_entries(
    nodes: Dict[Tuple[int, ...], _IntPathNode],
    reset_set: Set[Tuple[int, int]],
    branch_set: Set[int],
) -> Dict[Tuple[int, ...], List[int]]:
    """Derive the forward-window multiset from the general node set.

    At every execution step, the forward window is a pure function of the
    general window ``w``: chop ``w`` after the last back-edge pair it
    contains (adjacency in a window is adjacency in the frame's stream).
    If the last reset happened at or before ``w``'s first block, the
    since-reset suffix and the full stream suffix share their tail, and
    trimming both to the same depth yields the same window — so the
    forward window is ``w`` itself.  No depth trim is needed after the
    chop: chopping only removes branches.  Summing general occurrence
    counts per image gives exact forward window counts without a second
    trace walk.

    Returns ``fkey -> [count, branches(fkey)]`` — the branch count falls
    out of the backward scan for free.
    """
    out: Dict[Tuple[int, ...], List[int]] = {}
    for key, node in nodes.items():
        count = node.count
        if count == 0:
            continue
        fkey = key
        fb = node.branches
        if reset_set:
            # Scan backwards: the chop point is the *last* reset pair.
            # The scan visits exactly the labels of the chopped window,
            # so its branch count accumulates along the way.
            fb = 0
            hit = False
            for i in range(len(key) - 2, -1, -1):
                nxt = key[i + 1]
                fb += nxt in branch_set
                if (key[i], nxt) in reset_set:
                    fkey = key[i + 1 :]
                    hit = True
                    break
            if not hit:
                fb += key[0] in branch_set
        entry = out.get(fkey)
        if entry is None:
            out[fkey] = [count, fb]
        else:
            entry[0] += count
    return out


def _assemble_tables(
    parts: List[Dict[Path, int]], depths_sorted: List[int]
) -> Dict[int, Dict[Path, int]]:
    """Assemble nested per-depth tables from per-depth-range partitions.

    ``table_d`` is ``table_D`` restricted to paths with at most ``d``
    branches, so the tables nest: walk the depths in ascending order,
    merging in the next range partition and snapshotting the accumulator
    per depth.  Every path was hashed exactly once when inserted into its
    partition — ``dict.update`` from a dict and ``dict.copy`` both reuse
    the stored hashes, so assembly is pure C-speed entry copying.
    """
    out: Dict[int, Dict[Path, int]] = {}
    accum = parts[0]
    last = depths_sorted[-1]
    for i, depth in enumerate(depths_sorted):
        if i:
            accum.update(parts[i])
        out[depth] = accum if depth == last else accum.copy()
    return out


def _sweep_tables(
    items: List[Tuple[Tuple[int, ...], Path, int, int, int]],
    str_branch_set: Set[str],
    nlabels: int,
    depths_sorted: List[int],
    want_forward: bool,
) -> Tuple[Dict[int, Dict[Path, int]], Optional[Dict[int, Dict[Path, int]]]]:
    """Suffix-sum window multisets into per-depth path tables.

    Each item is ``(window, window labels, general count, forward count,
    branches)``.  The distinct table paths are exactly the distinct
    suffixes of the windows, and a path's count is the sum over windows
    having it as a suffix.  Reversing every window turns suffixes into
    prefixes, and in any lexicographic order windows sharing a prefix are
    contiguous — so the suffix sums become a classic sorted-strings
    sweep: sort the byte-encoded reversed windows (C memcmp), compute
    neighbour LCPs by binary search (C slice compares), and maintain a
    stack of open prefix groups whose counts roll up into their parent
    when they close.  Each distinct path is emitted exactly once, as one
    C tuple slice of the source window's label tuple plus one dict
    insert; everything that is per-window rather than per-path costs
    O(window length) only inside C primitives.  Per-depth filtering is a
    bucket index per emission (occurrence counts are depth-independent
    for in-depth paths, because the depth-d window is the longest suffix
    with at most d branches and therefore contains every in-depth suffix
    of the depth-D window); :func:`_assemble_tables` then merges the
    partitions without rehashing anything.
    """
    typecode = "H" if nlabels <= 0xFFFF else "I"
    width = 2 if typecode == "H" else 4
    enc = [
        (array(typecode, key[::-1]).tobytes(), labs, g, f, br)
        for key, labs, g, f, br in items
    ]
    enc.sort()
    enc.append((b"", (), 0, 0, 0))  # sentinel: flushes the group stack
    top = depths_sorted[-1]
    #: branch count -> index of the smallest depth that includes it
    range_of = [0] * (top + 1)
    r = 0
    for b in range(top + 1):
        while b > depths_sorted[r]:
            r += 1
        range_of[b] = r
    nranges = len(depths_sorted)
    gparts: List[Dict[Path, int]] = [{} for _ in range(nranges)]
    fparts: List[Dict[Path, int]] = [{} for _ in range(nranges)]
    bset = str_branch_set
    #: open groups: [d_lo, d_hi, general, forward, labels, len, branches@d_hi]
    stack: List[list] = []
    push = stack.append
    pop = stack.pop
    prev = b""
    for rev, labs, g, f, br in enc:
        m = min(len(rev), len(prev))
        if prev[:m] == rev[:m]:
            lcp = m // width
        else:
            lo, hi = 0, m - 1
            while lo < hi:
                mid = (lo + hi + 1) >> 1
                if prev[:mid] == rev[:mid]:
                    lo = mid
                else:
                    hi = mid - 1
            lcp = lo // width
        while stack:
            grp = stack[-1]
            if grp[1] <= lcp:
                break
            d_lo, d, eg, ef, slabs, sl, bc = grp
            emit_from = lcp + 1 if d_lo <= lcp else d_lo
            while d >= emit_from:
                path = slabs[sl - d :]
                ri = range_of[bc]
                gparts[ri][path] = eg
                if ef:
                    fparts[ri][path] = ef
                bc -= slabs[sl - d] in bset
                d -= 1
            if d_lo <= lcp:
                # Split: the depths <= lcp stay open for upcoming items.
                grp[1] = lcp
                grp[6] = bc
                break
            pop()
            if stack:
                parent = stack[-1]
                parent[2] += eg
                parent[3] += ef
        if lcp * width < len(rev):
            klen = len(rev) // width
            push([lcp + 1, klen, g, f, labs, klen, br])
        prev = rev
    general = _assemble_tables(gparts, depths_sorted)
    forward = _assemble_tables(fparts, depths_sorted) if want_forward else None
    return general, forward


def _expand_nodes_multi(
    trace: ExecutionTrace,
    nodes_per_proc: List[Dict[Tuple[int, ...], _IntPathNode]],
    branch_sets: List[Set[int]],
    depths: Sequence[int],
    reset_edges: Optional[List[Set[Tuple[int, int]]]] = None,
) -> Dict[int, Dict[str, Dict[Path, int]]]:
    """Expand a top-depth *general* path graph into per-depth tables.

    With ``reset_edges`` given, the forward-window multiset is first
    derived from the general nodes (:func:`_forward_node_entries`) and the
    forward tables are expanded from that — the same walked graph serves
    both profile families.
    """
    depths_sorted = sorted(set(depths))
    out: Dict[int, Dict[str, Dict[Path, int]]] = {
        depth: {} for depth in depths
    }
    for pidx in range(len(trace.proc_names)):
        nodes = nodes_per_proc[pidx]
        if not nodes:
            continue
        ltable = trace.labels[pidx]
        lget = ltable.__getitem__
        int_bset = branch_sets[pidx]
        str_bset = {ltable[lid] for lid in int_bset}
        if reset_edges is not None:
            fentries = _forward_node_entries(
                nodes, reset_edges[pidx], int_bset
            )
            items = [
                (fkey, tuple(map(lget, fkey)), count, 0, fb)
                for fkey, (count, fb) in fentries.items()
            ]
        else:
            items = [
                (key, tuple(map(lget, key)), node.count, 0, node.branches)
                for key, node in nodes.items()
                if node.count
            ]
        expanded, _ = _sweep_tables(
            items, str_bset, len(ltable), depths_sorted, False
        )
        name = trace.proc_names[pidx]
        for depth, tables in expanded.items():
            if tables:
                out[depth][name] = tables
    return out


def _expand_nodes_dual(
    trace: ExecutionTrace,
    nodes_per_proc: List[Dict[Tuple[int, ...], _IntPathNode]],
    branch_sets: List[Set[int]],
    depths: Sequence[int],
    reset_edges: List[Set[Tuple[int, int]]],
) -> Tuple[
    Dict[int, Dict[str, Dict[Path, int]]],
    Dict[int, Dict[str, Dict[Path, int]]],
]:
    """General *and* forward per-depth tables from one shared sweep pass."""
    depths_sorted = sorted(set(depths))
    gout: Dict[int, Dict[str, Dict[Path, int]]] = {
        depth: {} for depth in depths
    }
    fout: Dict[int, Dict[str, Dict[Path, int]]] = {
        depth: {} for depth in depths
    }
    for pidx in range(len(trace.proc_names)):
        nodes = nodes_per_proc[pidx]
        if not nodes:
            continue
        ltable = trace.labels[pidx]
        lget = ltable.__getitem__
        int_bset = branch_sets[pidx]
        str_bset = {ltable[lid] for lid in int_bset}
        fentries = _forward_node_entries(nodes, reset_edges[pidx], int_bset)
        #: window -> [general count, forward count, branches]
        merged: Dict[Tuple[int, ...], list] = {}
        for key, node in nodes.items():
            count = node.count
            if count:
                merged[key] = [count, 0, node.branches]
        for fkey, (fcount, fb) in fentries.items():
            entry = merged.get(fkey)
            if entry is None:
                merged[fkey] = [0, fcount, fb]
            else:
                entry[1] = fcount
        items = [
            (key, tuple(map(lget, key)), g, f, br)
            for key, (g, f, br) in merged.items()
        ]
        general, forward = _sweep_tables(
            items, str_bset, len(ltable), depths_sorted, True
        )
        name = trace.proc_names[pidx]
        for depth, tables in general.items():
            if tables:
                gout[depth][name] = tables
        for depth, tables in forward.items():
            if tables:
                fout[depth][name] = tables
    return gout, fout


def _edge_profile_from_path_graph(
    trace: ExecutionTrace,
    nodes_per_proc: List[Dict[Tuple[int, ...], _IntPathNode]],
) -> EdgeProfile:
    """Derive the edge profile from a general path graph walked at depth
    >= 2, instead of re-walking the trace.

    Every trace step increments exactly one window node, and the step's
    block is the window's last label — so block counts are window-count
    sums grouped by last label.  At walk depth >= 2, extending a window
    always leaves at least its last two labels in place (a two-label
    suffix has at most two branches), so every arrival at a node with two
    or more labels is an extension step traversing the edge
    ``(key[-2], key[-1])``, and arrivals at single-label nodes are
    exactly the frame starts, which traverse no edge.  The sums run over
    the node set, which is orders of magnitude smaller than the trace.
    """
    nprocs = len(trace.proc_names)
    entries = [0] * nprocs
    for pidx, _buf in trace.frames:
        entries[pidx] += 1
    edges: Dict[str, Dict[Tuple[str, str], int]] = {}
    blocks: Dict[str, Dict[str, int]] = {}
    out_entries: Dict[str, int] = {}
    for pidx, name in enumerate(trace.proc_names):
        if entries[pidx]:
            out_entries[name] = entries[pidx]
        nodes = nodes_per_proc[pidx]
        if not nodes:
            continue
        table = trace.labels[pidx]
        bc: Dict[int, int] = {}
        ec: Dict[Tuple[int, int], int] = {}
        for key, node in nodes.items():
            count = node.count
            if not count:
                continue
            last = key[-1]
            bc[last] = bc.get(last, 0) + count
            if len(key) >= 2:
                ekey = (key[-2], last)
                ec[ekey] = ec.get(ekey, 0) + count
        if bc:
            blocks[name] = {table[lid]: c for lid, c in bc.items()}
        if ec:
            edges[name] = {
                (table[src], table[dst]): c for (src, dst), c in ec.items()
            }
    return EdgeProfile(edges=edges, blocks=blocks, entries=out_entries)


def _multi_depth_tables_from_trace(
    trace: ExecutionTrace,
    depths: Sequence[int],
    branch_sets: List[Set[int]],
    reset_edges: Optional[List[Set[Tuple[int, int]]]] = None,
) -> Dict[int, Dict[str, Dict[Path, int]]]:
    """Path tables for every depth in ``depths`` from ONE trace walk.

    The trace is walked *general* (no resets) at ``max(depths)``; the
    forward variant (``reset_edges`` given) is derived per node via
    :func:`_forward_node_counts` rather than walked again.  Suffix
    expansion and per-depth filtering happen in one trie pass.
    """
    nodes_per_proc = _path_graph_from_trace(trace, max(depths), branch_sets)
    return _expand_nodes_multi(
        trace, nodes_per_proc, branch_sets, depths, reset_edges
    )


def general_path_profiles_from_trace_multi(
    program: Program, trace: ExecutionTrace, depths: Sequence[int]
) -> Dict[int, PathProfile]:
    """Batch pass: general :class:`PathProfile` at every depth in ``depths``
    from a single walk of the trace.

    Each returned profile is bit-identical to
    :func:`general_path_profile_from_trace` at that depth (and hence to
    streaming collection); only the walk is shared.
    """
    if not depths:
        return {}
    if any(depth < 1 for depth in depths):
        raise ValueError("path profiling depth must be >= 1")
    branch_labels = branch_block_labels(program)
    branch_sets = _int_branch_sets(trace, branch_labels)
    per_depth = _multi_depth_tables_from_trace(trace, depths, branch_sets)
    return {
        depth: PathProfile(
            paths=tables,
            depth=depth,
            branch_blocks={p: set(s) for p, s in branch_labels.items()},
        )
        for depth, tables in per_depth.items()
    }


def general_path_profile_from_trace(
    program: Program, trace: ExecutionTrace, depth: int = DEFAULT_DEPTH
) -> PathProfile:
    """Batch pass: derive a general :class:`PathProfile` from a trace.

    Bit-identical to running a :class:`GeneralPathProfiler` observer during
    execution — same lazy path graph, same suffix-sum finalization — but
    decoupled from the interpreter, so one recorded trace can be replayed
    at any number of depths.
    """
    if depth < 1:
        raise ValueError("path profiling depth must be >= 1")
    branch_labels = branch_block_labels(program)
    branch_sets = _int_branch_sets(trace, branch_labels)
    tables = _path_tables_from_trace(trace, depth, branch_sets)
    return PathProfile(
        paths=tables,
        depth=depth,
        branch_blocks={p: set(s) for p, s in branch_labels.items()},
    )
