"""General path profiling (Section 2.2 and 3.1 of the paper).

A *general path* is any contiguous sequence of executed basic blocks holding
at most ``depth`` conditional or multiway branches (the paper uses a depth of
15).  Unlike Ball–Larus forward paths, general paths may cross back edges, so
they remain exact across loop iterations and capture correlation spanning
iterations.

Collection follows the paper's efficient algorithm: the profiler maintains
the *current path* — the maximal in-depth window ending at the most recently
executed block — as a node in a lazily built path graph.  Because the
successors of a path are exactly the CFG successors of its last block, each
node memoizes its successor nodes, and after warm-up every executed edge is
one dictionary lookup plus one counter increment: O(n_paths + n_edges) total
work, the same asymptotic overhead as edge profiling.

At finalization, each window's count is attributed to every *suffix* of the
window.  A dynamic occurrence of a path ``p`` ends at exactly one execution
step, and at that step ``p`` is a suffix of the current window; therefore the
suffix-sum table gives the exact number of dynamic occurrences of every path
within the profiling depth — the quantity ``f(t)`` the formation algorithms
of Figure 2 query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..ir.cfg import Program
from ..interp.interpreter import ExecutionObserver
from ..interp.trace import ExecutionTrace

Path = Tuple[str, ...]

#: Profiling depth used throughout the paper: up to 15 branches per path.
DEFAULT_DEPTH = 15


@dataclass
class PathProfile:
    """Finalized path-frequency tables, queryable per procedure."""

    #: proc name -> path tuple -> exact dynamic occurrence count
    paths: Dict[str, Dict[Path, int]] = field(default_factory=dict)
    #: maximum number of branch blocks per recorded path
    depth: int = DEFAULT_DEPTH
    #: proc name -> label -> True when the block ends in a conditional or
    #: multiway branch (consumes path depth)
    branch_blocks: Dict[str, Set[str]] = field(default_factory=dict)

    def freq(self, proc: str, path: Sequence[str]) -> int:
        """Exact dynamic occurrence count of ``path`` (0 when never seen)."""
        return self.paths.get(proc, {}).get(tuple(path), 0)

    def block_count(self, proc: str, label: str) -> int:
        """Dynamic execution count of a single block."""
        return self.freq(proc, (label,))

    def blocks_by_count(self, proc: str) -> List[Tuple[str, int]]:
        """Blocks ranked by execution count (descending, label tiebreak)."""
        items = [
            (path[0], count)
            for path, count in self.paths.get(proc, {}).items()
            if len(path) == 1
        ]
        items.sort(key=lambda kv: (-kv[1], kv[0]))
        return items

    def _is_branch_block(self, proc: str, label: str) -> bool:
        return label in self.branch_blocks.get(proc, set())

    def in_depth_suffix(self, proc: str, path: Sequence[str]) -> Path:
        """The longest suffix of ``path`` within the profiling depth."""
        path = tuple(path)
        branches = sum(
            1 for label in path if self._is_branch_block(proc, label)
        )
        start = 0
        while branches > self.depth and start < len(path) - 1:
            if self._is_branch_block(proc, path[start]):
                branches -= 1
            start += 1
        return path[start:]

    def known_suffix(self, proc: str, path: Sequence[str]) -> Path:
        """The longest suffix of ``path`` with a recorded (nonzero) frequency.

        This realizes the paper's rule: *"we use the longest suffix of the
        superblock for which we have exact frequencies to choose the next
        block."*  Falls back to the final block alone.
        """
        suffix = self.in_depth_suffix(proc, path)
        while len(suffix) > 1 and self.freq(proc, suffix) == 0:
            suffix = suffix[1:]
        return suffix

    def successor_frequencies(
        self, proc: str, path: Sequence[str], successors: Iterable[str]
    ) -> Dict[str, int]:
        """``f(t . s)`` for each candidate successor ``s`` of trace ``t``.

        The trace is first reduced to its longest known suffix so the
        frequencies are exact within the profiling depth.
        """
        suffix = self.known_suffix(proc, path)
        return {
            succ: self.freq(proc, suffix + (succ,)) for succ in successors
        }

    def most_likely_path_successor(
        self, proc: str, path: Sequence[str], successors: Iterable[str]
    ) -> Optional[Tuple[str, int]]:
        """Figure 2's ``most_likely_path_successor``: the successor whose
        extension of the trace has the highest path frequency.

        Returns ``(label, frequency)``, or ``None`` when every extension has
        zero observed frequency (the paper's ``nil``).  Ties break toward the
        CFG successor order for determinism.
        """
        best: Optional[Tuple[str, int]] = None
        for succ, f in self.successor_frequencies(
            proc, path, successors
        ).items():
            if f > 0 and (best is None or f > best[1]):
                best = (succ, f)
        return best

    def completion_ratio(self, proc: str, path: Sequence[str]) -> float:
        """Fraction of entries at ``path[0]`` that execute ``path`` in full.

        For traces longer than the profiling depth the numerator uses the
        longest in-depth suffix, making the ratio an upper-bound estimate
        exactly as available to the paper's enlarger.
        """
        path = tuple(path)
        if not path:
            return 0.0
        head_count = self.freq(proc, path[:1])
        if head_count == 0:
            return 0.0
        suffix = self.in_depth_suffix(proc, path)
        return self.freq(proc, suffix) / head_count

    def to_edge_counts(self, proc: str) -> Dict[Tuple[str, str], int]:
        """Marginalize the path table to edge counts (length-2 paths).

        Used by invariant tests: path profiles are a superset of edge
        profiles (Section 2.2).
        """
        return {
            (path[0], path[1]): count
            for path, count in self.paths.get(proc, {}).items()
            if len(path) == 2
        }


class _PathNode:
    """A node of the lazily built path graph: one distinct window."""

    __slots__ = ("labels", "count", "succ", "branches")

    def __init__(self, labels: Path, branches: int) -> None:
        self.labels = labels
        self.branches = branches
        self.count = 0
        self.succ: Dict[str, "_PathNode"] = {}


class GeneralPathProfiler(ExecutionObserver):
    """Observer that collects a general path profile during execution.

    One sliding window is kept per active procedure frame, so recursive
    activations do not interleave their paths.  Windows do not cross
    procedure boundaries; a caller's window resumes unchanged after a call
    returns, mirroring the per-procedure CFG scope of the formation phase.
    """

    def __init__(self, program: Program, depth: int = DEFAULT_DEPTH) -> None:
        if depth < 1:
            raise ValueError("path profiling depth must be >= 1")
        self.depth = depth
        self._branch_blocks: Dict[str, Set[str]] = {}
        for proc in program.procedures():
            self._branch_blocks[proc.name] = {
                b.label for b in proc.blocks() if b.ends_in_branch
            }
        #: intern table: (proc, labels) -> node, so identical windows share
        #: one counter no matter how they were reached.
        self._nodes: Dict[Tuple[str, Path], _PathNode] = {}
        #: frame id -> (proc name, current node)
        self._current: Dict[int, Tuple[str, _PathNode]] = {}

    # -- window maintenance -------------------------------------------------

    def _intern(self, proc: str, labels: Path) -> _PathNode:
        key = (proc, labels)
        node = self._nodes.get(key)
        if node is None:
            branch_set = self._branch_blocks.get(proc, set())
            branches = sum(1 for lab in labels if lab in branch_set)
            node = _PathNode(labels, branches)
            self._nodes[key] = node
        return node

    def _extend(self, proc: str, node: _PathNode, label: str) -> _PathNode:
        nxt = node.succ.get(label)
        if nxt is None:
            labels = node.labels + (label,)
            branch_set = self._branch_blocks.get(proc, set())
            branches = node.branches + (1 if label in branch_set else 0)
            start = 0
            while branches > self.depth and start < len(labels) - 1:
                if labels[start] in branch_set:
                    branches -= 1
                start += 1
            nxt = self._intern(proc, labels[start:])
            node.succ[label] = nxt
        return nxt

    # -- observer hooks -------------------------------------------------------

    def enter_procedure(self, proc_name: str, frame_id: int) -> None:
        """New activation: its window starts empty (filled at first block)."""

    def exit_procedure(self, proc_name: str, frame_id: int) -> None:
        self._current.pop(frame_id, None)

    def block_executed(self, proc_name: str, frame_id: int, label: str) -> None:
        state = self._current.get(frame_id)
        if state is None or state[0] != proc_name:
            node = self._intern(proc_name, (label,))
        else:
            node = self._extend(proc_name, state[1], label)
        node.count += 1
        self._current[frame_id] = (proc_name, node)

    # -- finalization -----------------------------------------------------------

    def finalize(self) -> PathProfile:
        """Expand window counts into the exact suffix-frequency table."""
        tables: Dict[str, Dict[Path, int]] = {}
        for (proc, labels), node in self._nodes.items():
            if node.count == 0:
                continue
            table = tables.setdefault(proc, {})
            for start in range(len(labels)):
                suffix = labels[start:]
                table[suffix] = table.get(suffix, 0) + node.count
        return PathProfile(
            paths=tables,
            depth=self.depth,
            branch_blocks={p: set(s) for p, s in self._branch_blocks.items()},
        )

    @property
    def distinct_windows(self) -> int:
        """Number of distinct windows materialized (the paper's n_paths)."""
        return sum(1 for node in self._nodes.values() if node.count > 0)


# -- batch replay over encoded traces ----------------------------------------


class _IntPathNode:
    """A path-graph node over interned block ids (batch-replay twin of
    :class:`_PathNode`)."""

    __slots__ = ("labels", "branches", "count", "succ")

    def __init__(self, labels: Tuple[int, ...], branches: int) -> None:
        self.labels = labels
        self.branches = branches
        self.count = 0
        self.succ: Dict[int, "_IntPathNode"] = {}


def branch_block_labels(program: Program) -> Dict[str, Set[str]]:
    """Per procedure: labels of blocks ending in a conditional/multiway
    branch (the blocks that consume path depth)."""
    return {
        proc.name: {b.label for b in proc.blocks() if b.ends_in_branch}
        for proc in program.procedures()
    }


def _int_branch_sets(
    trace: ExecutionTrace, branch_labels: Dict[str, Set[str]]
) -> List[Set[int]]:
    """Interned-id image of ``branch_labels`` under the trace string table."""
    sets: List[Set[int]] = []
    for pidx, name in enumerate(trace.proc_names):
        labs = branch_labels.get(name, set())
        sets.append(
            {
                lid
                for lid, label in enumerate(trace.labels[pidx])
                if label in labs
            }
        )
    return sets


def _path_tables_from_trace(
    trace: ExecutionTrace,
    depth: int,
    branch_sets: List[Set[int]],
    reset_edges: Optional[List[Set[Tuple[int, int]]]] = None,
) -> Dict[str, Dict[Path, int]]:
    """The shared batch inner loop: lazy path graph over interned ids.

    Runs the same lazy successor-pointer algorithm as the streaming
    profilers — one dict probe plus one counter increment per executed
    block after warm-up — but over ints, with no observer call overhead.
    ``reset_edges`` (per procedure index) chops the window at back edges,
    turning the general profile into a forward one.
    """
    nprocs = len(trace.proc_names)
    nodes_per_proc: List[Dict[Tuple[int, ...], _IntPathNode]] = [
        {} for _ in range(nprocs)
    ]

    for pidx, buf in trace.frames:
        nodes = nodes_per_proc[pidx]
        branch_set = branch_sets[pidx]
        resets = reset_edges[pidx] if reset_edges is not None else None
        node: Optional[_IntPathNode] = None
        for lid in buf.tolist():
            if node is not None and (
                resets is not None
                and (node.labels[-1], lid) in resets
            ):
                # Crossing a back edge ends the forward path.
                node = None
            if node is None:
                key = (lid,)
                node = nodes.get(key)
                if node is None:
                    node = nodes[key] = _IntPathNode(
                        key, 1 if lid in branch_set else 0
                    )
            else:
                nxt = node.succ.get(lid)
                if nxt is None:
                    labels = node.labels + (lid,)
                    branches = node.branches + (
                        1 if lid in branch_set else 0
                    )
                    start = 0
                    while branches > depth and start < len(labels) - 1:
                        if labels[start] in branch_set:
                            branches -= 1
                        start += 1
                    key = labels[start:]
                    nxt = nodes.get(key)
                    if nxt is None:
                        nxt = nodes[key] = _IntPathNode(key, branches)
                    node.succ[lid] = nxt
                node = nxt
            node.count += 1

    # Suffix expansion in int space, label rematerialization once per
    # distinct aggregated path.
    tables: Dict[str, Dict[Path, int]] = {}
    for pidx in range(nprocs):
        nodes = nodes_per_proc[pidx]
        if not nodes:
            continue
        int_table: Dict[Tuple[int, ...], int] = {}
        for key, node in nodes.items():
            count = node.count
            if count == 0:
                continue
            for start in range(len(key)):
                suffix = key[start:]
                int_table[suffix] = int_table.get(suffix, 0) + count
        table = trace.labels[pidx]
        tables[trace.proc_names[pidx]] = {
            tuple(table[lid] for lid in path): count
            for path, count in int_table.items()
        }
    return tables


def general_path_profile_from_trace(
    program: Program, trace: ExecutionTrace, depth: int = DEFAULT_DEPTH
) -> PathProfile:
    """Batch pass: derive a general :class:`PathProfile` from a trace.

    Bit-identical to running a :class:`GeneralPathProfiler` observer during
    execution — same lazy path graph, same suffix-sum finalization — but
    decoupled from the interpreter, so one recorded trace can be replayed
    at any number of depths.
    """
    if depth < 1:
        raise ValueError("path profiling depth must be >= 1")
    branch_labels = branch_block_labels(program)
    branch_sets = _int_branch_sets(trace, branch_labels)
    tables = _path_tables_from_trace(trace, depth, branch_sets)
    return PathProfile(
        paths=tables,
        depth=depth,
        branch_blocks={p: set(s) for p, s in branch_labels.items()},
    )
