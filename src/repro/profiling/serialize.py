"""Profile and trace persistence: save and load as JSON.

A real profile-guided compiler separates the training run from the
optimizing build; these helpers let a workflow do the same — collect once,
store the profiles (or the raw execution trace), and feed them to any
number of formation experiments.

Path tuples are encoded as ``\\x1f``-joined label strings (labels never
contain control characters), edges as ``src\\x1fdst``.  Execution traces
keep their interned form: the per-procedure label string-table is stored
once, and each frame is a procedure index plus its list of block ids.
"""

from __future__ import annotations

import json
from array import array
from typing import Any, Dict, TextIO, Union

from ..interp.trace import TRACE_TYPECODE, ExecutionTrace
from .edge_profile import EdgeProfile
from .path_profile import PathProfile

_SEP = "\x1f"


def edge_profile_to_dict(profile: EdgeProfile) -> Dict[str, Any]:
    """JSON-serializable form of an edge profile."""
    return {
        "kind": "edge-profile",
        "version": 1,
        "edges": {
            proc: {f"{src}{_SEP}{dst}": count for (src, dst), count in table.items()}
            for proc, table in profile.edges.items()
        },
        "blocks": {proc: dict(table) for proc, table in profile.blocks.items()},
        "entries": dict(profile.entries),
    }


def edge_profile_from_dict(data: Dict[str, Any]) -> EdgeProfile:
    """Inverse of :func:`edge_profile_to_dict`."""
    if data.get("kind") != "edge-profile":
        raise ValueError("not a serialized edge profile")
    edges = {
        proc: {
            tuple(key.split(_SEP)): count for key, count in table.items()
        }
        for proc, table in data["edges"].items()
    }
    return EdgeProfile(
        edges=edges,
        blocks={proc: dict(t) for proc, t in data["blocks"].items()},
        entries=dict(data["entries"]),
    )


def path_profile_to_dict(profile: PathProfile) -> Dict[str, Any]:
    """JSON-serializable form of a path profile."""
    return {
        "kind": "path-profile",
        "version": 1,
        "depth": profile.depth,
        "paths": {
            proc: {_SEP.join(path): count for path, count in table.items()}
            for proc, table in profile.paths.items()
        },
        "branch_blocks": {
            proc: sorted(labels)
            for proc, labels in profile.branch_blocks.items()
        },
    }


def path_profile_from_dict(data: Dict[str, Any]) -> PathProfile:
    """Inverse of :func:`path_profile_to_dict`."""
    if data.get("kind") != "path-profile":
        raise ValueError("not a serialized path profile")
    paths = {
        proc: {
            tuple(key.split(_SEP)): count for key, count in table.items()
        }
        for proc, table in data["paths"].items()
    }
    return PathProfile(
        paths=paths,
        depth=int(data["depth"]),
        branch_blocks={
            proc: set(labels)
            for proc, labels in data["branch_blocks"].items()
        },
    )


def trace_to_dict(trace: ExecutionTrace) -> Dict[str, Any]:
    """JSON-serializable form of an execution trace.

    The label string-table (``labels``) is stored once per procedure; the
    frames stay interned (procedure index plus block-id list), so the JSON
    form preserves the compactness of the in-memory encoding.
    """
    return {
        "kind": "execution-trace",
        "version": 1,
        "procs": list(trace.proc_names),
        "labels": [list(table) for table in trace.labels],
        "frames": [[pidx, buf.tolist()] for pidx, buf in trace.frames],
    }


def trace_from_dict(data: Dict[str, Any]) -> ExecutionTrace:
    """Inverse of :func:`trace_to_dict`."""
    if data.get("kind") != "execution-trace":
        raise ValueError("not a serialized execution trace")
    return ExecutionTrace(
        proc_names=list(data["procs"]),
        labels=[list(table) for table in data["labels"]],
        frames=[
            (int(pidx), array(TRACE_TYPECODE, ids))
            for pidx, ids in data["frames"]
        ],
    )


def save_profile(
    profile: Union[EdgeProfile, PathProfile, ExecutionTrace], stream: TextIO
) -> None:
    """Write a profile or execution trace to an open text stream as JSON."""
    if isinstance(profile, EdgeProfile):
        json.dump(edge_profile_to_dict(profile), stream)
    elif isinstance(profile, PathProfile):
        json.dump(path_profile_to_dict(profile), stream)
    elif isinstance(profile, ExecutionTrace):
        json.dump(trace_to_dict(profile), stream)
    else:
        raise TypeError(f"cannot serialize {type(profile).__name__}")


def load_profile(
    stream: TextIO,
) -> Union[EdgeProfile, PathProfile, ExecutionTrace]:
    """Read a profile or trace written by :func:`save_profile`."""
    data = json.load(stream)
    kind = data.get("kind")
    if kind == "edge-profile":
        return edge_profile_from_dict(data)
    if kind == "path-profile":
        return path_profile_from_dict(data)
    if kind == "execution-trace":
        return trace_from_dict(data)
    raise ValueError(f"unknown profile kind {kind!r}")
