"""Profilers: edge (point) profiles, general path profiles, forward paths."""

from .collector import MultiObserver, ProfileBundle, collect_profiles
from .edge_profile import EdgeProfile, EdgeProfiler
from .forward_path import ForwardPathProfiler
from .path_profile import (
    DEFAULT_DEPTH,
    GeneralPathProfiler,
    Path,
    PathProfile,
)
from .serialize import (
    edge_profile_from_dict,
    edge_profile_to_dict,
    load_profile,
    path_profile_from_dict,
    path_profile_to_dict,
    save_profile,
)

__all__ = [
    "DEFAULT_DEPTH",
    "EdgeProfile",
    "EdgeProfiler",
    "ForwardPathProfiler",
    "GeneralPathProfiler",
    "MultiObserver",
    "Path",
    "PathProfile",
    "ProfileBundle",
    "collect_profiles",
    "edge_profile_from_dict",
    "edge_profile_to_dict",
    "load_profile",
    "path_profile_from_dict",
    "path_profile_to_dict",
    "save_profile",
]
