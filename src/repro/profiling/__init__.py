"""Profilers: edge (point) profiles, general path profiles, forward paths.

Each profiler runs two ways with bit-identical results: as a streaming
:class:`~repro.interp.interpreter.ExecutionObserver` attached to a live
interpreter, or as a batch pass over a recorded
:class:`~repro.interp.trace.ExecutionTrace` (record once, replay many).
"""

from .collector import (
    MultiObserver,
    ProfileBundle,
    TracedRun,
    collect_profiles,
    collect_profiles_streaming,
    profiles_from_trace,
    profiles_from_trace_multi,
    record_trace,
)
from .edge_profile import EdgeProfile, EdgeProfiler, edge_profile_from_trace
from .forward_path import (
    ForwardPathProfiler,
    forward_path_profile_from_trace,
    forward_path_profiles_from_trace_multi,
)
from .kiter import KIterConfig, KIterProfile, kiter_profile_from_trace
from .path_profile import (
    DEFAULT_DEPTH,
    GeneralPathProfiler,
    Path,
    PathProfile,
    general_path_profile_from_trace,
    general_path_profiles_from_trace_multi,
)
from .serialize import (
    edge_profile_from_dict,
    edge_profile_to_dict,
    load_profile,
    path_profile_from_dict,
    path_profile_to_dict,
    save_profile,
    trace_from_dict,
    trace_to_dict,
)

__all__ = [
    "DEFAULT_DEPTH",
    "EdgeProfile",
    "EdgeProfiler",
    "ForwardPathProfiler",
    "GeneralPathProfiler",
    "KIterConfig",
    "KIterProfile",
    "MultiObserver",
    "Path",
    "PathProfile",
    "ProfileBundle",
    "TracedRun",
    "collect_profiles",
    "collect_profiles_streaming",
    "edge_profile_from_dict",
    "edge_profile_from_trace",
    "edge_profile_to_dict",
    "forward_path_profile_from_trace",
    "forward_path_profiles_from_trace_multi",
    "general_path_profile_from_trace",
    "general_path_profiles_from_trace_multi",
    "kiter_profile_from_trace",
    "load_profile",
    "path_profile_from_dict",
    "path_profile_to_dict",
    "profiles_from_trace",
    "profiles_from_trace_multi",
    "record_trace",
    "save_profile",
    "trace_from_dict",
    "trace_to_dict",
]
