"""k-iteration path profiling: Ball–Larus runs across loop back edges.

An acyclic (forward) path ends at every back-edge traversal, so a forward
profile cannot say *how many consecutive iterations* a loop usually runs —
exactly the number the unified enlarger needs to pick an unroll factor.
Following the multi-iteration Ball–Larus extension, this profiler
concatenates up to ``k`` acyclic paths across back-edge traversals of the
same loop head and histograms the resulting run lengths per loop.

The collector is a pure replay pass over a recorded
:class:`~repro.interp.trace.ExecutionTrace` — it never re-executes the
interpreter, and the trace cache key is independent of ``k``, so one cached
training trace serves every ``k`` (see ``repro.experiments.cache``).

A *run* of loop ``h`` is one visit to the loop: it starts when ``h`` is
entered along a forward edge (length 1) and grows by one per back-edge
traversal into ``h``; it flushes when ``h`` is next entered fresh or when
the frame ends.  Lengths are capped at ``k`` in the histogram — beyond the
concatenation window the profiler, like the paper's, cannot distinguish
longer runs.  From the histogram, :meth:`KIterProfile.recommended_unroll`
answers "what is the largest unroll factor that at least ``min_fraction``
of the observed runs would fill?", which
:func:`~repro.formation.enlarge_path.enlarge_path` uses to let a hot loop
head absorb more copies of itself than the flat ``max_loop_heads`` cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..interp.trace import ExecutionTrace
from ..ir.cfg import Program
from .forward_path import _int_reset_edges


@dataclass(frozen=True)
class KIterConfig:
    """Knobs for k-iteration path profiling."""

    #: Concatenation window: runs are histogrammed up to this many
    #: iterations (the paper's ``k``).
    k: int = 8
    #: An unroll factor is recommended only when at least this fraction of
    #: the observed runs reaches it.
    min_fraction: float = 0.5
    #: Loops observed fewer times than this keep the default behaviour.
    min_runs: int = 4


@dataclass
class KIterProfile:
    """Per-loop-head run-length histograms from one training trace."""

    config: KIterConfig
    #: proc name -> loop head label -> run length (capped at k) -> count
    runs: Dict[str, Dict[str, Dict[int, int]]] = field(default_factory=dict)
    #: Total acyclic paths concatenated (dynamic iterations observed).
    paths_observed: int = 0

    def loop_heads(self, proc: str) -> Tuple[str, ...]:
        """Loop heads of ``proc`` with at least one observed run, sorted."""
        return tuple(sorted(self.runs.get(proc, {})))

    def total_runs(self, proc: str, head: str) -> int:
        """Number of loop visits observed for ``head``."""
        return sum(self.runs.get(proc, {}).get(head, {}).values())

    def survivors(self, proc: str, head: str, length: int) -> int:
        """Observed runs of at least ``length`` iterations."""
        hist = self.runs.get(proc, {}).get(head, {})
        return sum(c for run, c in hist.items() if run >= length)

    def recommended_unroll(self, proc: str, head: str, default: int) -> int:
        """Largest unroll factor in ``[default, k]`` that at least
        ``min_fraction`` of the observed runs would fill; ``default`` when
        the loop was too rarely observed or short-running."""
        total = self.total_runs(proc, head)
        if total < self.config.min_runs:
            return default
        best = default
        for length in range(default + 1, self.config.k + 1):
            if (
                self.survivors(proc, head, length) / total
                >= self.config.min_fraction
            ):
                best = length
            else:
                break
        return best

    def unroll_hints(self, proc: str, default: int) -> Dict[str, int]:
        """Loop heads of ``proc`` whose recommendation beats ``default``."""
        hints: Dict[str, int] = {}
        for head in self.loop_heads(proc):
            rec = self.recommended_unroll(proc, head, default)
            if rec > default:
                hints[head] = rec
        return hints


def kiter_profile_from_trace(
    program: Program,
    trace: ExecutionTrace,
    config: KIterConfig,
) -> KIterProfile:
    """Replay a recorded trace into a :class:`KIterProfile`.

    Pure batch pass: one walk over each frame's block-id buffer, using the
    same interned back-edge sets as the forward profiler.  No interpreter
    execution, no dependence on the path-profile depth.
    """
    if config.k < 1:
        raise ValueError("k-iteration window must be >= 1")
    profile = KIterProfile(config=config)
    reset_edges = _int_reset_edges(program, trace)
    # Per procedure index: interned ids of loop heads (back-edge targets).
    head_ids = [{dst for _, dst in backs} for backs in reset_edges]
    cap = config.k
    for pidx, buf in trace.frames:
        heads = head_ids[pidx]
        if not heads:
            continue
        backs = reset_edges[pidx]
        table = trace.labels[pidx]
        proc_runs = profile.runs.setdefault(trace.proc_names[pidx], {})
        active: Dict[int, int] = {}
        prev = -1
        for lid in buf:
            if lid in heads:
                if (prev, lid) in backs:
                    # In irreducible shapes a retreating edge can be the
                    # first arrival at its target; start the run at 0 then.
                    active[lid] = active.get(lid, 0) + 1
                    profile.paths_observed += 1
                else:
                    run = active.get(lid)
                    if run is not None:
                        hist = proc_runs.setdefault(table[lid], {})
                        capped = run if run < cap else cap
                        hist[capped] = hist.get(capped, 0) + 1
                    active[lid] = 1
                    profile.paths_observed += 1
            prev = lid
        for lid, run in active.items():
            hist = proc_runs.setdefault(table[lid], {})
            capped = run if run < cap else cap
            hist[capped] = hist.get(capped, 0) + 1
    return profile
