"""Forward path profiling (Ball–Larus style), for comparison experiments.

Forward paths cannot contain back edges: the dynamic block stream is chopped
at every back-edge traversal (Section 2.2).  A single block therefore appears
at most a bounded number of times per path, and — crucially for the paper's
argument — forward paths can neither describe traces covering more than one
loop iteration nor capture branch correlation that spans iterations.

The collector reuses the lazy path-graph machinery of the general profiler;
the only difference is the reset at back edges.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from ..analysis.loops import back_edges
from ..ir.cfg import Program
from .path_profile import DEFAULT_DEPTH, GeneralPathProfiler, PathProfile


class ForwardPathProfiler(GeneralPathProfiler):
    """Collects forward (acyclic) path frequencies.

    The resulting :class:`PathProfile` answers the same queries as a general
    profile, but every recorded path lies within a single loop iteration.
    """

    def __init__(self, program: Program, depth: int = DEFAULT_DEPTH) -> None:
        super().__init__(program, depth)
        self._back_edges: Dict[str, Set[Tuple[str, str]]] = {
            proc.name: back_edges(proc) for proc in program.procedures()
        }

    def block_executed(self, proc_name: str, frame_id: int, label: str) -> None:
        state = self._current.get(frame_id)
        if state is not None and state[0] == proc_name:
            last_label = state[1].labels[-1]
            if (last_label, label) in self._back_edges.get(proc_name, set()):
                # Crossing a back edge ends the forward path.
                node = self._intern(proc_name, (label,))
                node.count += 1
                self._current[frame_id] = (proc_name, node)
                return
        super().block_executed(proc_name, frame_id, label)
