"""Forward path profiling (Ball–Larus style), for comparison experiments.

Forward paths cannot contain back edges: the dynamic block stream is chopped
at every back-edge traversal (Section 2.2).  A single block therefore appears
at most a bounded number of times per path, and — crucially for the paper's
argument — forward paths can neither describe traces covering more than one
loop iteration nor capture branch correlation that spans iterations.

The collector reuses the lazy path-graph machinery of the general profiler;
the only difference is the reset at back edges.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..analysis.loops import back_edges
from ..interp.trace import ExecutionTrace
from ..ir.cfg import Program
from .path_profile import (
    DEFAULT_DEPTH,
    GeneralPathProfiler,
    PathProfile,
    _int_branch_sets,
    _path_tables_from_trace,
    branch_block_labels,
)


class ForwardPathProfiler(GeneralPathProfiler):
    """Collects forward (acyclic) path frequencies.

    The resulting :class:`PathProfile` answers the same queries as a general
    profile, but every recorded path lies within a single loop iteration.
    """

    def __init__(self, program: Program, depth: int = DEFAULT_DEPTH) -> None:
        super().__init__(program, depth)
        self._back_edges: Dict[str, Set[Tuple[str, str]]] = {
            proc.name: back_edges(proc) for proc in program.procedures()
        }

    def block_executed(self, proc_name: str, frame_id: int, label: str) -> None:
        state = self._current.get(frame_id)
        if state is not None and state[0] == proc_name:
            last_label = state[1].labels[-1]
            if (last_label, label) in self._back_edges.get(proc_name, set()):
                # Crossing a back edge ends the forward path.
                node = self._intern(proc_name, (label,))
                node.count += 1
                self._current[frame_id] = (proc_name, node)
                return
        super().block_executed(proc_name, frame_id, label)


def forward_path_profile_from_trace(
    program: Program, trace: ExecutionTrace, depth: int = DEFAULT_DEPTH
) -> PathProfile:
    """Batch pass: derive a forward (acyclic) :class:`PathProfile` from a
    recorded trace.

    Identical results to running a :class:`ForwardPathProfiler` observer
    during execution: the shared batch loop resets the window whenever the
    frame's block stream crosses a back edge.
    """
    if depth < 1:
        raise ValueError("path profiling depth must be >= 1")
    branch_labels = branch_block_labels(program)
    branch_sets = _int_branch_sets(trace, branch_labels)
    backs = {proc.name: back_edges(proc) for proc in program.procedures()}
    reset_edges: List[Set[Tuple[int, int]]] = []
    for pidx, name in enumerate(trace.proc_names):
        table = trace.labels[pidx]
        ids = {label: lid for lid, label in enumerate(table)}
        reset_edges.append(
            {
                (ids[src], ids[dst])
                for src, dst in backs.get(name, set())
                if src in ids and dst in ids
            }
        )
    tables = _path_tables_from_trace(
        trace, depth, branch_sets, reset_edges=reset_edges
    )
    return PathProfile(
        paths=tables,
        depth=depth,
        branch_blocks={p: set(s) for p, s in branch_labels.items()},
    )
