"""Forward path profiling (Ball–Larus style), for comparison experiments.

Forward paths cannot contain back edges: the dynamic block stream is chopped
at every back-edge traversal (Section 2.2).  A single block therefore appears
at most a bounded number of times per path, and — crucially for the paper's
argument — forward paths can neither describe traces covering more than one
loop iteration nor capture branch correlation that spans iterations.

The collector reuses the lazy path-graph machinery of the general profiler;
the only difference is the reset at back edges.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple
from weakref import WeakKeyDictionary

from ..analysis.loops import back_edges
from ..interp.trace import ExecutionTrace
from ..ir.cfg import Program
from .path_profile import (
    DEFAULT_DEPTH,
    GeneralPathProfiler,
    PathProfile,
    _int_branch_sets,
    _multi_depth_tables_from_trace,
    _path_tables_from_trace,
    branch_block_labels,
)


class ForwardPathProfiler(GeneralPathProfiler):
    """Collects forward (acyclic) path frequencies.

    The resulting :class:`PathProfile` answers the same queries as a general
    profile, but every recorded path lies within a single loop iteration.
    """

    def __init__(self, program: Program, depth: int = DEFAULT_DEPTH) -> None:
        super().__init__(program, depth)
        self._back_edges: Dict[str, Set[Tuple[str, str]]] = {
            proc.name: back_edges(proc) for proc in program.procedures()
        }

    def block_executed(self, proc_name: str, frame_id: int, label: str) -> None:
        state = self._current.get(frame_id)
        if state is not None and state[0] == proc_name:
            last_label = state[1].labels[-1]
            if (last_label, label) in self._back_edges.get(proc_name, set()):
                # Crossing a back edge ends the forward path.
                node = self._intern(proc_name, (label,))
                node.count += 1
                self._current[frame_id] = (proc_name, node)
                return
        super().block_executed(proc_name, frame_id, label)


#: Back edges are a static CFG fact; cache them weakly per program so
#: repeated trace replays skip the dominator computation.
_BACK_EDGE_CACHE: "WeakKeyDictionary[Program, Dict[str, Set[Tuple[str, str]]]]" = (
    WeakKeyDictionary()
)


def _program_back_edges(program: Program) -> Dict[str, Set[Tuple[str, str]]]:
    backs = _BACK_EDGE_CACHE.get(program)
    if backs is None:
        backs = _BACK_EDGE_CACHE[program] = {
            proc.name: back_edges(proc) for proc in program.procedures()
        }
    return backs


def _int_reset_edges(
    program: Program, trace: ExecutionTrace
) -> List[Set[Tuple[int, int]]]:
    """Per procedure index: the trace's back edges as interned-id pairs."""
    backs = _program_back_edges(program)
    reset_edges: List[Set[Tuple[int, int]]] = []
    for pidx, name in enumerate(trace.proc_names):
        table = trace.labels[pidx]
        ids = {label: lid for lid, label in enumerate(table)}
        reset_edges.append(
            {
                (ids[src], ids[dst])
                for src, dst in backs.get(name, set())
                if src in ids and dst in ids
            }
        )
    return reset_edges


def forward_path_profile_from_trace(
    program: Program, trace: ExecutionTrace, depth: int = DEFAULT_DEPTH
) -> PathProfile:
    """Batch pass: derive a forward (acyclic) :class:`PathProfile` from a
    recorded trace.

    Identical results to running a :class:`ForwardPathProfiler` observer
    during execution: the shared batch loop resets the window whenever the
    frame's block stream crosses a back edge.
    """
    if depth < 1:
        raise ValueError("path profiling depth must be >= 1")
    branch_labels = branch_block_labels(program)
    branch_sets = _int_branch_sets(trace, branch_labels)
    tables = _path_tables_from_trace(
        trace,
        depth,
        branch_sets,
        reset_edges=_int_reset_edges(program, trace),
    )
    return PathProfile(
        paths=tables,
        depth=depth,
        branch_blocks={p: set(s) for p, s in branch_labels.items()},
    )


def forward_path_profiles_from_trace_multi(
    program: Program, trace: ExecutionTrace, depths: Sequence[int]
) -> Dict[int, PathProfile]:
    """Forward :class:`PathProfile` at every depth in ``depths`` from one
    walk of the trace.

    Back-edge resets fire identically at every depth (the reset test looks
    only at the window's last label and the next one, never at the part a
    smaller depth would trim), so the multi-depth derivation of the general
    profiler carries over unchanged.
    """
    if not depths:
        return {}
    if any(depth < 1 for depth in depths):
        raise ValueError("path profiling depth must be >= 1")
    branch_labels = branch_block_labels(program)
    branch_sets = _int_branch_sets(trace, branch_labels)
    per_depth = _multi_depth_tables_from_trace(
        trace,
        depths,
        branch_sets,
        reset_edges=_int_reset_edges(program, trace),
    )
    return {
        depth: PathProfile(
            paths=tables,
            depth=depth,
            branch_blocks={p: set(s) for p, s in branch_labels.items()},
        )
        for depth, tables in per_depth.items()
    }
