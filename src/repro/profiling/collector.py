"""Convenience entry points for collecting profiles from training runs.

The paper's compiler instruments each executed CFG edge and dispatches the
stream to a linked analysis routine (Section 3.1); here the interpreter is
the instrumentation and the profilers are the analysis routines.  A
:class:`MultiObserver` fans one execution out to several profilers so the
edge and path profiles of an experiment come from the *same* training run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..interp.interpreter import (
    ExecutionObserver,
    ExecutionResult,
    Interpreter,
)
from ..ir.cfg import Program
from .edge_profile import EdgeProfile, EdgeProfiler
from .forward_path import ForwardPathProfiler
from .path_profile import DEFAULT_DEPTH, GeneralPathProfiler, PathProfile


class MultiObserver(ExecutionObserver):
    """Broadcasts execution events to several observers."""

    def __init__(self, observers: Sequence[ExecutionObserver]) -> None:
        self.observers = list(observers)

    def enter_procedure(self, proc_name: str, frame_id: int) -> None:
        for obs in self.observers:
            obs.enter_procedure(proc_name, frame_id)

    def exit_procedure(self, proc_name: str, frame_id: int) -> None:
        for obs in self.observers:
            obs.exit_procedure(proc_name, frame_id)

    def block_executed(self, proc_name: str, frame_id: int, label: str) -> None:
        for obs in self.observers:
            obs.block_executed(proc_name, frame_id, label)


def fanout(observers: Sequence[ExecutionObserver]) -> ExecutionObserver:
    """Combine ``observers`` into a single execution observer.

    A single observer is returned as-is — the :class:`MultiObserver`
    wrapper would otherwise add one Python call per executed block for
    nothing — and only genuine fan-out pays for the broadcast loop.
    """
    observers = list(observers)
    if len(observers) == 1:
        return observers[0]
    return MultiObserver(observers)


@dataclass
class ProfileBundle:
    """Everything a formation pass might want from one training run."""

    edge: EdgeProfile
    path: PathProfile
    result: ExecutionResult
    forward: Optional[PathProfile] = None


def collect_profiles(
    program: Program,
    input_tape: Sequence[int] = (),
    args: Sequence[int] = (),
    depth: int = DEFAULT_DEPTH,
    include_forward: bool = False,
    step_limit: int = 50_000_000,
) -> ProfileBundle:
    """Run ``program`` on a training input, collecting edge and path profiles.

    Args:
        program: the program to profile.
        input_tape: training input words for ``read``.
        args: entry-procedure arguments.
        depth: path profiling depth in branches (15 in the paper).
        include_forward: also collect a Ball–Larus-style forward profile.
        step_limit: dynamic instruction budget.

    Returns:
        A :class:`ProfileBundle` with finalized profiles and the run result.
    """
    edge_profiler = EdgeProfiler()
    path_profiler = GeneralPathProfiler(program, depth=depth)
    observers: List[ExecutionObserver] = [edge_profiler, path_profiler]
    forward_profiler = None
    if include_forward:
        forward_profiler = ForwardPathProfiler(program, depth=depth)
        observers.append(forward_profiler)
    interp = Interpreter(
        program, step_limit=step_limit, observer=fanout(observers)
    )
    result = interp.run(input_tape, args)
    return ProfileBundle(
        edge=edge_profiler.finalize(),
        path=path_profiler.finalize(),
        result=result,
        forward=(
            forward_profiler.finalize() if forward_profiler is not None else None
        ),
    )
