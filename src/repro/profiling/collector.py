"""Convenience entry points for collecting profiles from training runs.

The paper's compiler instruments each executed CFG edge and dispatches the
stream to a linked analysis routine (Section 3.1).  Here the split is
record-once/replay-many: the interpreter records the dynamic block stream
as a compact :class:`~repro.interp.trace.ExecutionTrace` (one interning
probe and one ``array('i')`` append per executed block), and the batch
profilers replay that trace offline — so one training run yields the edge
profile, the general path profile at any depth, and the forward profile,
without a single per-block observer callback.

:func:`collect_profiles` is the drop-in entry point (record + replay under
the hood); :func:`record_trace` and :func:`profiles_from_trace` expose the
two halves so callers — notably the experiment cache — can persist the
trace and replay it for every scheme, depth, and ablation that needs a
profile.  :func:`collect_profiles_streaming` keeps the original
live-observer path as the parity baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..interp.interpreter import (
    ExecutionObserver,
    ExecutionResult,
    Interpreter,
)
from ..interp.trace import ExecutionTrace
from ..ir.cfg import Program
from .edge_profile import EdgeProfile, EdgeProfiler, edge_profile_from_trace
from .forward_path import (
    ForwardPathProfiler,
    _int_reset_edges,
    forward_path_profile_from_trace,
)
from .path_profile import (
    DEFAULT_DEPTH,
    GeneralPathProfiler,
    PathProfile,
    _edge_profile_from_path_graph,
    _expand_nodes_dual,
    _expand_nodes_multi,
    _int_branch_sets,
    _path_graph_from_trace,
    branch_block_labels,
    general_path_profile_from_trace,
)


class MultiObserver(ExecutionObserver):
    """Broadcasts execution events to several observers."""

    def __init__(self, observers: Sequence[ExecutionObserver]) -> None:
        self.observers = list(observers)

    def enter_procedure(self, proc_name: str, frame_id: int) -> None:
        for obs in self.observers:
            obs.enter_procedure(proc_name, frame_id)

    def exit_procedure(self, proc_name: str, frame_id: int) -> None:
        for obs in self.observers:
            obs.exit_procedure(proc_name, frame_id)

    def block_executed(self, proc_name: str, frame_id: int, label: str) -> None:
        for obs in self.observers:
            obs.block_executed(proc_name, frame_id, label)


def fanout(observers: Sequence[ExecutionObserver]) -> ExecutionObserver:
    """Combine ``observers`` into a single execution observer.

    A single observer is returned as-is — the :class:`MultiObserver`
    wrapper would otherwise add one Python call per executed block for
    nothing — and only genuine fan-out pays for the broadcast loop.
    """
    observers = list(observers)
    if len(observers) == 1:
        return observers[0]
    return MultiObserver(observers)


@dataclass
class TracedRun:
    """One recorded training run: the compact trace plus its run result.

    Both halves are pure values determined by (program, tape, args), which
    is what makes the pair a content-addressed cache artifact.
    """

    trace: ExecutionTrace
    result: ExecutionResult


@dataclass
class ProfileBundle:
    """Everything a formation pass might want from one training run."""

    edge: EdgeProfile
    path: PathProfile
    result: ExecutionResult
    forward: Optional[PathProfile] = None


def record_trace(
    program: Program,
    input_tape: Sequence[int] = (),
    args: Sequence[int] = (),
    step_limit: int = 50_000_000,
) -> TracedRun:
    """Run ``program`` once, recording its compact execution trace."""
    result, trace = Interpreter(program, step_limit=step_limit).run_traced(
        input_tape, args
    )
    return TracedRun(trace=trace, result=result)


def profiles_from_trace(
    program: Program,
    traced: TracedRun,
    depth: int = DEFAULT_DEPTH,
    include_forward: bool = False,
) -> ProfileBundle:
    """Replay a recorded trace through the batch profilers.

    Bit-identical to streaming collection at the same depth, but with no
    interpreter execution: depth sweeps and profiler ablations replay the
    same trace instead of re-running the program.
    """
    return ProfileBundle(
        edge=edge_profile_from_trace(traced.trace),
        path=general_path_profile_from_trace(program, traced.trace, depth),
        result=traced.result,
        forward=(
            forward_path_profile_from_trace(program, traced.trace, depth)
            if include_forward
            else None
        ),
    )


def profiles_from_trace_multi(
    program: Program,
    traced: TracedRun,
    depths: Sequence[int],
    include_forward: bool = False,
) -> Dict[int, ProfileBundle]:
    """Replay one recorded trace at *every* depth in ``depths`` at once.

    A depth sweep through :func:`profiles_from_trace` walks the trace once
    per depth per profiler; this walks it exactly once — general, at
    ``max(depths)`` — and derives everything else from the path-graph node
    set, which is orders of magnitude smaller than the trace: the smaller
    depths by branch-count filtering during suffix expansion, and the
    forward profiles by chopping each general window at its last back-edge
    pair.  The edge profile does not depend on depth, so it is computed
    once and shared by every returned bundle.  Each bundle is
    bit-identical to
    ``profiles_from_trace(program, traced, depth, include_forward)``.
    """
    if not depths:
        return {}
    if any(depth < 1 for depth in depths):
        raise ValueError("path profiling depth must be >= 1")
    trace = traced.trace
    branch_labels = branch_block_labels(program)
    branch_sets = _int_branch_sets(trace, branch_labels)
    top = max(depths)
    nodes_per_proc = _path_graph_from_trace(trace, top, branch_sets)
    edge = (
        _edge_profile_from_path_graph(trace, nodes_per_proc)
        if top >= 2
        else edge_profile_from_trace(trace)
    )
    if include_forward:
        path_tables, forward_tables = _expand_nodes_dual(
            trace,
            nodes_per_proc,
            branch_sets,
            depths,
            _int_reset_edges(program, trace),
        )
    else:
        path_tables = _expand_nodes_multi(
            trace, nodes_per_proc, branch_sets, depths
        )
        forward_tables = {}

    def _wrap(tables: Dict, depth: int) -> PathProfile:
        return PathProfile(
            paths=tables,
            depth=depth,
            branch_blocks={p: set(s) for p, s in branch_labels.items()},
        )

    return {
        depth: ProfileBundle(
            edge=edge,
            path=_wrap(path_tables[depth], depth),
            result=traced.result,
            forward=(
                _wrap(forward_tables[depth], depth)
                if include_forward
                else None
            ),
        )
        for depth in depths
    }


def collect_profiles(
    program: Program,
    input_tape: Sequence[int] = (),
    args: Sequence[int] = (),
    depth: int = DEFAULT_DEPTH,
    include_forward: bool = False,
    step_limit: int = 50_000_000,
) -> ProfileBundle:
    """Run ``program`` on a training input, collecting edge and path profiles.

    Records the run's trace once, then derives every requested profile as a
    batch pass over it.

    Args:
        program: the program to profile.
        input_tape: training input words for ``read``.
        args: entry-procedure arguments.
        depth: path profiling depth in branches (15 in the paper).
        include_forward: also collect a Ball–Larus-style forward profile.
        step_limit: dynamic instruction budget.

    Returns:
        A :class:`ProfileBundle` with finalized profiles and the run result.
    """
    if depth < 1:
        raise ValueError("path profiling depth must be >= 1")
    traced = record_trace(
        program, input_tape=input_tape, args=args, step_limit=step_limit
    )
    return profiles_from_trace(
        program, traced, depth=depth, include_forward=include_forward
    )


def collect_profiles_streaming(
    program: Program,
    input_tape: Sequence[int] = (),
    args: Sequence[int] = (),
    depth: int = DEFAULT_DEPTH,
    include_forward: bool = False,
    step_limit: int = 50_000_000,
) -> ProfileBundle:
    """Collect profiles with live observers (the pre-trace code path).

    One Python callback per executed block per profiler; kept as the
    parity baseline the batch engine is tested (and benchmarked) against.
    """
    edge_profiler = EdgeProfiler()
    path_profiler = GeneralPathProfiler(program, depth=depth)
    observers: List[ExecutionObserver] = [edge_profiler, path_profiler]
    forward_profiler = None
    if include_forward:
        forward_profiler = ForwardPathProfiler(program, depth=depth)
        observers.append(forward_profiler)
    interp = Interpreter(
        program, step_limit=step_limit, observer=fanout(observers)
    )
    result = interp.run(input_tape, args)
    return ProfileBundle(
        edge=edge_profiler.finalize(),
        path=path_profiler.finalize(),
        result=result,
        forward=(
            forward_profiler.finalize() if forward_profiler is not None else None
        ),
    )
