"""Profile-guided code placement (Pettis & Hansen style).

The paper's back end finishes with a Pettis–Hansen procedure-placement
optimization [15]; the I-cache results of Figures 5 and 6 are measured on
laid-out code.  This module implements the classic greedy algorithm at the
procedure level — repeatedly merge the chain pair connected by the heaviest
call-graph edge — plus a hot-first superblock ordering inside each
procedure, then assigns byte addresses to every scheduled superblock
(4 bytes per scheduled operation, matching the Alpha-style encoding).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.instructions import Opcode
from ..profiling.edge_profile import EdgeProfile
from ..scheduling.compactor import CompiledProgram

#: Bytes per encoded instruction.
INSTRUCTION_BYTES = 4


@dataclass
class Layout:
    """Byte addresses of every superblock's code."""

    #: (proc name, head label) -> base byte address
    base: Dict[Tuple[str, str], int]
    #: total code bytes
    code_bytes: int
    #: procedure order chosen by placement
    procedure_order: List[str] = field(default_factory=list)

    def address_of(self, proc: str, head: str) -> int:
        """Base address of one superblock's code."""
        return self.base[(proc, head)]


def call_graph_weights(
    compiled: CompiledProgram, profile: Optional[EdgeProfile]
) -> Dict[Tuple[str, str], int]:
    """Weighted caller->callee edges.

    Each call site contributes the training-run execution count of the
    (original) block containing it; without a profile every call site
    counts once.
    """
    weights: Dict[Tuple[str, str], int] = {}
    formation = compiled.formation
    for proc in formation.program.procedures():
        for block in proc.blocks():
            for instr in block.instructions:
                if instr.opcode is not Opcode.CALL:
                    continue
                weight = 1
                if profile is not None:
                    origin = formation.origin_of(proc.name, block.label)
                    weight = max(1, profile.block_count(proc.name, origin))
                key = (proc.name, instr.callee)
                weights[key] = weights.get(key, 0) + weight
    return weights


def order_procedures(
    names: List[str],
    weights: Dict[Tuple[str, str], int],
    entry: str,
) -> List[str]:
    """Greedy Pettis–Hansen chain merging over the call graph."""
    chains: Dict[str, List[str]] = {name: [name] for name in names}
    chain_of: Dict[str, str] = {name: name for name in names}

    undirected: Dict[Tuple[str, str], int] = {}
    for (src, dst), w in weights.items():
        if src == dst or src not in chain_of or dst not in chain_of:
            continue
        key = (min(src, dst), max(src, dst))
        undirected[key] = undirected.get(key, 0) + w

    for (a, b), _ in sorted(
        undirected.items(), key=lambda kv: (-kv[1], kv[0])
    ):
        ca, cb = chain_of[a], chain_of[b]
        if ca == cb:
            continue
        merged = chains[ca] + chains[cb]
        del chains[cb]
        chains[ca] = merged
        for name in merged:
            chain_of[name] = ca

    ordered: List[str] = []
    # The entry procedure's chain comes first, rotated so the entry leads
    # (execution starts there); remaining chains follow in deterministic
    # (first-member) order.
    entry_chain = chain_of.get(entry)
    if entry_chain is not None:
        chain = chains[entry_chain]
        if chain and chain[-1] == entry:
            chain = list(reversed(chain))  # keeps affinity adjacency
        elif chain and chain[0] != entry:
            # Rotate rather than splice the entry out of the middle: a
            # splice would break both of the entry's affinity adjacencies
            # (and one more at its old position); rotation breaks only the
            # single adjacency at the cut point.
            idx = chain.index(entry)
            chain = chain[idx:] + chain[:idx]
        ordered.extend(chain)
    for rep in sorted(chains):
        if rep == entry_chain:
            continue
        ordered.extend(chains[rep])
    return ordered


def layout_program(
    compiled: CompiledProgram,
    profile: Optional[EdgeProfile] = None,
) -> Layout:
    """Assign a base address to every superblock of ``compiled``.

    Procedures are ordered by Pettis–Hansen chain merging; inside a
    procedure the entry superblock is first and the rest follow in
    decreasing head execution count (hot code packs together).
    """
    weights = call_graph_weights(compiled, profile)
    names = list(compiled.procedures)
    order = order_procedures(names, weights, compiled.entry)

    base: Dict[Tuple[str, str], int] = {}
    cursor = 0
    formation = compiled.formation
    for name in order:
        cproc = compiled.procedures[name]

        def head_heat(head: str) -> int:
            if profile is None:
                return 0
            origin = formation.origin_of(name, head)
            return profile.block_count(name, origin)

        heads = list(cproc.schedules)
        heads.sort(key=lambda h: (h != cproc.entry_head, -head_heat(h), h))
        for head in heads:
            schedule = cproc.schedules[head]
            base[(name, head)] = cursor
            cursor += len(schedule.ops) * INSTRUCTION_BYTES
    return Layout(base=base, code_bytes=cursor, procedure_order=order)
