"""Profile-guided code placement (Pettis & Hansen style)."""

from .pettis_hansen import (
    INSTRUCTION_BYTES,
    Layout,
    call_graph_weights,
    layout_program,
    order_procedures,
)

__all__ = [
    "INSTRUCTION_BYTES",
    "Layout",
    "call_graph_weights",
    "layout_program",
    "order_procedures",
]
