"""Heap-allocated recursion for the frontend's tree walks.

MiniC programs are data — the fuzzer manufactures them — so their nesting
depth must not be limited by the Python call stack: a few hundred nested
parentheses or ``if`` arms would otherwise kill the recursive-descent
parser (and the sema/codegen visitors behind it) with ``RecursionError``.

:func:`run_trampoline` executes a *generator-shaped* recursion on an
explicit stack.  A recursive step is written as a generator that
``yield``s each sub-step (another such generator) and receives the
sub-step's return value as the value of the ``yield`` expression::

    def _factorial(n):
        if n == 0:
            return 1
        return n * (yield _factorial(n - 1))

    run_trampoline(_factorial(10_000))   # no RecursionError

The driver keeps the pending generators in a list, so call depth costs
heap, not stack.  Exceptions raised inside a step propagate to the caller
exactly as with plain recursion.
"""

from __future__ import annotations

from typing import Any, Generator

#: A recursion step: yields sub-steps, returns its result.
Step = Generator["Step", Any, Any]


def run_trampoline(root: Step) -> Any:
    """Run ``root`` to completion, executing yielded sub-steps on an
    explicit stack; returns ``root``'s return value."""
    stack = [root]
    value: Any = None
    while stack:
        try:
            child = stack[-1].send(value)
        except StopIteration as stop:
            stack.pop()
            value = stop.value
        else:
            stack.append(child)
            value = None
    return value
