"""Recursive-descent parser for MiniC.

The grammar methods are written as generator *steps* run by
:func:`~repro.frontend.trampoline.run_trampoline`: nesting depth costs
heap instead of Python stack, so fuzz-generated programs with thousands
of nested parentheses or ``if`` arms parse without ``RecursionError``.
A nested parse reads as ``x = yield self._rule()`` instead of
``x = self._rule()``; everything else is ordinary recursive descent.
"""

from __future__ import annotations

from typing import List, Optional

from . import ast_nodes as ast
from .lexer import MiniCError, Token, TokenKind, tokenize
from .trampoline import run_trampoline

#: Binary operator precedence (higher binds tighter).  ``&&``/``||`` are
#: handled separately because they short-circuit.
_PRECEDENCE = {
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}


class Parser:
    """Parses a token stream into a :class:`~repro.frontend.ast_nodes.Module`."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ----------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind is not TokenKind.EOF:
            self._pos += 1
        return tok

    def _expect_punct(self, text: str) -> Token:
        tok = self._next()
        if not tok.is_punct(text):
            raise MiniCError(
                f"expected {text!r}, found {tok.text!r}", tok.line, tok.col
            )
        return tok

    def _expect_keyword(self, text: str) -> Token:
        tok = self._next()
        if not tok.is_keyword(text):
            raise MiniCError(
                f"expected {text!r}, found {tok.text!r}", tok.line, tok.col
            )
        return tok

    def _expect_ident(self) -> Token:
        tok = self._next()
        if tok.kind is not TokenKind.IDENT:
            raise MiniCError(
                f"expected identifier, found {tok.text!r}", tok.line, tok.col
            )
        return tok

    def _accept_punct(self, text: str) -> bool:
        if self._peek().is_punct(text):
            self._next()
            return True
        return False

    # -- grammar: top level ---------------------------------------------------

    def parse_module(self) -> ast.Module:
        """``module := funcdef*``"""
        module = ast.Module(line=1)
        while self._peek().kind is not TokenKind.EOF:
            module.functions.append(run_trampoline(self._funcdef()))
        return module

    def _funcdef(self):
        start = self._expect_keyword("func")
        name = self._expect_ident().text
        self._expect_punct("(")
        params: List[str] = []
        if not self._peek().is_punct(")"):
            params.append(self._expect_ident().text)
            while self._accept_punct(","):
                params.append(self._expect_ident().text)
        self._expect_punct(")")
        body = yield self._block()
        return ast.FuncDef(line=start.line, name=name, params=params, body=body)

    # -- grammar: statements ------------------------------------------------------

    def _block(self):
        self._expect_punct("{")
        stmts: List[ast.Stmt] = []
        while not self._peek().is_punct("}"):
            if self._peek().kind is TokenKind.EOF:
                tok = self._peek()
                raise MiniCError("unterminated block", tok.line, tok.col)
            stmts.append((yield self._statement()))
        self._expect_punct("}")
        return stmts

    def _statement(self):
        tok = self._peek()
        if tok.is_keyword("var"):
            return (yield self._var_decl())
        if tok.is_keyword("if"):
            return (yield self._if())
        if tok.is_keyword("while"):
            return (yield self._while())
        if tok.is_keyword("for"):
            return (yield self._for())
        if tok.is_keyword("switch"):
            return (yield self._switch())
        if tok.is_keyword("break"):
            self._next()
            self._expect_punct(";")
            return ast.Break(line=tok.line)
        if tok.is_keyword("continue"):
            self._next()
            self._expect_punct(";")
            return ast.Continue(line=tok.line)
        if tok.is_keyword("return"):
            self._next()
            value: Optional[ast.Expr] = None
            if not self._peek().is_punct(";"):
                value = yield self._expression()
            self._expect_punct(";")
            return ast.Return(line=tok.line, value=value)
        if tok.is_keyword("print"):
            self._next()
            self._expect_punct("(")
            value = yield self._expression()
            self._expect_punct(")")
            self._expect_punct(";")
            return ast.Print(line=tok.line, value=value)
        if tok.is_keyword("mem"):
            return (yield self._store_stmt())
        if tok.kind is TokenKind.IDENT:
            # assignment or expression statement (e.g. a call for effect)
            if self._tokens[self._pos + 1].is_punct("="):
                name_tok = self._next()
                self._next()  # '='
                value = yield self._expression()
                self._expect_punct(";")
                return ast.Assign(
                    line=name_tok.line, name=name_tok.text, value=value
                )
            value = yield self._expression()
            self._expect_punct(";")
            return ast.ExprStmt(line=tok.line, value=value)
        raise MiniCError(f"unexpected token {tok.text!r}", tok.line, tok.col)

    def _var_decl(self):
        start = self._expect_keyword("var")
        name = self._expect_ident().text
        self._expect_punct("=")
        init = yield self._expression()
        self._expect_punct(";")
        return ast.VarDecl(line=start.line, name=name, init=init)

    def _store_stmt(self):
        start = self._expect_keyword("mem")
        self._expect_punct("[")
        addr = yield self._expression()
        self._expect_punct("]")
        self._expect_punct("=")
        value = yield self._expression()
        self._expect_punct(";")
        return ast.StoreStmt(line=start.line, addr=addr, value=value)

    def _if(self):
        start = self._expect_keyword("if")
        self._expect_punct("(")
        cond = yield self._expression()
        self._expect_punct(")")
        then = yield self._block()
        orelse: List[ast.Stmt] = []
        if self._peek().is_keyword("else"):
            self._next()
            if self._peek().is_keyword("if"):
                orelse = [(yield self._if())]
            else:
                orelse = yield self._block()
        return ast.If(line=start.line, cond=cond, then=then, orelse=orelse)

    def _while(self):
        start = self._expect_keyword("while")
        self._expect_punct("(")
        cond = yield self._expression()
        self._expect_punct(")")
        body = yield self._block()
        return ast.While(line=start.line, cond=cond, body=body)

    def _simple_statement(self):
        """A statement legal in for-headers: var decl, assignment, store,
        or expression (no trailing ';' consumed here)."""
        tok = self._peek()
        if tok.is_keyword("var"):
            self._next()
            name = self._expect_ident().text
            self._expect_punct("=")
            init = yield self._expression()
            return ast.VarDecl(line=tok.line, name=name, init=init)
        if tok.is_keyword("mem"):
            self._next()
            self._expect_punct("[")
            addr = yield self._expression()
            self._expect_punct("]")
            self._expect_punct("=")
            value = yield self._expression()
            return ast.StoreStmt(line=tok.line, addr=addr, value=value)
        if tok.kind is TokenKind.IDENT and self._tokens[self._pos + 1].is_punct("="):
            name_tok = self._next()
            self._next()
            value = yield self._expression()
            return ast.Assign(line=name_tok.line, name=name_tok.text, value=value)
        value = yield self._expression()
        return ast.ExprStmt(line=tok.line, value=value)

    def _for(self):
        start = self._expect_keyword("for")
        self._expect_punct("(")
        init: Optional[ast.Stmt] = None
        if not self._peek().is_punct(";"):
            init = yield self._simple_statement()
        self._expect_punct(";")
        cond: Optional[ast.Expr] = None
        if not self._peek().is_punct(";"):
            cond = yield self._expression()
        self._expect_punct(";")
        step: Optional[ast.Stmt] = None
        if not self._peek().is_punct(")"):
            step = yield self._simple_statement()
        self._expect_punct(")")
        body = yield self._block()
        return ast.For(
            line=start.line, init=init, cond=cond, step=step, body=body
        )

    def _switch(self):
        start = self._expect_keyword("switch")
        self._expect_punct("(")
        selector = yield self._expression()
        self._expect_punct(")")
        self._expect_punct("{")
        cases: List[ast.Case] = []
        default: List[ast.Stmt] = []
        saw_default = False
        while not self._peek().is_punct("}"):
            tok = self._peek()
            if tok.is_keyword("case"):
                self._next()
                value_tok = self._next()
                if value_tok.kind is not TokenKind.INT:
                    raise MiniCError(
                        "case labels must be integer literals",
                        value_tok.line,
                        value_tok.col,
                    )
                self._expect_punct(":")
                body = yield self._block()
                cases.append(
                    ast.Case(
                        value=int(value_tok.text), body=body, line=tok.line
                    )
                )
            elif tok.is_keyword("default"):
                if saw_default:
                    raise MiniCError("duplicate default", tok.line, tok.col)
                saw_default = True
                self._next()
                self._expect_punct(":")
                default = yield self._block()
            else:
                raise MiniCError(
                    f"expected case/default, found {tok.text!r}",
                    tok.line,
                    tok.col,
                )
        self._expect_punct("}")
        return ast.Switch(
            line=start.line, selector=selector, cases=cases, default=default
        )

    # -- grammar: expressions ---------------------------------------------------

    def _expression(self):
        return (yield self._logical_or())

    def _logical_or(self):
        expr = yield self._logical_and()
        while self._peek().is_punct("||"):
            tok = self._next()
            rhs = yield self._logical_and()
            expr = ast.Logical(line=tok.line, op="||", lhs=expr, rhs=rhs)
        return expr

    def _logical_and(self):
        expr = yield self._binary(0)
        while self._peek().is_punct("&&"):
            tok = self._next()
            rhs = yield self._binary(0)
            expr = ast.Logical(line=tok.line, op="&&", lhs=expr, rhs=rhs)
        return expr

    def _binary(self, min_prec: int):
        expr = yield self._unary()
        while True:
            tok = self._peek()
            prec = (
                _PRECEDENCE.get(tok.text)
                if tok.kind is TokenKind.PUNCT
                else None
            )
            if prec is None or prec < min_prec:
                return expr
            self._next()
            rhs = yield self._binary(prec + 1)
            expr = ast.Binary(line=tok.line, op=tok.text, lhs=expr, rhs=rhs)

    def _unary(self):
        tok = self._peek()
        if tok.is_punct("-") or tok.is_punct("!"):
            self._next()
            operand = yield self._unary()
            return ast.Unary(line=tok.line, op=tok.text, operand=operand)
        return (yield self._primary())

    def _primary(self):
        tok = self._next()
        if tok.kind is TokenKind.INT:
            return ast.IntLit(line=tok.line, value=int(tok.text))
        if tok.is_punct("("):
            expr = yield self._expression()
            self._expect_punct(")")
            return expr
        if tok.is_keyword("read"):
            self._expect_punct("(")
            self._expect_punct(")")
            return ast.ReadExpr(line=tok.line)
        if tok.is_keyword("mem"):
            self._expect_punct("[")
            addr = yield self._expression()
            self._expect_punct("]")
            return ast.Load(line=tok.line, addr=addr)
        if tok.kind is TokenKind.IDENT:
            if self._peek().is_punct("("):
                self._next()
                args: List[ast.Expr] = []
                if not self._peek().is_punct(")"):
                    args.append((yield self._expression()))
                    while self._accept_punct(","):
                        args.append((yield self._expression()))
                self._expect_punct(")")
                return ast.Call(line=tok.line, name=tok.text, args=args)
            return ast.Var(line=tok.line, name=tok.text)
        raise MiniCError(
            f"unexpected token {tok.text!r} in expression", tok.line, tok.col
        )


def parse(source: str) -> ast.Module:
    """Parse MiniC source text into a module AST."""
    return Parser(tokenize(source)).parse_module()
