"""MiniC: the small C-like language used to author benchmark workloads."""

from .ast_nodes import Module
from .codegen import compile_source, lower_module
from .lexer import MiniCError, Token, TokenKind, tokenize
from .parser import parse
from .sema import check_module

__all__ = [
    "MiniCError",
    "Module",
    "Token",
    "TokenKind",
    "check_module",
    "compile_source",
    "lower_module",
    "parse",
    "tokenize",
]
