"""Lexer for MiniC, the small C-like language the workloads are written in.

MiniC exists because the paper's benchmarks are C programs compiled through
SUIF; authoring the reproduction's workloads in a structured language (rather
than hand-writing IR) produces the realistic multi-block, branchy CFGs the
formation algorithms are sensitive to.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional


class MiniCError(Exception):
    """Raised for lexical, syntactic, or semantic errors in MiniC source."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        location = f" at line {line}:{col}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.col = col


class TokenKind(enum.Enum):
    """Lexical token categories."""

    INT = "int"
    IDENT = "ident"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "func",
        "var",
        "if",
        "else",
        "while",
        "for",
        "break",
        "continue",
        "return",
        "print",
        "read",
        "mem",
        "switch",
        "case",
        "default",
    }
)

#: Multi-character punctuation, longest first so maximal munch works.
_PUNCTS = [
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    ":",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "!",
    "&",
    "|",
    "^",
]


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: TokenKind
    text: str
    line: int
    col: int

    def is_punct(self, text: str) -> bool:
        """True when this token is the punctuation ``text``."""
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        """True when this token is the keyword ``text``."""
        return self.kind is TokenKind.KEYWORD and self.text == text


def tokenize(source: str) -> List[Token]:
    """Convert MiniC source text to a token list ending in EOF.

    Supports ``//`` line comments and ``/* */`` block comments.
    """
    tokens: List[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            start_line, start_col = line, col
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance(1)
            if i >= n:
                raise MiniCError("unterminated block comment", start_line, start_col)
            advance(2)
            continue
        if ch.isdigit():
            start = i
            start_line, start_col = line, col
            while i < n and source[i].isdigit():
                advance(1)
            tokens.append(
                Token(TokenKind.INT, source[start:i], start_line, start_col)
            )
            continue
        if ch.isalpha() or ch == "_":
            start = i
            start_line, start_col = line, col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                advance(1)
            text = source[start:i]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, start_line, start_col))
            continue
        matched = None
        for punct in _PUNCTS:
            if source.startswith(punct, i):
                matched = punct
                break
        if matched is None:
            raise MiniCError(f"unexpected character {ch!r}", line, col)
        tokens.append(Token(TokenKind.PUNCT, matched, line, col))
        advance(len(matched))

    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens
