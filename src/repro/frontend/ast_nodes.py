"""Abstract syntax tree for MiniC.

Every node carries its source line for diagnostics.  The tree is deliberately
small: integers are the only value type, variables are function-scoped, and
``mem[e]`` exposes the flat word-addressed program memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Node:
    """Base class of all AST nodes."""

    line: int


# -- expressions -----------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class of expression nodes."""


@dataclass
class IntLit(Expr):
    """Integer literal."""

    value: int


@dataclass
class Var(Expr):
    """Variable reference."""

    name: str


@dataclass
class Unary(Expr):
    """Unary operation: ``-`` (negate) or ``!`` (logical not)."""

    op: str
    operand: Expr


@dataclass
class Binary(Expr):
    """Binary arithmetic/comparison/bitwise operation (non-short-circuit)."""

    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class Logical(Expr):
    """Short-circuit ``&&`` / ``||``."""

    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class Load(Expr):
    """``mem[addr]``"""

    addr: Expr


@dataclass
class ReadExpr(Expr):
    """``read()`` — next input word, -1 at end of input."""


@dataclass
class Call(Expr):
    """Function call ``name(args...)``."""

    name: str
    args: List[Expr]


# -- statements ---------------------------------------------------------------


@dataclass
class Stmt(Node):
    """Base class of statement nodes."""


@dataclass
class VarDecl(Stmt):
    """``var name = init;``"""

    name: str
    init: Expr


@dataclass
class Assign(Stmt):
    """``name = value;``"""

    name: str
    value: Expr


@dataclass
class StoreStmt(Stmt):
    """``mem[addr] = value;``"""

    addr: Expr
    value: Expr


@dataclass
class If(Stmt):
    """``if (cond) { then } else { orelse }`` (orelse may be empty)."""

    cond: Expr
    then: List[Stmt]
    orelse: List[Stmt]


@dataclass
class While(Stmt):
    """``while (cond) { body }``"""

    cond: Expr
    body: List[Stmt]


@dataclass
class For(Stmt):
    """``for (init; cond; step) { body }`` — init/step are statements."""

    init: Optional[Stmt]
    cond: Optional[Expr]
    step: Optional[Stmt]
    body: List[Stmt]


@dataclass
class Break(Stmt):
    """``break;``"""


@dataclass
class Continue(Stmt):
    """``continue;``"""


@dataclass
class Return(Stmt):
    """``return expr;`` or ``return;``"""

    value: Optional[Expr]


@dataclass
class Print(Stmt):
    """``print(expr);``"""

    value: Expr


@dataclass
class ExprStmt(Stmt):
    """Expression evaluated for effect, e.g. a call."""

    value: Expr


@dataclass
class Case:
    """One arm of a switch: ``case value: { body }``."""

    value: int
    body: List[Stmt]
    line: int = 0


@dataclass
class Switch(Stmt):
    """``switch (sel) { case k: {...} ... default: {...} }``.

    Cases do not fall through; the selector dispatches through a dense
    multiway branch (``mbr``), with out-of-range values going to default.
    """

    selector: Expr
    cases: List[Case]
    default: List[Stmt]


# -- top level ---------------------------------------------------------------


@dataclass
class FuncDef(Node):
    """``func name(params...) { body }``"""

    name: str
    params: List[str]
    body: List[Stmt]


@dataclass
class Module(Node):
    """A MiniC compilation unit: a list of function definitions."""

    functions: List[FuncDef] = field(default_factory=list)
