"""Semantic checks for MiniC modules.

MiniC keeps C's spirit with simpler rules: all values are integers,
variables are function-scoped, must be declared (``var``) before use, and may
not be redeclared.  Case labels are non-negative integer literals (they
dispatch through a dense ``mbr`` table).
"""

from __future__ import annotations

from typing import Dict, List, Set

from . import ast_nodes as ast
from .lexer import MiniCError


def check_module(module: ast.Module) -> None:
    """Raise :class:`MiniCError` on the first semantic problem found."""
    signatures: Dict[str, int] = {}
    for func in module.functions:
        if func.name in signatures:
            raise MiniCError(f"duplicate function {func.name!r}", func.line)
        signatures[func.name] = len(func.params)
    for func in module.functions:
        _FunctionChecker(func, signatures).check()


class _FunctionChecker:
    def __init__(self, func: ast.FuncDef, signatures: Dict[str, int]) -> None:
        self.func = func
        self.signatures = signatures
        self.declared: Set[str] = set()
        self.loop_depth = 0

    def check(self) -> None:
        seen_params: Set[str] = set()
        for param in self.func.params:
            if param in seen_params:
                raise MiniCError(
                    f"duplicate parameter {param!r} in {self.func.name}",
                    self.func.line,
                )
            seen_params.add(param)
        self.declared = set(seen_params)
        self._stmts(self.func.body)

    # -- statements -------------------------------------------------------

    def _stmts(self, stmts: List[ast.Stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            self._expr(stmt.init)
            if stmt.name in self.declared:
                raise MiniCError(
                    f"redeclaration of {stmt.name!r}", stmt.line
                )
            self.declared.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            self._expr(stmt.value)
            if stmt.name not in self.declared:
                raise MiniCError(
                    f"assignment to undeclared variable {stmt.name!r}",
                    stmt.line,
                )
        elif isinstance(stmt, ast.StoreStmt):
            self._expr(stmt.addr)
            self._expr(stmt.value)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.cond)
            self._stmts(stmt.then)
            self._stmts(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.cond)
            self.loop_depth += 1
            self._stmts(stmt.body)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._stmt(stmt.init)
            if stmt.cond is not None:
                self._expr(stmt.cond)
            if stmt.step is not None:
                self._stmt(stmt.step)
            self.loop_depth += 1
            self._stmts(stmt.body)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.Break):
            if self.loop_depth == 0:
                raise MiniCError("break outside loop", stmt.line)
        elif isinstance(stmt, ast.Continue):
            if self.loop_depth == 0:
                raise MiniCError("continue outside loop", stmt.line)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value)
        elif isinstance(stmt, ast.Print):
            self._expr(stmt.value)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.value)
        elif isinstance(stmt, ast.Switch):
            self._expr(stmt.selector)
            seen_values: Set[int] = set()
            for case in stmt.cases:
                if case.value < 0:
                    raise MiniCError(
                        f"negative case label {case.value}", case.line
                    )
                if case.value in seen_values:
                    raise MiniCError(
                        f"duplicate case label {case.value}", case.line
                    )
                seen_values.add(case.value)
                self._stmts(case.body)
            self._stmts(stmt.default)
        else:  # pragma: no cover - exhaustive over Stmt
            raise MiniCError(f"unknown statement {type(stmt).__name__}")

    # -- expressions -----------------------------------------------------------

    def _expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.IntLit):
            return
        if isinstance(expr, ast.Var):
            if expr.name not in self.declared:
                raise MiniCError(
                    f"use of undeclared variable {expr.name!r}", expr.line
                )
            return
        if isinstance(expr, (ast.Unary,)):
            self._expr(expr.operand)
            return
        if isinstance(expr, (ast.Binary, ast.Logical)):
            self._expr(expr.lhs)
            self._expr(expr.rhs)
            return
        if isinstance(expr, ast.Load):
            self._expr(expr.addr)
            return
        if isinstance(expr, ast.ReadExpr):
            return
        if isinstance(expr, ast.Call):
            if expr.name not in self.signatures:
                raise MiniCError(
                    f"call to undefined function {expr.name!r}", expr.line
                )
            expected = self.signatures[expr.name]
            if len(expr.args) != expected:
                raise MiniCError(
                    f"{expr.name!r} expects {expected} args,"
                    f" got {len(expr.args)}",
                    expr.line,
                )
            for arg in expr.args:
                self._expr(arg)
            return
        raise MiniCError(  # pragma: no cover - exhaustive over Expr
            f"unknown expression {type(expr).__name__}"
        )
