"""Semantic checks for MiniC modules.

MiniC keeps C's spirit with simpler rules: all values are integers,
variables are function-scoped, must be declared (``var``) before use, and may
not be redeclared.  Case labels are non-negative integer literals (they
dispatch through a dense ``mbr`` table).
"""

from __future__ import annotations

from typing import Dict, List, Set

from . import ast_nodes as ast
from .lexer import MiniCError
from .trampoline import run_trampoline


def check_module(module: ast.Module) -> None:
    """Raise :class:`MiniCError` on the first semantic problem found."""
    signatures: Dict[str, int] = {}
    for func in module.functions:
        if func.name in signatures:
            raise MiniCError(f"duplicate function {func.name!r}", func.line)
        signatures[func.name] = len(func.params)
    for func in module.functions:
        _FunctionChecker(func, signatures).check()


class _FunctionChecker:
    def __init__(self, func: ast.FuncDef, signatures: Dict[str, int]) -> None:
        self.func = func
        self.signatures = signatures
        self.declared: Set[str] = set()
        self.loop_depth = 0

    def check(self) -> None:
        seen_params: Set[str] = set()
        for param in self.func.params:
            if param in seen_params:
                raise MiniCError(
                    f"duplicate parameter {param!r} in {self.func.name}",
                    self.func.line,
                )
            seen_params.add(param)
        self.declared = set(seen_params)
        run_trampoline(self._stmts(self.func.body))

    # -- statements -------------------------------------------------------
    #
    # Statement checking runs as trampoline steps (``yield`` = recurse):
    # nesting depth is program data, so it must not be bounded by the
    # Python call stack.

    def _stmts(self, stmts: List[ast.Stmt]):
        for stmt in stmts:
            yield self._stmt(stmt)

    def _stmt(self, stmt: ast.Stmt):
        if isinstance(stmt, ast.VarDecl):
            self._expr(stmt.init)
            if stmt.name in self.declared:
                raise MiniCError(
                    f"redeclaration of {stmt.name!r}", stmt.line
                )
            self.declared.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            self._expr(stmt.value)
            if stmt.name not in self.declared:
                raise MiniCError(
                    f"assignment to undeclared variable {stmt.name!r}",
                    stmt.line,
                )
        elif isinstance(stmt, ast.StoreStmt):
            self._expr(stmt.addr)
            self._expr(stmt.value)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.cond)
            yield self._stmts(stmt.then)
            yield self._stmts(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.cond)
            self.loop_depth += 1
            yield self._stmts(stmt.body)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                yield self._stmt(stmt.init)
            if stmt.cond is not None:
                self._expr(stmt.cond)
            if stmt.step is not None:
                yield self._stmt(stmt.step)
            self.loop_depth += 1
            yield self._stmts(stmt.body)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.Break):
            if self.loop_depth == 0:
                raise MiniCError("break outside loop", stmt.line)
        elif isinstance(stmt, ast.Continue):
            if self.loop_depth == 0:
                raise MiniCError("continue outside loop", stmt.line)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value)
        elif isinstance(stmt, ast.Print):
            self._expr(stmt.value)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.value)
        elif isinstance(stmt, ast.Switch):
            self._expr(stmt.selector)
            seen_values: Set[int] = set()
            for case in stmt.cases:
                if case.value < 0:
                    raise MiniCError(
                        f"negative case label {case.value}", case.line
                    )
                if case.value in seen_values:
                    raise MiniCError(
                        f"duplicate case label {case.value}", case.line
                    )
                seen_values.add(case.value)
                yield self._stmts(case.body)
            yield self._stmts(stmt.default)
        else:  # pragma: no cover - exhaustive over Stmt
            raise MiniCError(f"unknown statement {type(stmt).__name__}")

    # -- expressions -----------------------------------------------------------

    def _expr(self, expr: ast.Expr) -> None:
        # Iterative preorder walk: expression depth is program data, so it
        # must not be bounded by the Python call stack.
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.IntLit):
                continue
            if isinstance(node, ast.Var):
                if node.name not in self.declared:
                    raise MiniCError(
                        f"use of undeclared variable {node.name!r}",
                        node.line,
                    )
                continue
            if isinstance(node, ast.Unary):
                stack.append(node.operand)
                continue
            if isinstance(node, (ast.Binary, ast.Logical)):
                stack.append(node.rhs)
                stack.append(node.lhs)
                continue
            if isinstance(node, ast.Load):
                stack.append(node.addr)
                continue
            if isinstance(node, ast.ReadExpr):
                continue
            if isinstance(node, ast.Call):
                if node.name not in self.signatures:
                    raise MiniCError(
                        f"call to undefined function {node.name!r}",
                        node.line,
                    )
                expected = self.signatures[node.name]
                if len(node.args) != expected:
                    raise MiniCError(
                        f"{node.name!r} expects {expected} args,"
                        f" got {len(node.args)}",
                        node.line,
                    )
                stack.extend(reversed(node.args))
                continue
            raise MiniCError(  # pragma: no cover - exhaustive over Expr
                f"unknown expression {type(node).__name__}"
            )
