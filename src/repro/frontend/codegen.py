"""MiniC-to-IR code generation.

Lowering rules of note:

* ``&&`` / ``||`` short-circuit through control flow, producing the dense,
  correlated branch structure the paper's path profiles exploit.
* ``switch`` lowers to a dense ``mbr`` jump table over ``0..max_case`` with
  out-of-range values (including negatives) going to the default arm; arms do
  not fall through.
* Comparison operators materialize 0/1 in a register via ``cmp*``.
* A function whose body can fall off the end implicitly returns 0.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.builder import BlockBuilder, FunctionBuilder, build_program
from ..ir.cfg import Program
from ..ir.instructions import Opcode
from . import ast_nodes as ast
from .lexer import MiniCError
from .parser import parse
from .sema import check_module
from .trampoline import run_trampoline

_BINOP_OPCODES = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.MOD,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<<": Opcode.SHL,
    ">>": Opcode.SHR,
    "==": Opcode.CMPEQ,
    "!=": Opcode.CMPNE,
    "<": Opcode.CMPLT,
    "<=": Opcode.CMPLE,
    ">": Opcode.CMPGT,
    ">=": Opcode.CMPGE,
}


class _FunctionCodegen:
    """Generates one procedure from one MiniC function."""

    def __init__(self, func: ast.FuncDef) -> None:
        self.func = func
        self.fb = FunctionBuilder(func.name, num_params=len(func.params))
        self.vars: Dict[str, int] = dict(zip(func.params, self.fb.params))
        #: (continue target label, break target label) stack
        self.loops: List[tuple] = []
        self.cur: Optional[BlockBuilder] = self.fb.block("entry")

    # -- helpers ------------------------------------------------------------

    def _new_block(self, hint: str) -> BlockBuilder:
        return self.fb.block(self.fb.proc.fresh_label(hint))

    def _terminated(self) -> bool:
        return self.cur is None

    # -- statements -----------------------------------------------------------

    def generate(self) -> FunctionBuilder:
        # Lowering runs as trampoline steps (``yield`` = recurse): nesting
        # depth is program data, so it must not be bounded by the Python
        # call stack.
        run_trampoline(self._stmts(self.func.body))
        if self.cur is not None:
            self.cur.ret()
        return self.fb

    def _stmts(self, stmts: List[ast.Stmt]):
        for stmt in stmts:
            if self.cur is None:
                return  # unreachable code after break/continue/return
            yield self._stmt(stmt)

    def _stmt(self, stmt: ast.Stmt):
        if isinstance(stmt, ast.VarDecl):
            reg = self.fb.reg()
            self.vars[stmt.name] = reg
            value = yield self._expr(stmt.init)
            self.cur.mov(reg, value)
        elif isinstance(stmt, ast.Assign):
            value = yield self._expr(stmt.value)
            self.cur.mov(self.vars[stmt.name], value)
        elif isinstance(stmt, ast.StoreStmt):
            addr = yield self._expr(stmt.addr)
            value = yield self._expr(stmt.value)
            self.cur.store(addr, value)
        elif isinstance(stmt, ast.Print):
            # Evaluate first: _expr may switch the current block (logical
            # operators lower to control flow).
            value = yield self._expr(stmt.value)
            self.cur.print_(value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = yield self._expr(stmt.value)
                self.cur.ret(value)
            else:
                self.cur.ret()
            self.cur = None
        elif isinstance(stmt, ast.ExprStmt):
            yield self._expr(stmt.value)
        elif isinstance(stmt, ast.Break):
            self.cur.jmp(self.loops[-1][1])
            self.cur = None
        elif isinstance(stmt, ast.Continue):
            self.cur.jmp(self.loops[-1][0])
            self.cur = None
        elif isinstance(stmt, ast.If):
            yield self._if(stmt)
        elif isinstance(stmt, ast.While):
            yield self._while(stmt)
        elif isinstance(stmt, ast.For):
            yield self._for(stmt)
        elif isinstance(stmt, ast.Switch):
            yield self._switch(stmt)
        else:  # pragma: no cover - exhaustive over Stmt
            raise MiniCError(f"cannot lower {type(stmt).__name__}")

    def _if(self, stmt: ast.If):
        cond = yield self._expr(stmt.cond)
        then_blk = self._new_block("then")
        join_blk: Optional[BlockBuilder] = None
        if stmt.orelse:
            else_blk = self._new_block("else")
            self.cur.br(cond, then_blk.label, else_blk.label)
        else:
            join_blk = self._new_block("join")
            self.cur.br(cond, then_blk.label, join_blk.label)

        self.cur = then_blk
        yield self._stmts(stmt.then)
        then_end = self.cur

        else_end: Optional[BlockBuilder] = None
        if stmt.orelse:
            self.cur = else_blk
            yield self._stmts(stmt.orelse)
            else_end = self.cur

        if then_end is None and (not stmt.orelse or else_end is None):
            if stmt.orelse:
                self.cur = None
                return
            # then terminated, no else: execution continues at join.
            self.cur = join_blk
            return
        if join_blk is None:
            join_blk = self._new_block("join")
        if then_end is not None:
            then_end.jmp(join_blk.label)
        if else_end is not None:
            else_end.jmp(join_blk.label)
        self.cur = join_blk

    def _while(self, stmt: ast.While):
        cond_blk = self._new_block("while_cond")
        exit_blk = self._new_block("while_exit")
        self.cur.jmp(cond_blk.label)
        self.cur = cond_blk
        cond = yield self._expr(stmt.cond)
        body_blk = self._new_block("while_body")
        self.cur.br(cond, body_blk.label, exit_blk.label)
        self.loops.append((cond_blk.label, exit_blk.label))
        self.cur = body_blk
        yield self._stmts(stmt.body)
        if self.cur is not None:
            self.cur.jmp(cond_blk.label)
        self.loops.pop()
        self.cur = exit_blk

    def _for(self, stmt: ast.For):
        if stmt.init is not None:
            yield self._stmt(stmt.init)
        cond_blk = self._new_block("for_cond")
        exit_blk = self._new_block("for_exit")
        step_blk = self._new_block("for_step")
        self.cur.jmp(cond_blk.label)
        self.cur = cond_blk
        if stmt.cond is not None:
            cond = yield self._expr(stmt.cond)
            body_blk = self._new_block("for_body")
            self.cur.br(cond, body_blk.label, exit_blk.label)
        else:
            body_blk = self._new_block("for_body")
            self.cur.jmp(body_blk.label)
        self.loops.append((step_blk.label, exit_blk.label))
        self.cur = body_blk
        yield self._stmts(stmt.body)
        if self.cur is not None:
            self.cur.jmp(step_blk.label)
        self.loops.pop()
        self.cur = step_blk
        if stmt.step is not None:
            yield self._stmt(stmt.step)
        if self.cur is not None:
            self.cur.jmp(cond_blk.label)
        self.cur = exit_blk

    def _switch(self, stmt: ast.Switch):
        selector = yield self._expr(stmt.selector)
        join_blk = self._new_block("switch_join")
        default_blk = self._new_block("switch_default")
        case_blocks: Dict[int, BlockBuilder] = {}
        for case in stmt.cases:
            case_blocks[case.value] = self._new_block(f"case{case.value}_")
        max_value = max(case_blocks) if case_blocks else -1
        table = [
            case_blocks[v].label if v in case_blocks else default_blk.label
            for v in range(max_value + 1)
        ]
        table.append(default_blk.label)  # out-of-range default
        self.cur.mbr(selector, table)

        for case in stmt.cases:
            self.cur = case_blocks[case.value]
            yield self._stmts(case.body)
            if self.cur is not None:
                self.cur.jmp(join_blk.label)
        self.cur = default_blk
        yield self._stmts(stmt.default)
        if self.cur is not None:
            self.cur.jmp(join_blk.label)
        self.cur = join_blk

    # -- expressions ---------------------------------------------------------

    def _expr(self, expr: ast.Expr):
        if isinstance(expr, ast.IntLit):
            reg = self.fb.reg()
            self.cur.li(reg, expr.value)
            return reg
        if isinstance(expr, ast.Var):
            return self.vars[expr.name]
        if isinstance(expr, ast.Unary):
            src = yield self._expr(expr.operand)
            dest = self.fb.reg()
            opcode = Opcode.NEG if expr.op == "-" else Opcode.NOT
            self.cur.alu(opcode, dest, src)
            return dest
        if isinstance(expr, ast.Binary):
            lhs = yield self._expr(expr.lhs)
            rhs = yield self._expr(expr.rhs)
            dest = self.fb.reg()
            self.cur.alu(_BINOP_OPCODES[expr.op], dest, lhs, rhs)
            return dest
        if isinstance(expr, ast.Logical):
            return (yield self._logical(expr))
        if isinstance(expr, ast.Load):
            addr = yield self._expr(expr.addr)
            dest = self.fb.reg()
            self.cur.load(dest, addr)
            return dest
        if isinstance(expr, ast.ReadExpr):
            dest = self.fb.reg()
            self.cur.read(dest)
            return dest
        if isinstance(expr, ast.Call):
            args = []
            for arg in expr.args:
                args.append((yield self._expr(arg)))
            dest = self.fb.reg()
            self.cur.call(expr.name, args, dest=dest)
            return dest
        raise MiniCError(  # pragma: no cover - exhaustive over Expr
            f"cannot lower {type(expr).__name__}"
        )

    def _logical(self, expr: ast.Logical):
        """Short-circuit evaluation materializing 0/1 into a register."""
        result = self.fb.reg()
        lhs = yield self._expr(expr.lhs)
        rhs_blk = self._new_block("sc_rhs")
        short_blk = self._new_block("sc_short")
        join_blk = self._new_block("sc_join")
        if expr.op == "&&":
            # lhs false -> short-circuit to 0
            self.cur.br(lhs, rhs_blk.label, short_blk.label)
            short_value = 0
        else:
            # lhs true -> short-circuit to 1
            self.cur.br(lhs, short_blk.label, rhs_blk.label)
            short_value = 1
        short_blk.li(result, short_value)
        short_blk.jmp(join_blk.label)

        self.cur = rhs_blk
        rhs = yield self._expr(expr.rhs)
        zero = self.fb.reg()
        self.cur.li(zero, 0)
        self.cur.alu(Opcode.CMPNE, result, rhs, zero)
        self.cur.jmp(join_blk.label)
        self.cur = join_blk
        return result


def lower_module(module: ast.Module, entry: str = "main") -> Program:
    """Semantic-check and lower a parsed module to an IR program."""
    check_module(module)
    builders = [_FunctionCodegen(func).generate() for func in module.functions]
    program = build_program(*builders, entry=entry)
    if not program.has_procedure(entry):
        raise MiniCError(f"missing entry function {entry!r}")
    return program


def compile_source(source: str, entry: str = "main") -> Program:
    """Compile MiniC source text to a verified IR program."""
    program = lower_module(parse(source), entry=entry)
    from ..ir.verify import check_program

    check_program(program)
    return program
