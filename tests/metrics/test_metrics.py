"""Tests for the pipeline metrics layer: sink, report, bench tripwire."""

import json

import pytest

from repro.metrics import (
    DEFAULT_REGRESSION_THRESHOLD,
    SCHEMA_VERSION,
    MetricsSink,
    TRIPWIRE_METRICS,
    check_bench_regression,
    format_bench_check,
    format_report,
    summarize,
    timed,
)
from repro.pipeline import run_scheme

from tests.support import call_program


class FakeClock:
    """Deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


class TestSink:
    def test_counters_accumulate(self):
        sink = MetricsSink()
        sink.add("x")
        sink.add("x", 4)
        sink.add("y", 2)
        assert sink.counters == {"x": 5, "y": 2}

    def test_stage_times_and_calls(self):
        sink = MetricsSink(clock=FakeClock())
        with sink.stage("compact.local"):
            pass
        with sink.stage("compact.local"):
            pass
        assert sink.stage_calls["compact.local"] == 2
        # FakeClock: start/stop reads plus one event timestamp per stage.
        assert sink.stage_seconds["compact.local"] > 0
        assert sink.total_stage_seconds == sink.stage_seconds["compact.local"]

    def test_stage_yields_out_fields(self):
        sink = MetricsSink(clock=FakeClock())
        with sink.stage("formation.form", proc="main") as out:
            out["superblocks"] = 3
        (event,) = sink.events
        assert event["event"] == "stage"
        assert event["stage"] == "formation.form"
        assert event["proc"] == "main"
        assert event["superblocks"] == 3
        assert event["dt"] > 0

    def test_stage_records_on_exception(self):
        sink = MetricsSink(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with sink.stage("simulate.ideal"):
                raise RuntimeError("boom")
        assert sink.stage_calls["simulate.ideal"] == 1

    def test_context_labels_stack_and_restore(self):
        sink = MetricsSink(clock=FakeClock())
        with sink.context(workload="wc"):
            with sink.context(scheme="P4"):
                sink.event("cache", disposition="miss")
            sink.event("cache", disposition="memo")
        sink.event("bare")
        inner, outer, bare = sink.events
        assert inner["workload"] == "wc" and inner["scheme"] == "P4"
        assert outer["workload"] == "wc" and "scheme" not in outer
        assert "workload" not in bare

    def test_timed_helper(self):
        assert timed(None, "x", lambda a: a + 1, 1) == 2
        sink = MetricsSink(clock=FakeClock())
        assert timed(sink, "x", lambda a: a + 1, 1) == 2
        assert sink.stage_calls == {"x": 1}

    def test_merge_sums_everything(self):
        a = MetricsSink(clock=FakeClock())
        b = MetricsSink(clock=FakeClock())
        for sink in (a, b):
            sink.add("n", 3)
            with sink.stage("layout"):
                pass
        a.merge(b)
        assert a.counters == {"n": 6}
        assert a.stage_calls == {"layout": 2}
        assert len(a.events) == 2

    def test_jsonl_round_trip(self, tmp_path):
        sink = MetricsSink(clock=FakeClock())
        sink.add("simulate.cycles", 42)
        with sink.context(workload="alt"):
            with sink.stage("simulate.ideal"):
                pass
        path = tmp_path / "metrics.jsonl"
        lines = sink.write_jsonl(path)
        # leading schema record + events + trailing counters record
        assert lines == len(sink.events) + 2
        back = MetricsSink.read_jsonl(path)
        assert back.counters == sink.counters
        assert back.stage_calls == sink.stage_calls
        assert back.stage_seconds == pytest.approx(sink.stage_seconds)
        assert [e["event"] for e in back.events] == ["stage"]
        assert back.events[0]["workload"] == "alt"
        assert back.schema_version == SCHEMA_VERSION

    def test_schema_record_leads_the_file(self, tmp_path):
        sink = MetricsSink(clock=FakeClock())
        path = tmp_path / "metrics.jsonl"
        sink.write_jsonl(path)
        with open(path) as fh:
            first = json.loads(fh.readline())
        assert first == {"event": "schema", "version": SCHEMA_VERSION}

    def test_legacy_file_without_schema_record(self, tmp_path):
        # Files written before the schema record existed still read; the
        # version surfaces as None so reports can flag them.
        path = tmp_path / "legacy.jsonl"
        path.write_text(
            '{"event": "counters", "counters": {"n": 3}}\n'
        )
        back = MetricsSink.read_jsonl(path)
        assert back.counters == {"n": 3}
        assert back.schema_version is None


class TestReport:
    def _sink(self):
        sink = MetricsSink(clock=FakeClock())
        with sink.stage("compact.allocate"):
            pass
        with sink.stage("layout"):
            pass
        sink.add("compact.slots_filled", 30)
        sink.add("compact.slots_total", 40)
        return sink

    def test_summarize_shape(self):
        summary = summarize(self._sink())
        assert summary["stages"]["compact.allocate"]["calls"] == 1
        assert summary["counters"]["compact.slots_total"] == 40
        assert summary["derived"]["schedule_slot_utilization"] == 0.75
        assert summary["total_stage_seconds"] > 0

    def test_format_report_renders_hierarchy(self):
        text = format_report(summarize(self._sink()))
        assert "compact" in text
        assert "compact.allocate" in text
        assert "schedule_slot_utilization" in text
        assert "0.75" in text

    def test_derived_skips_zero_denominators(self):
        sink = MetricsSink()
        sink.add("icache.misses", 5)
        sink.add("icache.accesses", 0)
        assert "icache_miss_rate" not in summarize(sink)["derived"]


class TestTripwire:
    BASE = {
        "speedup_vs_serial": {"cache_warm": 4.0},
        "metrics": {"speedup_on_vs_off": 1.0},
    }

    def test_no_regression_passes(self):
        current = {
            "speedup_vs_serial": {"cache_warm": 3.9},
            "metrics": {"speedup_on_vs_off": 0.99},
        }
        assert check_bench_regression(current, self.BASE) == []

    def test_within_threshold_passes(self):
        current = {"speedup_vs_serial": {"cache_warm": 3.1}}
        assert check_bench_regression(current, self.BASE) == []

    def test_over_threshold_fails(self):
        current = {"speedup_vs_serial": {"cache_warm": 2.0}}
        failures = check_bench_regression(current, self.BASE)
        assert len(failures) == 1
        assert "speedup_vs_serial.cache_warm" in failures[0]

    def test_missing_metric_skipped(self):
        assert check_bench_regression({}, self.BASE) == []
        assert check_bench_regression(self.BASE, {}) == []

    def test_custom_threshold(self):
        current = {"speedup_vs_serial": {"cache_warm": 3.5}}
        assert check_bench_regression(current, self.BASE, threshold=0.05)

    def test_format_bench_check_verdicts(self):
        current = {"speedup_vs_serial": {"cache_warm": 2.0}}
        text = format_bench_check(current, self.BASE)
        assert "REGRESSED" in text
        assert "skipped" in text

    def test_tripwire_metrics_are_ratio_paths(self):
        from repro.metrics import INVERSE_TRIPWIRE_METRICS

        assert 0 < DEFAULT_REGRESSION_THRESHOLD < 1
        for path in TRIPWIRE_METRICS:
            assert "wall" not in path  # no wall times: machine-independent
            if path in INVERSE_TRIPWIRE_METRICS:
                # Lower-is-better fractions (e.g. the scheduler's gap
                # from optimal) are ratios too, just inverted.
                assert "gap" in path or "rate" in path
            elif path.startswith("interproc."):
                # Deterministic formation counters — no timing at all,
                # so absolute values are machine-independent.
                assert "inlined" in path or "observed" in path
            else:
                assert "speedup" in path or "hit_rate" in path
        # Every inverse metric must also be a tripwire metric.
        assert set(INVERSE_TRIPWIRE_METRICS) <= set(TRIPWIRE_METRICS)


class TestEvaluateBench:
    """One-pass verdicts: every metric reported, failures never mask
    each other, and missing-vs-regressed is always distinguishable."""

    def _verdicts(self, current, baseline, **kw):
        from repro.metrics import evaluate_bench

        return {
            v.metric: v for v in evaluate_bench(current, baseline, **kw)
        }

    def test_every_metric_gets_a_verdict(self):
        verdicts = self._verdicts({}, {})
        assert set(verdicts) == set(TRIPWIRE_METRICS)

    def test_all_failures_reported_in_one_pass(self):
        current = {
            "speedup_vs_serial": {"cache_warm": 1.0},
            "metrics": {"speedup_on_vs_off": 0.1},
        }
        baseline = {
            "speedup_vs_serial": {"cache_warm": 4.0},
            "metrics": {"speedup_on_vs_off": 1.0},
        }
        failures = check_bench_regression(current, baseline)
        assert len(failures) == 2  # not just the first one

    def test_missing_key_distinguished_from_regressed(self):
        current = {"speedup_vs_serial": {"cache_warm": 4.0}}
        baseline = {"metrics": {"speedup_on_vs_off": 1.0}}
        verdicts = self._verdicts(current, baseline)
        assert (
            verdicts["speedup_vs_serial.cache_warm"].status
            == "missing_baseline"
        )
        assert (
            verdicts["metrics.speedup_on_vs_off"].status == "missing_current"
        )
        assert not verdicts["speedup_vs_serial.cache_warm"].failed
        assert not verdicts["metrics.speedup_on_vs_off"].failed

    def test_zero_baseline_not_a_division_crash(self):
        current = {"speedup_vs_serial": {"cache_warm": 4.0}}
        baseline = {"speedup_vs_serial": {"cache_warm": 0.0}}
        verdicts = self._verdicts(current, baseline)
        verdict = verdicts["speedup_vs_serial.cache_warm"]
        assert verdict.status == "zero_baseline"
        assert not verdict.failed
        assert check_bench_regression(current, baseline) == []

    def test_inverse_zero_baseline_uses_absolute_allowance(self):
        from repro.metrics.report import INVERSE_ABSOLUTE_ALLOWANCE

        baseline = {"scheduler": {"gap_from_optimal": 0.0}}
        within = {
            "scheduler": {
                "gap_from_optimal": INVERSE_ABSOLUTE_ALLOWANCE / 2
            }
        }
        beyond = {
            "scheduler": {
                "gap_from_optimal": INVERSE_ABSOLUTE_ALLOWANCE * 3
            }
        }
        assert not self._verdicts(within, baseline)[
            "scheduler.gap_from_optimal"
        ].failed
        assert self._verdicts(beyond, baseline)[
            "scheduler.gap_from_optimal"
        ].failed

    def test_ok_verdict_carries_bound(self):
        current = {"speedup_vs_serial": {"cache_warm": 3.9}}
        baseline = {"speedup_vs_serial": {"cache_warm": 4.0}}
        verdict = self._verdicts(current, baseline)[
            "speedup_vs_serial.cache_warm"
        ]
        assert verdict.status == "ok"
        assert verdict.bound == pytest.approx(
            4.0 * (1 - DEFAULT_REGRESSION_THRESHOLD)
        )


class TestPipelineIntegration:
    def test_run_scheme_counters_and_stages(self):
        sink = MetricsSink()
        program = call_program()
        out = run_scheme(
            program, "M4", [6], [3], with_icache=True, metrics=sink
        )
        assert sink.counters["simulate.cycles"] == out.result.cycles
        assert sink.counters["icache.accesses"] == (
            out.cached_result.icache_accesses
        )
        assert sink.counters["layout.code_bytes"] == out.layout.code_bytes
        assert sink.counters["compact.slots_total"] > 0
        for stage in (
            "profile.collect",
            "formation.form",
            "compact.preschedule",
            "compact.allocate",
            "compact.postschedule",
            "layout",
            "simulate.ideal",
            "simulate.icache",
            "reference",
        ):
            assert sink.stage_calls.get(stage, 0) >= 1, stage
        assert sink.total_stage_seconds > 0

    def test_metrics_off_identical_results(self):
        program = call_program()
        plain = run_scheme(program, "P4", [6], [3])
        with_sink = run_scheme(
            program, "P4", [6], [3], metrics=MetricsSink()
        )
        assert with_sink.result.cycles == plain.result.cycles
        assert with_sink.result.output == plain.result.output
        assert with_sink.layout.base == plain.layout.base

    def test_jsonl_is_valid_json_per_line(self, tmp_path):
        sink = MetricsSink()
        run_scheme(call_program(), "M4", [6], [3], metrics=sink)
        path = tmp_path / "m.jsonl"
        sink.write_jsonl(path)
        with open(path) as fh:
            records = [json.loads(line) for line in fh]
        assert records[0]["event"] == "schema"
        assert records[-1]["event"] == "counters"
        assert all("t" in r and "pid" in r for r in records[1:-1])
