"""Tests for the stdlib sampling profiler and its folded-stack output."""

import time

from repro.metrics import SamplingProfiler
from repro.metrics.sampler import _fold_frame


def _spin(deadline):
    while time.perf_counter() < deadline:
        sum(range(100))


def burn(seconds=0.15):
    _spin(time.perf_counter() + seconds)


class TestSampler:
    def test_captures_samples_from_busy_thread(self):
        with SamplingProfiler(interval=0.001) as prof:
            burn()
        assert prof.samples > 0
        assert sum(prof.counts.values()) == prof.samples
        # The busy function shows up in at least one folded stack.
        assert any("test_sampler:burn" in stack for stack in prof.counts)

    def test_folded_output_format(self):
        with SamplingProfiler(interval=0.001) as prof:
            burn()
        text = prof.folded()
        lines = text.strip().splitlines()
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert int(count) > 0
            assert all(":" in frame for frame in stack.split(";"))
        # Deterministic ordering: stacks are sorted.
        assert lines == sorted(lines)

    def test_write_folded_is_loadable(self, tmp_path):
        with SamplingProfiler(interval=0.001) as prof:
            burn()
        out = tmp_path / "profile.folded"
        stacks = prof.write_folded(out)
        assert stacks == len(prof.counts)
        text = out.read_text()
        assert text == prof.folded()
        assert not [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]

    def test_stop_is_idempotent(self):
        prof = SamplingProfiler(interval=0.001).start()
        prof.stop()
        prof.stop()
        assert prof.folded() == prof.folded()

    def test_fold_frame_root_first(self):
        def inner():
            import sys

            return sys._getframe()

        def outer():
            return inner()

        folded = _fold_frame(outer())
        frames = folded.split(";")
        # Root (module/test runner) first, leaf (inner) last.
        assert frames[-1] == "test_sampler:inner"
        assert frames[-2] == "test_sampler:outer"

    def test_profiler_does_not_perturb_results(self):
        """Off-by-default contract: pipeline output with a sampler running
        is byte-identical to output without one (observation only)."""
        from repro.pipeline import run_scheme

        from tests.support import call_program

        program = call_program()
        plain = run_scheme(program, "M4", [6], [3])
        with SamplingProfiler(interval=0.001):
            sampled = run_scheme(program, "M4", [6], [3])
        assert sampled.result.cycles == plain.result.cycles
        assert sampled.result.output == plain.result.output
        assert sampled.layout.base == plain.layout.base
