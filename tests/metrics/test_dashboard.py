"""Tests for the static HTML trend dashboard."""

from repro.metrics import HistoryStore, TRIPWIRE_METRICS
from repro.metrics.dashboard import render_dashboard


def _full_report(scale=1.0):
    report = {}
    for metric in TRIPWIRE_METRICS:
        node = report
        parts = metric.split(".")
        for part in parts[:-1]:
            node = node.setdefault(part, {})
        node[parts[-1]] = 4.0 * scale
    return report


class TestDashboard:
    def _store(self, tmp_path, runs=4):
        store = HistoryStore(tmp_path / "h.jsonl")
        for i in range(runs):
            store.append(
                _full_report(1.0 + 0.01 * i),
                sha=f"sha{i}",
                timestamp=float(i),
            )
        return store

    def test_renders_sparkline_per_tripwire_metric(self, tmp_path):
        store = self._store(tmp_path)
        index = render_dashboard(store, tmp_path / "dash")
        html = index.read_text()
        for metric in TRIPWIRE_METRICS:
            assert metric in html
        # One sparkline SVG per metric card.
        assert html.count("<svg") == len(TRIPWIRE_METRICS)
        assert html.count('class="card"') == len(TRIPWIRE_METRICS)

    def test_status_is_icon_plus_label_never_color_alone(self, tmp_path):
        store = self._store(tmp_path)
        ok = render_dashboard(store, tmp_path / "ok").read_text()
        assert "✓ ok" in ok
        regressed = render_dashboard(
            store, tmp_path / "bad", current=_full_report(0.5)
        ).read_text()
        assert "✗ regressed" in regressed

    def test_current_report_becomes_latest_point(self, tmp_path):
        store = self._store(tmp_path)
        html = render_dashboard(
            store, tmp_path / "dash", current=_full_report(2.0)
        ).read_text()
        assert "current" in html

    def test_insufficient_history_labeled(self, tmp_path):
        store = self._store(tmp_path, runs=2)
        html = render_dashboard(store, tmp_path / "dash").read_text()
        assert "3 needed" in html

    def test_artifact_links_row(self, tmp_path):
        store = self._store(tmp_path)
        html = render_dashboard(
            store,
            tmp_path / "dash",
            artifacts={"flamegraph": "flame.svg", "trace": "trace.json"},
        ).read_text()
        assert 'href="flame.svg"' in html
        assert 'href="trace.json"' in html

    def test_band_shading_and_data_table(self, tmp_path):
        store = self._store(tmp_path)
        html = render_dashboard(store, tmp_path / "dash").read_text()
        assert "var(--band-fill)" in html  # shaded noise band
        assert "<details>" in html  # per-card data table
        assert "prefers-color-scheme: dark" in html  # dark mode selected

    def test_self_contained_no_external_fetches(self, tmp_path):
        store = self._store(tmp_path)
        html = render_dashboard(store, tmp_path / "dash").read_text()
        assert "http://" not in html and "https://" not in html
        assert "<script" not in html

    def test_empty_history_still_renders(self, tmp_path):
        store = HistoryStore(tmp_path / "empty.jsonl")
        html = render_dashboard(store, tmp_path / "dash").read_text()
        assert "no data" in html
